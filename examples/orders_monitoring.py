"""Keeping a cleansed order feed clean with the data monitor.

Models the data-warehousing scenario the paper's introduction motivates: an
order feed is cleaned once, then new orders keep arriving.  The data monitor
routes each update batch through incremental detection and — because the
relation has been cleansed — incremental repair, so consistency is preserved
without re-running the full pipeline.

Run with::

    python examples/orders_monitoring.py
"""

import random

from repro import Semandaq
from repro.core.satisfaction import satisfies_all
from repro.datasets import generate_orders, orders_cfds
from repro.explorer import render_table
from repro.monitor.updates import Update


def make_order_batch(relation, batch_index: int, size: int, error_every: int, rng: random.Random):
    """A batch of new orders; every ``error_every``-th order carries an error."""
    rows = []
    templates = relation.to_list()
    for i in range(size):
        row = dict(rng.choice(templates))
        row["ORDER_ID"] = f"O9{batch_index:03d}{i:04d}"
        row["QUANTITY"] = rng.randrange(1, 50)
        if i % error_every == 0:
            # a currency that clashes with COUNTRY -> CURRENCY
            row["CURRENCY"] = rng.choice(["XXX", "BTC", "ZZZ"])
        rows.append(row)
    return rows


def main() -> None:
    rng = random.Random(42)
    clean = generate_orders(500, seed=21)

    system = Semandaq()
    system.register_relation(clean)
    system.add_cfds(orders_cfds())
    assert system.detect("orders").is_clean()
    print(f"initial feed of {len(clean)} orders is clean; monitoring begins")

    monitor = system.monitor("orders", cleansed=True)
    relation = system.database.relation("orders")

    history = []
    for batch_index in range(1, 6):
        batch = make_order_batch(relation, batch_index, size=40, error_every=7, rng=rng)
        monitor.apply_batch([Update.insert(row) for row in batch])
        repairs = monitor.repairs()
        last_repair = repairs[-1] if repairs else None
        history.append(
            {
                "batch": batch_index,
                "orders inserted": len(batch),
                "cells repaired": len(last_repair.changes) if last_repair else 0,
                "violations now": monitor.current_report().total_violations(),
                "tuples examined": monitor.detection_cost(),
            }
        )
        assert satisfies_all(relation, orders_cfds())

    print(render_table(history))
    summary = monitor.summary()
    print(
        f"\nprocessed {summary['updates_applied']} updates, "
        f"{summary['incremental_repairs']} incremental repairs, "
        f"feed still consistent: {monitor.current_report().is_clean()}"
    )


if __name__ == "__main__":
    main()
