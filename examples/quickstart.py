"""Quickstart: detect, audit and repair CFD violations in customer data.

Runs the end-to-end Semandaq workflow on the paper's ``customer`` relation:
generate clean data, inject errors, specify the paper's CFDs (phi1 … phi4),
detect violations with the SQL-based detector, audit the data quality,
compute a candidate repair and apply it.

Run with::

    python examples/quickstart.py
"""

from repro import Semandaq
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.explorer import render_quality_report, render_repair_diff
from repro.repair.repairer import repair_quality


def main() -> None:
    # 1. Build a workload: clean data plus seeded errors with ground truth.
    clean = generate_customers(500, seed=1)
    noise = inject_noise(clean, rate=0.03, seed=2, attributes=["CNT", "CITY", "STR", "CC"])
    print(f"generated {len(clean)} customers, corrupted {len(noise.corrupted)} cells")

    # 2. Connect the data and specify the paper's CFDs.
    system = Semandaq()
    system.register_relation(noise.dirty)
    system.add_cfds(paper_cfds())
    consistency = system.check_constraints("customer")
    print(f"CFD set consistent: {consistency.consistent}")

    # 3. Detect violations (compiled to SQL and run on the embedded engine).
    report = system.detect("customer")
    print(
        f"detected {report.total_violations()} violations "
        f"({len(report.single_violations())} single-tuple, "
        f"{len(report.multi_violations())} multi-tuple) "
        f"touching {len(report.dirty_tids())} tuples"
    )

    # 4. Audit: the Fig. 4 quality report.
    audit = system.audit("customer")
    print()
    print(render_quality_report(audit))

    # 5. Repair and compare against the known ground truth.
    repair = system.repair("customer")
    print()
    print(render_repair_diff(repair, max_rows=10))
    quality = repair_quality(repair, clean, noise.dirty)
    print(
        f"\nrepair quality vs ground truth: precision={quality['precision']:.2f} "
        f"recall={quality['recall']:.2f} f1={quality['f1']:.2f}"
    )

    # 6. Apply the repair and verify the database is now consistent.
    system.apply_repair("customer")
    post = system.detect("customer")
    print(f"violations after applying the repair: {post.total_violations()}")


if __name__ == "__main__":
    main()
