"""Interactive-style exploration of the paper's running example (Figs. 2-5).

Replays the demo walkthrough on the small hand-written ``customer`` instance:
the CFD → pattern → LHS → RHS drill-down of Fig. 2, the quality map of
Fig. 3, the quality report of Fig. 4, and the cleansing review of Fig. 5 —
all rendered as text.

Run with::

    python examples/customer_exploration.py
"""

from repro import Semandaq
from repro.datasets import paper_cfds, paper_example_relation
from repro.explorer import (
    render_quality_map,
    render_quality_report,
    render_relation,
    render_repair_diff,
    render_table,
)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    system = Semandaq()
    system.register_relation(paper_example_relation())
    system.add_cfds(paper_cfds())

    banner("The customer relation (paper's running example)")
    print(render_relation(system.database.relation("customer")))

    banner("Registered CFDs")
    print(render_table(system.constraints.describe(), columns=["id", "text", "patterns"]))

    report = system.detect("customer")

    banner("Fig. 2 — Data exploration using CFDs")
    session = system.exploration_session("customer")
    cfd_rows = [
        {"cfd": o.cfd_id, "lhs": ",".join(o.lhs), "rhs": ",".join(o.rhs),
         "violating tuples": o.violating_tuples}
        for o in session.options()
    ]
    print(render_table(cfd_rows))
    print("\n-> selecting phi2 ([CNT='UK', ZIP] -> [STR]) ...")
    patterns = session.select("phi2")
    print(render_table([{"pattern": p.rendered, "violations": p.violating_tuples} for p in patterns]))
    print("\n-> selecting its pattern tuple ...")
    lhs_matches = session.select(patterns[0])
    print(render_table([
        {"lhs values": m.lhs_values, "tuples": m.tuple_count, "violations": m.violating_tuples}
        for m in lhs_matches
    ]))
    print("\n-> selecting the violating postcode (UK, EH4 1DT) ...")
    rhs_values = session.select(lhs_matches[0])
    print(render_table([
        {"street": v.value, "tuples": v.tuple_count, "violations": v.violating_tuples}
        for v in rhs_values
    ]))

    banner("Fig. 2 (reverse) — why is Anna's tuple dirty?")
    explanation = system.explorer("customer").explain_tuple(4)
    print(f"vio(t) = {explanation['vio']}")
    for entry in explanation["relevant_cfds"]:
        status = "VIOLATED" if entry["violated"] else "applies, satisfied"
        print(f"  {entry['cfd']}: {status}")

    banner("Fig. 3 — Data quality map")
    audit = system.audit("customer")
    print(render_quality_map(system.database.relation("customer"), audit.quality_map))

    banner("Fig. 4 — Data quality report")
    print(render_quality_report(audit))

    banner("Fig. 5 — Data cleansing review")
    repair = system.repair("customer")
    print(render_repair_diff(repair))
    review = system.review("customer")
    change = review.modified_cells()[0]
    print(f"\nUser overrides ({change.tid}, {change.attribute}) back to {change.old_value!r} ...")
    conflicts = review.override(change.tid, change.attribute, change.old_value)
    for note in conflicts:
        print(f"  conflict reintroduced: {note.cfd_id} ({note.kind}) involving tuples {note.tids}")

    banner("Applying the candidate repair")
    system.apply_repair("customer")
    print(f"violations after repair: {system.detect('customer').total_violations()}")


if __name__ == "__main__":
    main()
