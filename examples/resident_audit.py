"""Backend-resident auditing: summarise quality without shipping the relation.

With ``SemandaqConfig(audit_source="auto")`` (the default) the audit runs
directly over the storage backend through the shared tuple-source layer:
the dirty rows come from one keyed fetch, the clean-tuple categories from
pushed-down applicability aggregates, and the quality map's tid universe
from the catalog row count.  ``audit_source="native"`` forces the original
full-relation walk — the parity oracle, and the path to compare against.

Run with::

    python examples/resident_audit.py
"""

from repro import Semandaq, SemandaqConfig
from repro.datasets import generate_customers, inject_noise, paper_cfds


def audit_with(audit_source: str) -> None:
    # Noise localised to CITY/STR keeps the dirty region small — the
    # regime where the resident auditor materialises a fraction of the rows.
    clean = generate_customers(2000, seed=5)
    noise = inject_noise(clean, rate=0.03, seed=6, attributes=["CITY", "STR"])

    config = SemandaqConfig(
        backend="sqlite", audit_source=audit_source, telemetry=True
    )
    with Semandaq(config=config) as system:
        system.register_relation(noise.dirty)
        system.add_cfds(paper_cfds())
        system.detect("customer")
        report = system.audit("customer")
        counters = system.metrics()["counters"]
        breakdown = ", ".join(
            f"{count} {category.value}"
            for category, count in report.tuple_classification.counts().items()
            if count
        )
        print(f"audit_source={audit_source!r}:")
        print(f"  {report.tuple_count} tuples: {breakdown}")
        worst = ", ".join(
            f"{attribute} ({cells})"
            for attribute, cells in report.worst_attributes()[:3]
            if cells
        )
        print(f"  worst attributes: {worst}")
        print(
            f"  resident audits: {counters.get('audit.source_resident', 0)}"
        )


def main() -> None:
    # The default: audit over the backend's resident copy.
    audit_with("auto")
    # The oracle: ship the relation back and walk it in Python.  Both
    # produce identical reports — the benchmark suite pins this.
    audit_with("native")


if __name__ == "__main__":
    main()
