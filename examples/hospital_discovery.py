"""CFD discovery from reference data, then cleaning a dirty feed (hospital workload).

The paper notes that CFDs "may either be explicitly specified by users or
automatically discovered from reference data".  This example:

1. generates a clean hospital reference extract;
2. discovers constant and variable CFDs from it (CFDMiner / CTANE style);
3. validates the discovered constraints on a held-out portion;
4. registers them and uses them to detect and repair errors in a dirty copy
   of the same feed.

Run with::

    python examples/hospital_discovery.py
"""

from repro import Semandaq
from repro.core.parser import format_cfd
from repro.datasets import generate_hospital, inject_noise
from repro.discovery import sample_relation, split_relation, validate_cfds
from repro.explorer import render_table
from repro.repair.repairer import repair_quality


def main() -> None:
    # 1. Reference data (assumed trustworthy) and a dirty operational feed.
    reference = generate_hospital(600, seed=7)
    training, holdout = split_relation(reference, holdout_fraction=0.25, seed=8)
    clean_feed = generate_hospital(400, seed=9)
    noise = inject_noise(
        clean_feed, rate=0.04, seed=10,
        attributes=["STATE", "CITY", "MEASURE_NAME", "CONDITION", "PHONE"], kinds=("swap", "typo"),
    )

    system = Semandaq()
    system.register_relation(noise.dirty)

    # 2. Discover CFDs from a sample of the training portion.  Constant rules
    #    (e.g. [MEASURE_CODE='AMI-1'] -> [CONDITION='Heart Attack']) are shown
    #    for documentation; the FDs / variable CFDs are the ones used for
    #    cleaning because they carry the redundancy the repair algorithm
    #    exploits.
    sample = sample_relation(training, 300, seed=11)
    constant_rules = system.constraints.discover_from(
        sample, min_support=25, min_confidence=1.0, max_lhs_size=1,
        include_variable=False, register=False,
    )
    print(f"examples of discovered constant rules ({len(constant_rules)} total):")
    print(render_table(
        [{"cfd": format_cfd(cfd)} for cfd in constant_rules[:8]],
        columns=["cfd"],
    ))
    candidates = system.constraints.discover_from(
        sample, min_support=8, min_confidence=1.0, max_lhs_size=1,
        include_constant=False, register=False,
    )
    print(f"\ndiscovered {len(candidates)} candidate FDs/variable CFDs from {len(sample)} reference tuples")

    # 3. Validate the candidates on the held-out reference data and keep the
    #    ones that hold there too.
    validation = validate_cfds(holdout, candidates)
    kept = [cfd for cfd in candidates if validation[cfd.identifier]["violation_rate"] == 0.0]
    print(f"kept {len(kept)} candidates after hold-out validation")
    print(render_table(
        [{"cfd": format_cfd(cfd)} for cfd in kept[:12]],
        columns=["cfd"],
    ))

    # 4. Register and clean the dirty feed.
    for cfd in kept:
        try:
            system.constraints.add_cfd(cfd, name=cfd.name)
        except Exception:  # inconsistent with already-registered candidates
            continue
    report = system.detect("hospital")
    print(f"\nviolations detected in the dirty feed: {report.total_violations()}")
    audit = system.audit("hospital")
    print(f"dirty tuples: {audit.dirty_tuple_count()} ({audit.dirty_percentage():.1f}%)")

    repair = system.repair("hospital")
    quality = repair_quality(repair, clean_feed, noise.dirty)
    print(
        f"repair changed {len(repair.changes)} cells: "
        f"precision={quality['precision']:.2f} recall={quality['recall']:.2f}"
    )
    system.apply_repair("hospital")
    print(f"violations after repair: {system.detect('hospital').total_violations()}")


if __name__ == "__main__":
    main()
