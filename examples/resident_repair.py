"""Backend-resident repair: clean a relation without shipping it back.

With ``SemandaqConfig(repair_source="auto")`` (the default) the repair is
planned directly over the storage backend: violations come from the
pushed-down detection, candidate-value frequencies from ``GROUP BY``
aggregates, and only the tuples the planner actually needs are fetched.
``repair_source="native"`` forces the original full-relation walk — the
parity oracle, and the path to compare against.

Run with::

    python examples/resident_repair.py
"""

from repro import Semandaq, SemandaqConfig
from repro.datasets import generate_customers, inject_noise, paper_cfds


def clean_with(repair_source: str) -> None:
    # Noise localised to CITY/STR keeps the violating LHS groups small —
    # the regime where the resident planner fetches a fraction of the rows.
    clean = generate_customers(2000, seed=5)
    noise = inject_noise(clean, rate=0.03, seed=6, attributes=["CITY", "STR"])

    config = SemandaqConfig(
        backend="sqlite", repair_source=repair_source, telemetry=True
    )
    with Semandaq(config=config) as system:
        system.register_relation(noise.dirty)
        system.add_cfds(paper_cfds())
        summary = system.clean("customer")
        counters = system.metrics()["counters"]
        print(f"repair_source={repair_source!r}:")
        print(
            f"  {summary['violations_before']} violations -> "
            f"{summary['violations_after']}, "
            f"{summary['cells_changed']} cells changed "
            f"(cost {summary['repair_cost']:.2f})"
        )
        print(
            f"  resident repairs: {counters.get('repair.source_resident', 0)}, "
            f"classes merged: {counters.get('repair.classes_merged', 0)}, "
            f"post-check violations: "
            f"{counters.get('repair.post_check_violations', 0)}"
        )


def main() -> None:
    # The default: plan the repair over the backend's resident copy.
    clean_with("auto")
    # The oracle: ship the relation back and walk it in Python.  Both
    # produce identical repairs — the benchmark suite pins this.
    clean_with("native")


if __name__ == "__main__":
    main()
