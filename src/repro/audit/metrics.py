"""Data quality metrics: the auditor's clean/dirty classification.

The paper's data auditor categorises each tuple ``t`` as

* **verified clean** — ``t`` violates no CFD *and* there exists a CFD with a
  constant in its RHS that applies to ``t`` (so at least one constraint
  actively vouches for its values);
* **probably clean** — ``t`` violates no CFD;
* **arguably clean** — ``t`` is probably clean *or* ``t`` is only involved in
  multi-tuple violations in which the bulk of the jointly violating tuples
  agree with ``t`` (substantial evidence that ``t`` itself is correct);

and everything else is **dirty**.  Note verified ⊆ probably ⊆ arguably.  A
similar categorisation exists at the attribute-value (cell) level, which the
bar chart of the paper's Fig. 4 displays per attribute.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.cfd import CFD
from ..detection.violations import Violation, ViolationReport
from ..engine.relation import Relation

if TYPE_CHECKING:  # pragma: no cover
    from ..sources.base import TupleSource


class Cleanliness(enum.Enum):
    """Quality category of a tuple or cell, from strongest to weakest."""

    VERIFIED = "verified clean"
    PROBABLY = "probably clean"
    ARGUABLY = "arguably clean"
    DIRTY = "dirty"


#: Ordering used when aggregating (stronger categories imply weaker ones).
_ORDER = {
    Cleanliness.VERIFIED: 0,
    Cleanliness.PROBABLY: 1,
    Cleanliness.ARGUABLY: 2,
    Cleanliness.DIRTY: 3,
}


@dataclass
class TupleClassification:
    """Classification of every tuple of a relation.

    ``categories`` holds per-tid categories; ``aggregate`` holds category
    counts known only in bulk (the resident audit classifies clean tuples
    from backend aggregates without materialising them, so their tids are
    never enumerated).  ``counts``/``percentages`` combine both.
    """

    categories: Dict[int, Cleanliness] = field(default_factory=dict)
    aggregate: Dict[Cleanliness, int] = field(default_factory=dict)

    def total(self) -> int:
        """Number of classified tuples, enumerated or aggregate."""
        return len(self.categories) + sum(self.aggregate.values())

    def counts(self) -> Dict[Cleanliness, int]:
        """Number of tuples per category."""
        totals: Dict[Cleanliness, int] = {category: 0 for category in Cleanliness}
        for category in self.categories.values():
            totals[category] += 1
        for category, count in self.aggregate.items():
            totals[category] += count
        return totals

    def percentages(self) -> Dict[Cleanliness, float]:
        """Percentage of tuples per category (0 when the relation is empty)."""
        total = self.total()
        if total == 0:
            return {category: 0.0 for category in Cleanliness}
        return {
            category: 100.0 * count / total for category, count in self.counts().items()
        }

    def cumulative_percentages(self) -> Dict[Cleanliness, float]:
        """Cumulative view: verified ⊆ probably ⊆ arguably (matches the paper's bars)."""
        raw = self.counts()
        total = self.total() or 1
        verified = raw[Cleanliness.VERIFIED]
        probably = verified + raw[Cleanliness.PROBABLY]
        arguably = probably + raw[Cleanliness.ARGUABLY]
        return {
            Cleanliness.VERIFIED: 100.0 * verified / total,
            Cleanliness.PROBABLY: 100.0 * probably / total,
            Cleanliness.ARGUABLY: 100.0 * arguably / total,
            Cleanliness.DIRTY: 100.0 * raw[Cleanliness.DIRTY] / total,
        }

    def of(self, tid: int) -> Cleanliness:
        """Category of one tuple."""
        return self.categories[tid]


@dataclass
class AttributeClassification:
    """Per-attribute cell-level classification."""

    #: attribute -> category -> number of cells
    counts: Dict[str, Dict[Cleanliness, int]] = field(default_factory=dict)

    def percentages(self) -> Dict[str, Dict[Cleanliness, float]]:
        """Per-attribute percentages (the bar chart of Fig. 4)."""
        result: Dict[str, Dict[Cleanliness, float]] = {}
        for attribute, per_category in self.counts.items():
            total = sum(per_category.values()) or 1
            result[attribute] = {
                category: 100.0 * count / total
                for category, count in per_category.items()
            }
        return result

    def dirtiest_attributes(self, top: int = 3) -> List[Tuple[str, int]]:
        """Attributes ranked by number of dirty cells."""
        ranked = sorted(
            (
                (attribute, per_category.get(Cleanliness.DIRTY, 0))
                for attribute, per_category in self.counts.items()
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:top]


def _applicable_constant_rhs(cfds: Sequence[CFD]) -> List[Tuple[CFD, CFD]]:
    """Pairs of (parent CFD, normalised sub-CFD) having a constant RHS pattern."""
    pairs: List[Tuple[CFD, CFD]] = []
    for cfd in cfds:
        for sub in cfd.normalize():
            rhs_attr = sub.rhs[0]
            if sub.patterns[0].value(rhs_attr).is_constant:
                pairs.append((cfd, sub))
    return pairs


def classify_tuples(
    relation: Relation,
    cfds: Sequence[CFD],
    report: ViolationReport,
    majority: float = 0.5,
) -> TupleClassification:
    """Classify every tuple of ``relation`` per the paper's three categories.

    ``majority`` is the fraction of jointly violating tuples that must agree
    with ``t`` for it to count as "arguably clean" (strictly greater than).
    """
    dirty_map: Dict[int, List[Violation]] = defaultdict(list)
    for violation in report.violations:
        for tid in violation.tids:
            dirty_map[tid].append(violation)

    constant_pairs = _applicable_constant_rhs(cfds)
    classification = TupleClassification()
    for tid, row in relation.rows():
        involved = dirty_map.get(tid, [])
        if not involved:
            verified = any(
                sub.applies_to(row, sub.patterns[0]) for _parent, sub in constant_pairs
            )
            classification.categories[tid] = (
                Cleanliness.VERIFIED if verified else Cleanliness.PROBABLY
            )
            continue
        if all(violation.is_multi for violation in involved) and all(
            _majority_agrees(relation, tid, violation, majority)
            for violation in involved
        ):
            classification.categories[tid] = Cleanliness.ARGUABLY
        else:
            classification.categories[tid] = Cleanliness.DIRTY
    return classification


def _majority_agrees(
    relation: Relation, tid: int, violation: Violation, majority: float
) -> bool:
    """Whether the bulk of the violation's tuples agree with ``tid`` on the RHS value."""
    attribute = violation.rhs_attribute
    own_value = relation.value(tid, attribute)
    others = [other for other in violation.tids if other != tid and other in relation]
    if not others:
        return False
    agreeing = sum(
        1 for other in others if relation.value(other, attribute) == own_value
    )
    return agreeing / len(others) > majority


def classify_cells(
    relation: Relation,
    cfds: Sequence[CFD],
    report: ViolationReport,
    majority: float = 0.5,
) -> AttributeClassification:
    """Cell-level classification aggregated per attribute.

    A cell ``(t, A)`` is implicated in a violation when ``A`` is the RHS
    attribute of a violation involving ``t``.  Implicated cells are dirty
    unless every implicating violation is a multi-tuple violation whose bulk
    agrees with ``t`` (arguably clean).  Non-implicated cells are verified
    clean when some constant-RHS CFD on ``A`` applies to ``t``, otherwise
    probably clean.
    """
    implicated: Dict[Tuple[int, str], List[Violation]] = defaultdict(list)
    for violation in report.violations:
        for tid in violation.tids:
            implicated[(tid, violation.rhs_attribute)].append(violation)

    constant_pairs = _applicable_constant_rhs(cfds)
    per_attribute_constant: Dict[str, List[CFD]] = defaultdict(list)
    for _parent, sub in constant_pairs:
        per_attribute_constant[sub.rhs[0]].append(sub)

    counts: Dict[str, Dict[Cleanliness, int]] = {
        attribute: {category: 0 for category in Cleanliness}
        for attribute in relation.attribute_names
    }
    for tid, row in relation.rows():
        for attribute in relation.attribute_names:
            cell_violations = implicated.get((tid, attribute), [])
            if cell_violations:
                if all(v.is_multi for v in cell_violations) and all(
                    _majority_agrees(relation, tid, v, majority) for v in cell_violations
                ):
                    counts[attribute][Cleanliness.ARGUABLY] += 1
                else:
                    counts[attribute][Cleanliness.DIRTY] += 1
                continue
            verified = any(
                sub.applies_to(row, sub.patterns[0])
                for sub in per_attribute_constant.get(attribute, [])
            )
            category = Cleanliness.VERIFIED if verified else Cleanliness.PROBABLY
            counts[attribute][category] += 1
    return AttributeClassification(counts=counts)


def classify_tuples_source(
    source: "TupleSource",
    partial: Relation,
    cfds: Sequence[CFD],
    report: ViolationReport,
    majority: float = 0.5,
) -> TupleClassification:
    """Resident counterpart of :func:`classify_tuples` — zero full scans.

    ``partial`` holds exactly the dirty tuples (every member of every
    violation is dirty, so the majority checks see the same rows the
    native path would).  Clean tuples are classified in bulk: the
    verified-clean count is one pushed-down applicability aggregate minus
    the dirty tuples that satisfy a constant-RHS sub — computed natively
    over the fetched rows — and the rest of the clean tuples are probably
    clean.  The result's ``counts``/``percentages`` match the native
    classification exactly.
    """
    dirty_map: Dict[int, List[Violation]] = defaultdict(list)
    for violation in report.violations:
        for tid in violation.tids:
            dirty_map[tid].append(violation)

    constant_subs = [sub for _parent, sub in _applicable_constant_rhs(cfds)]
    classification = TupleClassification()
    dirty_applicable = 0
    for tid, row in partial.rows():
        involved = dirty_map.get(tid, [])
        if any(
            sub.applies_to(row, sub.patterns[0]) for sub in constant_subs
        ):
            dirty_applicable += 1
        if involved and all(violation.is_multi for violation in involved) and all(
            _majority_agrees(partial, tid, violation, majority)
            for violation in involved
        ):
            classification.categories[tid] = Cleanliness.ARGUABLY
        else:
            classification.categories[tid] = Cleanliness.DIRTY
    applicable = source.applicable_count(constant_subs) if constant_subs else 0
    verified = applicable - dirty_applicable
    clean = source.row_count() - len(dirty_map)
    classification.aggregate[Cleanliness.VERIFIED] = verified
    classification.aggregate[Cleanliness.PROBABLY] = clean - verified
    return classification


def classify_cells_source(
    source: "TupleSource",
    partial: Relation,
    cfds: Sequence[CFD],
    report: ViolationReport,
    majority: float = 0.5,
) -> AttributeClassification:
    """Resident counterpart of :func:`classify_cells`.

    Implicated cells (all on dirty, fetched tuples) classify natively;
    non-implicated cells classify in bulk per attribute from one
    applicability aggregate over that attribute's constant-RHS subs.
    """
    implicated: Dict[Tuple[int, str], List[Violation]] = defaultdict(list)
    for violation in report.violations:
        for tid in violation.tids:
            implicated[(tid, violation.rhs_attribute)].append(violation)

    per_attribute_constant: Dict[str, List[CFD]] = defaultdict(list)
    for _parent, sub in _applicable_constant_rhs(cfds):
        per_attribute_constant[sub.rhs[0]].append(sub)

    implicated_by_attribute: Dict[str, List[int]] = defaultdict(list)
    for tid, attribute in implicated:
        implicated_by_attribute[attribute].append(tid)

    total = source.row_count()
    attributes = source.attribute_names()
    counts: Dict[str, Dict[Cleanliness, int]] = {
        attribute: {category: 0 for category in Cleanliness}
        for attribute in attributes
    }
    for attribute in attributes:
        subs = per_attribute_constant.get(attribute, [])
        implicated_tids = sorted(implicated_by_attribute.get(attribute, []))
        dirty_applicable = 0
        for tid in implicated_tids:
            row = partial.get(tid)
            cell_violations = implicated[(tid, attribute)]
            if any(sub.applies_to(row, sub.patterns[0]) for sub in subs):
                dirty_applicable += 1
            if all(v.is_multi for v in cell_violations) and all(
                _majority_agrees(partial, tid, v, majority)
                for v in cell_violations
            ):
                counts[attribute][Cleanliness.ARGUABLY] += 1
            else:
                counts[attribute][Cleanliness.DIRTY] += 1
        applicable = source.applicable_count(subs) if subs else 0
        verified = applicable - dirty_applicable
        counts[attribute][Cleanliness.VERIFIED] = verified
        counts[attribute][Cleanliness.PROBABLY] = (
            total - len(implicated_tids) - verified
        )
    return AttributeClassification(counts=counts)


def violation_statistics(report: ViolationReport) -> Dict[str, float]:
    """Aggregate statistics of ``vio(t)``: max, min, avg, and multi-tuple group sizes."""
    vio = report.vio()
    values = list(vio.values())
    group_sizes = [len(v.tids) for v in report.multi_violations()]
    def _avg(data: List[int]) -> float:
        return sum(data) / len(data) if data else 0.0

    return {
        "tuples_with_violations": float(len(values)),
        "max_vio": float(max(values)) if values else 0.0,
        "min_vio": float(min(values)) if values else 0.0,
        "avg_vio": _avg(values),
        "total_violations": float(report.total_violations()),
        "single_violations": float(len(report.single_violations())),
        "multi_violations": float(len(report.multi_violations())),
        "max_group_size": float(max(group_sizes)) if group_sizes else 0.0,
        "avg_group_size": _avg(group_sizes),
    }
