"""The data quality map: colour-bucketed per-tuple dirtiness.

The paper's Fig. 3 shows a tuple-level data quality map: "the darker the
color of a tuple is, the greater ``vio(t)`` is, and thus the more dirty the
tuple is".  This module turns the per-tuple violation counts of a
:class:`~repro.detection.violations.ViolationReport` into discrete buckets
(shades) using either linear or quantile boundaries, at the tuple level and
at the attribute (cell) level.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..detection.violations import ViolationReport
from ..engine.relation import Relation
from ..errors import SemandaqError

#: Default shade names from clean to dirtiest (5 buckets).
DEFAULT_SHADES = ("clean", "light", "medium", "dark", "darkest")


@dataclass
class QualityMap:
    """Bucketed dirtiness per tuple (and per cell).

    ``vio`` may cover only the dirty tids (the resident audit never
    enumerates clean tuples); ``tuple_count`` records the full tid
    universe so the histogram's clean bucket stays exact either way.
    """

    buckets: Dict[int, int] = field(default_factory=dict)
    boundaries: Tuple[float, ...] = ()
    shades: Tuple[str, ...] = DEFAULT_SHADES
    vio: Dict[int, int] = field(default_factory=dict)
    cell_buckets: Dict[Tuple[int, str], int] = field(default_factory=dict)
    tuple_count: int = 0

    def bucket_of(self, tid: int) -> int:
        """Bucket index of tuple ``tid`` (0 = clean)."""
        return self.buckets.get(tid, 0)

    def shade_of(self, tid: int) -> str:
        """Shade name of tuple ``tid``."""
        return self.shades[self.bucket_of(tid)]

    def histogram(self) -> Dict[str, int]:
        """Number of tuples per shade."""
        result = {shade: 0 for shade in self.shades}
        for tid in self.vio:
            result[self.shade_of(tid)] += 1
        # Tuples outside ``vio`` are clean by construction.
        result[self.shades[0]] += max(0, self.tuple_count - len(self.vio))
        return result

    def dirtiest(self, top: int = 10) -> List[Tuple[int, int]]:
        """The ``top`` tuples with the highest ``vio(t)``."""
        ranked = sorted(self.vio.items(), key=lambda pair: (-pair[1], pair[0]))
        return [pair for pair in ranked if pair[1] > 0][:top]

    def cell_shade(self, tid: int, attribute: str) -> str:
        """Shade of one cell (clean if the cell is not implicated)."""
        return self.shades[self.cell_buckets.get((tid, attribute), 0)]


def linear_boundaries(max_value: int, levels: int) -> Tuple[float, ...]:
    """Evenly spaced bucket boundaries over ``(0, max_value]``."""
    if levels < 2:
        raise SemandaqError("a quality map needs at least two levels")
    if max_value <= 0:
        return tuple(float(i) for i in range(1, levels))
    step = max_value / (levels - 1)
    return tuple(step * i for i in range(1, levels))


def quantile_boundaries(values: Sequence[int], levels: int) -> Tuple[float, ...]:
    """Bucket boundaries at the quantiles of the non-zero violation counts."""
    if levels < 2:
        raise SemandaqError("a quality map needs at least two levels")
    positive = sorted(value for value in values if value > 0)
    if not positive:
        return linear_boundaries(0, levels)
    boundaries = []
    for i in range(1, levels):
        index = min(int(len(positive) * i / (levels - 1)), len(positive) - 1)
        boundaries.append(float(positive[index]))
    # Boundaries must be non-decreasing; make them strictly usable.
    for i in range(1, len(boundaries)):
        boundaries[i] = max(boundaries[i], boundaries[i - 1])
    return tuple(boundaries)


def build_quality_map(
    relation: Optional[Relation],
    report: ViolationReport,
    levels: int = len(DEFAULT_SHADES),
    strategy: str = "linear",
    shades: Tuple[str, ...] = DEFAULT_SHADES,
    tuple_count: Optional[int] = None,
) -> QualityMap:
    """Build the tuple- and cell-level quality map from a violation report.

    ``strategy`` is ``"linear"`` (evenly spaced in ``vio``) or ``"quantile"``
    (equal-population buckets among dirty tuples).  ``relation`` may be
    ``None`` when the data lives in a backend — the tid universe then
    comes from ``tuple_count`` (a catalog row count) and ``vio`` is seeded
    from the report's dirty tids alone.  The boundaries are unaffected:
    linear ones depend only on ``max(vio)`` and quantile ones ignore
    zero-violation tuples.
    """
    if shades == DEFAULT_SHADES and levels != len(DEFAULT_SHADES):
        # Derive generic shade names when the caller only customised the level
        # count (e.g. the auditor's ``quality_levels`` setting).
        shades = ("clean",) + tuple(f"level{i}" for i in range(1, levels))
    if len(shades) != levels:
        raise SemandaqError("need exactly one shade name per level")
    if relation is None:
        if tuple_count is None:
            raise SemandaqError(
                "a quality map without a relation needs a tuple_count"
            )
        vio = {}
    else:
        vio = {tid: 0 for tid, _row in relation.rows()}
        tuple_count = len(relation)
    vio.update(report.vio())
    values = list(vio.values())
    max_value = max(values) if values else 0
    if strategy == "linear":
        boundaries = linear_boundaries(max_value, levels)
    elif strategy == "quantile":
        boundaries = quantile_boundaries(values, levels)
    else:
        raise SemandaqError(f"unknown quality-map strategy {strategy!r}")

    def bucket(value: int) -> int:
        if value <= 0:
            return 0
        for index, boundary in enumerate(boundaries, start=1):
            if value <= boundary:
                return index
        return levels - 1

    buckets = {tid: bucket(value) for tid, value in vio.items()}

    # Cell-level: count the violations implicating each (tid, RHS attribute).
    cell_counts: Dict[Tuple[int, str], int] = defaultdict(int)
    for violation in report.violations:
        weight = 1 if violation.is_single else len(violation.tids) - 1
        for tid in violation.tids:
            cell_counts[(tid, violation.rhs_attribute)] += weight
    cell_buckets = {cell: bucket(count) for cell, count in cell_counts.items()}

    return QualityMap(
        buckets=buckets,
        boundaries=boundaries,
        shades=tuple(shades),
        vio=vio,
        cell_buckets=cell_buckets,
        tuple_count=tuple_count,
    )
