"""The data auditor: summarised data-quality reports.

Combines the tuple/cell classifications, the violation statistics and the
quality map into one :class:`DataQualityReport` — the programmatic
counterpart of the paper's "Data Quality Report" screen (Fig. 4): a bar
chart of verified / probably / arguably clean values per attribute, a pie
chart of violations, and distribution statistics at a chosen level of
detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..core.cfd import CFD
from ..detection.violations import ViolationReport
from ..engine.relation import Relation
from .metrics import (
    AttributeClassification,
    Cleanliness,
    TupleClassification,
    classify_cells,
    classify_cells_source,
    classify_tuples,
    classify_tuples_source,
    violation_statistics,
)
from .quality_map import DEFAULT_SHADES, QualityMap, build_quality_map

if TYPE_CHECKING:  # pragma: no cover
    from ..sources.base import TupleSource


@dataclass
class DataQualityReport:
    """The auditor's full summary for one relation."""

    relation: str
    tuple_count: int
    tuple_classification: TupleClassification
    attribute_classification: AttributeClassification
    statistics: Dict[str, float]
    per_cfd: Dict[str, Dict[str, int]]
    quality_map: QualityMap

    # -- headline numbers -----------------------------------------------------------

    def dirty_tuple_count(self) -> int:
        """Tuples classified as dirty."""
        return self.tuple_classification.counts()[Cleanliness.DIRTY]

    def dirty_percentage(self) -> float:
        """Percentage of dirty tuples."""
        if self.tuple_count == 0:
            return 0.0
        return 100.0 * self.dirty_tuple_count() / self.tuple_count

    def pie_chart(self) -> Dict[str, int]:
        """The violation pie chart of Fig. 4: tuples per cleanliness category."""
        return {
            category.value: count
            for category, count in self.tuple_classification.counts().items()
        }

    def bar_chart(self) -> Dict[str, Dict[str, float]]:
        """The per-attribute bar chart of Fig. 4 (percentages per category)."""
        return {
            attribute: {category.value: pct for category, pct in per_category.items()}
            for attribute, per_category in self.attribute_classification.percentages().items()
        }

    def worst_attributes(self, top: int = 3) -> List[Tuple[str, int]]:
        """Attributes with the most dirty cells."""
        return self.attribute_classification.dirtiest_attributes(top)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation of the whole report."""
        return {
            "relation": self.relation,
            "tuple_count": self.tuple_count,
            "pie_chart": self.pie_chart(),
            "bar_chart": self.bar_chart(),
            "statistics": dict(self.statistics),
            "per_cfd": {key: dict(value) for key, value in self.per_cfd.items()},
            "quality_map_histogram": self.quality_map.histogram(),
        }


class DataAuditor:
    """Builds :class:`DataQualityReport` objects from detection results."""

    def __init__(
        self,
        majority: float = 0.5,
        quality_levels: int = len(DEFAULT_SHADES),
        quality_strategy: str = "linear",
    ):
        self.majority = majority
        self.quality_levels = quality_levels
        self.quality_strategy = quality_strategy

    def audit(
        self,
        relation: Relation,
        cfds: Sequence[CFD],
        report: ViolationReport,
    ) -> DataQualityReport:
        """Summarise the inconsistencies detected by the error detector."""
        tuple_classification = classify_tuples(relation, cfds, report, self.majority)
        attribute_classification = classify_cells(relation, cfds, report, self.majority)
        statistics = violation_statistics(report)
        statistics["clean_tuples"] = float(report.clean_tid_count())
        statistics["dirty_tuples"] = float(len(report.dirty_tids()))
        quality_map = build_quality_map(
            relation,
            report,
            levels=self.quality_levels,
            strategy=self.quality_strategy,
        )
        return DataQualityReport(
            relation=report.relation,
            tuple_count=len(relation),
            tuple_classification=tuple_classification,
            attribute_classification=attribute_classification,
            statistics=statistics,
            per_cfd=report.per_cfd_counts(),
            quality_map=quality_map,
        )

    def audit_source(
        self,
        source: "TupleSource",
        cfds: Sequence[CFD],
        report: ViolationReport,
    ) -> DataQualityReport:
        """Resident audit: classify from the report plus backend aggregates.

        Only the dirty tuples are materialised (one ``row_fetch`` of the
        report's dirty tids); every member of every violation is dirty, so
        the majority checks run natively over that partial relation with
        the same outcome as a full copy.  Clean tuples are counted by
        pushed-down applicability aggregates, and the quality map derives
        its tid universe from the catalog row count — the working store is
        never read row-by-row.
        """
        partial = Relation(source.schema())
        for tid, values in sorted(source.fetch_rows(sorted(report.dirty_tids())).items()):
            partial.insert_at(tid, values)
        tuple_classification = classify_tuples_source(
            source, partial, cfds, report, self.majority
        )
        attribute_classification = classify_cells_source(
            source, partial, cfds, report, self.majority
        )
        statistics = violation_statistics(report)
        statistics["clean_tuples"] = float(report.clean_tid_count())
        statistics["dirty_tuples"] = float(len(report.dirty_tids()))
        quality_map = build_quality_map(
            None,
            report,
            levels=self.quality_levels,
            strategy=self.quality_strategy,
            tuple_count=source.row_count(),
        )
        return DataQualityReport(
            relation=report.relation,
            tuple_count=source.row_count(),
            tuple_classification=tuple_classification,
            attribute_classification=attribute_classification,
            statistics=statistics,
            per_cfd=report.per_cfd_counts(),
            quality_map=quality_map,
        )
