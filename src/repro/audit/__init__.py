"""The data auditor: quality metrics, quality maps, and summary reports."""

from .metrics import (
    AttributeClassification,
    Cleanliness,
    TupleClassification,
    classify_cells,
    classify_tuples,
    violation_statistics,
)
from .quality_map import (
    DEFAULT_SHADES,
    QualityMap,
    build_quality_map,
    linear_boundaries,
    quantile_boundaries,
)
from .report import DataAuditor, DataQualityReport

__all__ = [
    "Cleanliness",
    "TupleClassification",
    "AttributeClassification",
    "classify_tuples",
    "classify_cells",
    "violation_statistics",
    "QualityMap",
    "build_quality_map",
    "linear_boundaries",
    "quantile_boundaries",
    "DEFAULT_SHADES",
    "DataAuditor",
    "DataQualityReport",
]
