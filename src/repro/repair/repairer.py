"""The data cleanser: heuristic CFD-based repair by value modification.

Implements the BatchRepair approach of the paper's companion article (Cong,
Fan, Geerts, Jia, Ma, VLDB 2007), built on the cost model of Bohannon et al.
(SIGMOD 2005):

* a candidate repair is obtained from the original data using attribute
  value modifications on the violations;
* the algorithm aims for a repair that *minimally differs* from the original
  data under the cost model; finding the optimum is intractable, so the
  algorithm is a greedy heuristic;
* multi-tuple violations of variable CFDs are resolved by merging the RHS
  cells of the conflicting tuples into one equivalence class and later
  assigning the class the value with the smallest total modification cost
  (typically the weighted majority value);
* single-tuple violations of constant CFDs are resolved either by setting
  the RHS cell to the required constant or — when that is more expensive or
  contradicts an earlier resolution — by modifying one LHS cell so that the
  pattern no longer applies.

The repairer never runs forever: each round either removes violations or the
round limit is hit, in which case the remaining violations are reported as
``residual_violations`` (this mirrors the heuristic nature acknowledged by
the papers).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.cfd import CFD
from ..core.pattern import PatternTuple
from ..core.satisfaction import (
    multi_tuple_violation_groups,
    single_tuple_violations,
)
from ..engine.relation import Relation
from ..errors import RepairError
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .cost import CostModel
from .eqclass import Cell, EquivalenceClasses
from .source import NativeRepairSource, RepairDataSource, native_column_frequencies

#: Prefix of invented ("fresh") values used when no existing value can break a
#: violation; mirrors the fresh-value device of the repair papers.
FRESH_VALUE_PREFIX = "__unknown_"


@dataclass(frozen=True)
class CellChange:
    """One repaired cell: where, what it was, what it became, and why."""

    tid: int
    attribute: str
    old_value: Any
    new_value: Any
    cost: float
    reason: str
    alternatives: Tuple[Tuple[Any, float], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (used by the review UI)."""
        return {
            "tid": self.tid,
            "attribute": self.attribute,
            "old": self.old_value,
            "new": self.new_value,
            "cost": self.cost,
            "reason": self.reason,
            "alternatives": [list(pair) for pair in self.alternatives],
        }


@dataclass
class Repair:
    """A candidate repair: the repaired relation plus provenance."""

    original: Relation
    repaired: Relation
    changes: List[CellChange] = field(default_factory=list)
    iterations: int = 0
    residual_violations: int = 0
    #: which data source planned the repair: ``"native"`` (full in-memory
    #: relation) or ``"backend"`` (resident source — ``original`` and
    #: ``repaired`` then hold only the partial relation the planner saw,
    #: and the changes list is the complete ground truth of the repair)
    source: str = "native"

    @property
    def total_cost(self) -> float:
        """Sum of the costs of all cell changes."""
        return sum(change.cost for change in self.changes)

    @property
    def changed_cells(self) -> Dict[Cell, CellChange]:
        """Map ``(tid, attribute)`` to its (final) change."""
        return {(change.tid, change.attribute): change for change in self.changes}

    def changed_tids(self) -> Set[int]:
        """Tuples touched by the repair."""
        return {change.tid for change in self.changes}

    def changes_for(self, tid: int) -> List[CellChange]:
        """Changes applied to tuple ``tid``."""
        return [change for change in self.changes if change.tid == tid]

    def is_noop(self) -> bool:
        """Whether the repair left the data untouched."""
        return not self.changes

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary."""
        return {
            "changes": [change.to_dict() for change in self.changes],
            "total_cost": self.total_cost,
            "iterations": self.iterations,
            "residual_violations": self.residual_violations,
        }


class BatchRepairer:
    """Greedy equivalence-class based repair of CFD violations."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        max_iterations: int = 25,
        restrict_to_tids: Optional[Iterable[int]] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.cost_model = cost_model or CostModel.uniform()
        self.max_iterations = max_iterations
        #: when set, only these tuples may be modified and only violations that
        #: involve them are resolved (used by incremental repair).
        self.restrict_to_tids: Optional[Set[int]] = (
            set(restrict_to_tids) if restrict_to_tids is not None else None
        )
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._fresh_counter = 0
        #: the data source of the repair in progress (set per call); the
        #: planner itself never touches storage — every relational answer
        #: comes through this object
        self._source: Optional[RepairDataSource] = None

    # -- public API -------------------------------------------------------------------

    def repair(self, relation: Relation, cfds: Sequence[CFD]) -> Repair:
        """Compute a candidate repair of ``relation`` with respect to ``cfds``."""
        return self.repair_with_source(NativeRepairSource(relation), cfds)

    def repair_with_source(
        self, source: RepairDataSource, cfds: Sequence[CFD]
    ) -> Repair:
        """Compute a candidate repair over the data a :class:`RepairDataSource` serves.

        This is the planner half of the PR 7 split: the greedy algorithm
        below reads and mutates only the working relation the source
        loads, and the source decides where violations, group members and
        value frequencies come from — a full in-memory copy
        (:class:`~repro.repair.source.NativeRepairSource`, the parity
        oracle) or the storage backend's resident copy
        (:class:`~repro.repair.source.BackendRepairSource`, which
        materialises just the violating tuples plus the group closures of
        the planner's own changes).
        """
        self._source = source
        for cfd in cfds:
            cfd.validate_against(source.attribute_names())
        working = source.load(cfds)
        change_log: Dict[Cell, CellChange] = {}
        original_values: Dict[Cell, Any] = {}
        column_frequencies = source.column_frequencies()

        iterations = 0
        residual = 0
        # Snapshot of the best (fewest-violations) state seen so far, so a
        # round that makes things worse on heavily interacting CFD sets can be
        # rolled back instead of returned.
        best_state: Optional[Tuple[int, Relation, Dict[Cell, CellChange]]] = None
        while iterations < self.max_iterations:
            iterations += 1
            source.begin_round(working)
            violations = self._collect_violations(working, cfds)
            if best_state is None or len(violations) < best_state[0]:
                best_state = (len(violations), working.copy(), dict(change_log))
            if not violations:
                residual = 0
                break
            # Equivalence classes are rebuilt every round: values are assigned
            # eagerly at the end of each resolution, so carrying classes across
            # rounds would chain unrelated groups together through already
            # repaired cells and over-merge (see the repair tests for the
            # measure-code/measure-name cascade this prevents).
            classes = EquivalenceClasses()
            progressed = False
            for violation in violations:
                if self._resolve(
                    violation,
                    working,
                    classes,
                    change_log,
                    original_values,
                    column_frequencies,
                ):
                    progressed = True
            if not progressed:
                residual = len(violations)
                break
        else:
            source.begin_round(working)
            residual = len(self._collect_violations(working, cfds))

        if best_state is not None and residual > best_state[0]:
            # The heuristic diverged; fall back to the best intermediate state.
            residual, working, change_log = best_state

        changes = sorted(
            change_log.values(), key=lambda change: (change.tid, change.attribute)
        )
        # Drop changes that ended where they started (can happen when a class
        # later converged back to the original value).
        changes = [
            change for change in changes if change.old_value != change.new_value
        ]
        return Repair(
            original=source.original(),
            repaired=working,
            changes=changes,
            iterations=iterations,
            residual_violations=residual,
            source="backend" if source.resident else "native",
        )

    # -- violation collection ------------------------------------------------------------

    def _collect_violations(self, relation: Relation, cfds: Sequence[CFD]):
        """Collect violations as resolution work items, cheapest-to-fix first."""
        items: List[Tuple[str, CFD, PatternTuple, Any]] = []
        for cfd in cfds:
            for sub in cfd.normalize():
                for tid, pattern_index in single_tuple_violations(relation, sub):
                    if self.restrict_to_tids is not None and tid not in self.restrict_to_tids:
                        continue
                    items.append(("single", sub, sub.patterns[pattern_index], tid))
                for pattern_index, _key, tids in multi_tuple_violation_groups(relation, sub):
                    if self.restrict_to_tids is not None and not (
                        self.restrict_to_tids & set(tids)
                    ):
                        continue
                    items.append(("multi", sub, sub.patterns[pattern_index], tuple(tids)))
        return items

    # -- resolution -----------------------------------------------------------------------

    def _resolve(
        self,
        violation,
        working: Relation,
        classes: EquivalenceClasses,
        change_log: Dict[Cell, CellChange],
        original_values: Dict[Cell, Any],
        column_frequencies: Dict[str, Counter],
    ) -> bool:
        kind, cfd, pattern, payload = violation
        if kind == "single":
            return self._resolve_single(
                cfd, pattern, payload, working, classes, change_log, original_values,
                column_frequencies,
            )
        return self._resolve_multi(
            cfd, pattern, payload, working, classes, change_log, original_values,
            column_frequencies,
        )

    def _resolve_single(
        self,
        cfd: CFD,
        pattern: PatternTuple,
        tid: int,
        working: Relation,
        classes: EquivalenceClasses,
        change_log: Dict[Cell, CellChange],
        original_values: Dict[Cell, Any],
        column_frequencies: Dict[str, Counter],
    ) -> bool:
        row = working.get(tid)
        if not cfd.single_tuple_violation(row, pattern):
            return False  # already fixed by an earlier resolution this round
        rhs_attribute = cfd.rhs[0]
        required = pattern.value(rhs_attribute).constant
        rhs_cell: Cell = (tid, rhs_attribute)

        # Option A: set the RHS cell to the required constant.
        rhs_cost = self.cost_model.change_cost(
            tid, rhs_attribute, row.get(rhs_attribute), required
        )
        # Option B: break the LHS match by changing the cheapest constant LHS cell.
        lhs_option = self._cheapest_lhs_break(
            cfd, pattern, tid, row, column_frequencies
        )

        may_pin = not (
            classes.is_pinned(rhs_cell)
            and classes.pinned_value(rhs_cell) != required
        )
        if may_pin and (lhs_option is None or rhs_cost <= lhs_option[2]):
            classes.add(rhs_cell)
            classes.pin(rhs_cell, required)
            alternatives = self._ranked_alternatives(
                working, classes, rhs_cell, column_frequencies
            )
            self._apply_class_value(
                working,
                classes,
                rhs_cell,
                required,
                cfd.identifier,
                change_log,
                original_values,
                alternatives,
            )
            return True
        if lhs_option is None:
            # Cannot pin and cannot break the LHS: change the RHS cell to a
            # fresh value so at least this constant violation disappears.
            fresh = self._fresh_value()
            self._record_change(
                working, (tid, rhs_attribute), fresh, cfd.identifier,
                change_log, original_values, alternatives=(),
                fresh=True,
            )
            return True
        lhs_attribute, new_value, cost, fresh = lhs_option
        self._record_change(
            working,
            (tid, lhs_attribute),
            new_value,
            cfd.identifier,
            change_log,
            original_values,
            alternatives=(),
            fresh=fresh,
        )
        return True

    def _resolve_multi(
        self,
        cfd: CFD,
        pattern: PatternTuple,
        tids: Tuple[int, ...],
        working: Relation,
        classes: EquivalenceClasses,
        change_log: Dict[Cell, CellChange],
        original_values: Dict[Cell, Any],
        column_frequencies: Dict[str, Counter],
    ) -> bool:
        rhs_attribute = cfd.rhs[0]
        live_tids = [tid for tid in tids if tid in working]
        if len(live_tids) < 2:
            return False
        rows = {tid: working.get(tid) for tid in live_tids}
        values = {
            rows[tid].get(rhs_attribute)
            for tid in live_tids
            if rows[tid].get(rhs_attribute) is not None
        }
        if len(values) <= 1:
            return False  # already resolved earlier this round
        cells = [(tid, rhs_attribute) for tid in live_tids]
        if self.restrict_to_tids is not None:
            changeable = [cell for cell in cells if cell[0] in self.restrict_to_tids]
            if not changeable:
                return False

        # The group's RHS cells form an equivalence class *local to this
        # violation*: a fresh union-find is used so that one corrupted LHS
        # value bridging two large groups (e.g. a mistyped key) cannot chain
        # them into a single giant class and rewrite half the column.
        group_classes = EquivalenceClasses()
        anchor = cells[0]
        group_classes.add(anchor)
        pinned_conflict = False
        for cell in cells:
            group_classes.add(cell)
            pinned = classes.pinned_value(cell) if cell in classes else None
            if pinned is not None:
                try:
                    group_classes.pin(cell, pinned)
                except RepairError:
                    pinned_conflict = True
                    break
        if not pinned_conflict:
            try:
                for cell in cells[1:]:
                    group_classes.union(anchor, cell)
            except RepairError:
                pinned_conflict = True
            else:
                self.telemetry.inc("repair.classes_merged", len(cells) - 1)
        if pinned_conflict:
            # Cells pinned to different constants: break the group instead by
            # changing an LHS cell of one conflicting tuple.
            row = rows[live_tids[-1]]
            option = self._cheapest_lhs_break(
                cfd, pattern, live_tids[-1], row, column_frequencies
            )
            if option is None:
                return False
            lhs_attribute, new_value, _cost, fresh = option
            self._record_change(
                working,
                (live_tids[-1], lhs_attribute),
                new_value,
                cfd.identifier,
                change_log,
                original_values,
                alternatives=(),
                fresh=fresh,
            )
            return True

        current_values = {cell: working.get(cell[0]).get(cell[1]) for cell in cells}
        if self.restrict_to_tids is not None:
            # Incremental repair: only updated tuples may change, so the target
            # value must be one carried by a protected (non-updatable) member
            # if any exists.
            frozen_values = [
                value
                for cell, value in current_values.items()
                if cell[0] not in self.restrict_to_tids and value is not None
            ]
            candidates = frozen_values or None
        else:
            candidates = None
        best_value, _best_cost, ranked = group_classes.choose_value(
            anchor, current_values, self.cost_model, candidates=candidates
        )
        self._apply_class_value(
            working,
            group_classes,
            anchor,
            best_value,
            cfd.identifier,
            change_log,
            original_values,
            tuple(ranked),
        )
        return True

    # -- helpers -----------------------------------------------------------------------------

    def _cheapest_lhs_break(
        self,
        cfd: CFD,
        pattern: PatternTuple,
        tid: int,
        row: Mapping[str, Any],
        column_frequencies: Dict[str, Counter],
    ) -> Optional[Tuple[str, Any, float, bool]]:
        """Cheapest LHS modification that makes ``pattern`` no longer apply to ``row``.

        Only constant LHS positions can be broken by a value change (a
        wildcard matches everything).  Returns ``(attribute, new_value, cost,
        is_fresh)`` or ``None`` when the LHS has no constant position.
        """
        if self.restrict_to_tids is not None and tid not in self.restrict_to_tids:
            return None
        best: Optional[Tuple[str, Any, float, bool]] = None
        for attribute in cfd.lhs:
            pattern_value = pattern.value(attribute)
            if not pattern_value.is_constant:
                continue
            candidate, fresh = self._non_matching_value(
                attribute, pattern_value.constant, column_frequencies
            )
            cost = self.cost_model.change_cost(
                tid, attribute, row.get(attribute), candidate, fresh=fresh
            )
            if best is None or cost < best[2]:
                best = (attribute, candidate, cost, fresh)
        return best

    def _non_matching_value(
        self, attribute: str, avoid: Any, column_frequencies: Dict[str, Counter]
    ) -> Tuple[Any, bool]:
        """A plausible value for ``attribute`` different from ``avoid``."""
        for value, _count in column_frequencies.get(attribute, Counter()).most_common():
            if value != avoid and value is not None:
                return value, False
        return self._fresh_value(), True

    def _fresh_value(self) -> str:
        self._fresh_counter += 1
        return f"{FRESH_VALUE_PREFIX}{self._fresh_counter}__"

    def _ranked_alternatives(
        self,
        working: Relation,
        classes: EquivalenceClasses,
        cell: Cell,
        column_frequencies: Dict[str, Counter],
    ) -> Tuple[Tuple[Any, float], ...]:
        attribute = cell[1]
        members = classes.members(cell)
        current_values = {member: working.get(member[0]).get(member[1]) for member in members}
        frequent = [value for value, _count in column_frequencies.get(attribute, Counter()).most_common(5)]
        _best, _cost, ranked = classes.choose_value(
            cell, current_values, self.cost_model, candidates=frequent
        )
        return tuple(ranked)

    def _apply_class_value(
        self,
        working: Relation,
        classes: EquivalenceClasses,
        cell: Cell,
        value: Any,
        reason: str,
        change_log: Dict[Cell, CellChange],
        original_values: Dict[Cell, Any],
        alternatives: Tuple[Tuple[Any, float], ...],
    ) -> None:
        for member in classes.members(cell):
            member_tid, member_attribute = member
            if self.restrict_to_tids is not None and member_tid not in self.restrict_to_tids:
                continue
            if member_tid not in working:
                continue
            current = working.get(member_tid).get(member_attribute)
            if current == value:
                continue
            self._record_change(
                working,
                member,
                value,
                reason,
                change_log,
                original_values,
                alternatives,
            )

    def _record_change(
        self,
        working: Relation,
        cell: Cell,
        new_value: Any,
        reason: str,
        change_log: Dict[Cell, CellChange],
        original_values: Dict[Cell, Any],
        alternatives: Tuple[Tuple[Any, float], ...],
        fresh: bool = False,
    ) -> None:
        tid, attribute = cell
        current = working.get(tid).get(attribute)
        if cell not in original_values:
            original_values[cell] = current
        original = original_values[cell]
        working.update(tid, {attribute: new_value})
        # the source may need to grow the working relation over the groups
        # this change moved the tuple into (a no-op for the native source)
        if self._source is not None:
            self._source.note_change(working, tid, attribute)
        cost = self.cost_model.change_cost(tid, attribute, original, new_value, fresh=fresh)
        change_log[cell] = CellChange(
            tid=tid,
            attribute=attribute,
            old_value=original,
            new_value=new_value,
            cost=cost,
            reason=reason,
            alternatives=alternatives,
        )

    def _column_frequencies(self, relation: Relation) -> Dict[str, Counter]:
        return native_column_frequencies(relation)


def repair_quality(
    repair: Repair,
    ground_truth: Relation,
    dirty: Optional[Relation] = None,
) -> Dict[str, float]:
    """Precision / recall / F1 of a repair against a known clean ground truth.

    A cell is *corrupted* when the dirty relation differs from the ground
    truth; a cell is *changed* when the repair modified it.  Precision is the
    fraction of changed cells restored to their true value; recall is the
    fraction of corrupted cells restored.  This is the standard measure the
    companion repair paper reports.
    """
    dirty = dirty or repair.original
    corrupted: Set[Cell] = set()
    for tid, truth_row in ground_truth.rows():
        if tid not in dirty:
            continue
        dirty_row = dirty.get(tid)
        for attribute, truth_value in truth_row.items():
            if dirty_row.get(attribute) != truth_value:
                corrupted.add((tid, attribute))
    changed = set(repair.changed_cells)
    correctly_restored = {
        (tid, attribute)
        for (tid, attribute) in changed
        if tid in ground_truth
        and repair.repaired.get(tid).get(attribute) == ground_truth.get(tid).get(attribute)
    }
    fixed_corrupted = correctly_restored & corrupted
    precision = len(correctly_restored) / len(changed) if changed else 1.0
    recall = len(fixed_corrupted) / len(corrupted) if corrupted else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "changed_cells": float(len(changed)),
        "corrupted_cells": float(len(corrupted)),
    }
