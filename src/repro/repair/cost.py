"""The cost model for value-modification repairs.

Follows the cost-based framework of Bohannon et al. (SIGMOD 2005), which the
paper's data cleanser builds on: the cost of changing the value ``v`` of
attribute ``A`` in tuple ``t`` to ``v'`` is

    cost(t, A, v, v') = w(t, A) * dist(v, v')

where ``w(t, A)`` is a weight reflecting the confidence placed in the cell
(user-supplied, defaults to 1) and ``dist`` is a distance between values,
normalised to ``[0, 1]``.  For strings we use the Damerau–Levenshtein
distance divided by the length of the longer string; for numbers a relative
difference; changing a value to or from NULL costs 1.

The cost of a repair is the sum of the costs of its cell changes; the repair
algorithm searches for a candidate repair that "minimally differs" from the
original data under this measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple


def damerau_levenshtein(left: str, right: str) -> int:
    """Damerau–Levenshtein edit distance (insert/delete/substitute/transpose)."""
    if left == right:
        return 0
    len_left, len_right = len(left), len(right)
    if len_left == 0:
        return len_right
    if len_right == 0:
        return len_left
    previous_previous = [0] * (len_right + 1)
    previous = list(range(len_right + 1))
    for i in range(1, len_left + 1):
        current = [i] + [0] * len_right
        for j in range(1, len_right + 1):
            substitution_cost = 0 if left[i - 1] == right[j - 1] else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + substitution_cost,  # substitution
            )
            if (
                i > 1
                and j > 1
                and left[i - 1] == right[j - 2]
                and left[i - 2] == right[j - 1]
            ):
                current[j] = min(current[j], previous_previous[j - 2] + 1)
        previous_previous, previous = previous, current
    return previous[len_right]


def normalized_distance(old: Any, new: Any) -> float:
    """Distance between two cell values, normalised to ``[0, 1]``.

    Equal values have distance 0.  A change involving NULL costs 1 (there is
    no evidence the values are related).  Numeric values use the relative
    difference capped at 1; everything else uses normalised string edit
    distance.
    """
    if old is None and new is None:
        return 0.0
    if old is None or new is None:
        return 1.0
    if old == new:
        return 0.0
    numeric_types = (int, float)
    if (
        isinstance(old, numeric_types)
        and isinstance(new, numeric_types)
        and not isinstance(old, bool)
        and not isinstance(new, bool)
    ):
        if float(old) == float(new):
            return 0.0
        denominator = max(abs(float(old)), abs(float(new)), 1.0)
        return min(abs(float(old) - float(new)) / denominator, 1.0)
    old_text, new_text = str(old), str(new)
    longest = max(len(old_text), len(new_text))
    if longest == 0:
        return 0.0
    return min(damerau_levenshtein(old_text, new_text) / longest, 1.0)


def similarity(old: Any, new: Any) -> float:
    """Similarity = 1 - normalised distance."""
    return 1.0 - normalized_distance(old, new)


@dataclass
class CostModel:
    """Weights and distances used to price candidate repairs.

    ``attribute_weights`` maps attribute names to a confidence in ``(0, +inf)``
    (higher weight = more expensive to change); ``cell_weights`` can override
    the weight of individual ``(tid, attribute)`` cells, which is how user
    confirmations ("this value is correct") are encoded.
    """

    attribute_weights: Dict[str, float] = field(default_factory=dict)
    cell_weights: Dict[Tuple[int, str], float] = field(default_factory=dict)
    default_weight: float = 1.0
    #: extra penalty multiplier applied when a repair invents a value that does
    #: not occur anywhere in the column (the "fresh value" of the papers).
    fresh_value_penalty: float = 1.5

    def weight(self, tid: int, attribute: str) -> float:
        """Weight of cell ``(tid, attribute)``."""
        if (tid, attribute) in self.cell_weights:
            return self.cell_weights[(tid, attribute)]
        return self.attribute_weights.get(attribute, self.default_weight)

    def set_cell_weight(self, tid: int, attribute: str, weight: float) -> None:
        """Pin the weight of one cell (e.g. user-confirmed values get a large weight)."""
        self.cell_weights[(tid, attribute)] = weight

    def protect_cell(self, tid: int, attribute: str, weight: float = 1_000_000.0) -> None:
        """Make a cell effectively immutable for the repair algorithm."""
        self.set_cell_weight(tid, attribute, weight)

    def change_cost(
        self,
        tid: int,
        attribute: str,
        old: Any,
        new: Any,
        fresh: bool = False,
    ) -> float:
        """Cost of changing cell ``(tid, attribute)`` from ``old`` to ``new``."""
        base = self.weight(tid, attribute) * normalized_distance(old, new)
        if fresh:
            base *= self.fresh_value_penalty
        return base

    def repair_cost(self, changes: Mapping[Tuple[int, str], Tuple[Any, Any]]) -> float:
        """Total cost of a set of changes ``{(tid, attr): (old, new)}``."""
        return sum(
            self.change_cost(tid, attribute, old, new)
            for (tid, attribute), (old, new) in changes.items()
        )

    @classmethod
    def uniform(cls, weight: float = 1.0) -> "CostModel":
        """A cost model with the same weight for every cell."""
        return cls(default_weight=weight)
