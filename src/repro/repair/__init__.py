"""The data cleanser: cost model, equivalence classes, batch and incremental repair."""

from .cost import CostModel, damerau_levenshtein, normalized_distance, similarity
from .eqclass import EquivalenceClasses
from .incremental import IncrementalRepairer, remaining_dirty_tids
from .repairer import (
    FRESH_VALUE_PREFIX,
    BatchRepairer,
    CellChange,
    Repair,
    repair_quality,
)
from .review import ConflictNote, RepairReview, ReviewDecision

__all__ = [
    "CostModel",
    "damerau_levenshtein",
    "normalized_distance",
    "similarity",
    "EquivalenceClasses",
    "BatchRepairer",
    "Repair",
    "CellChange",
    "repair_quality",
    "FRESH_VALUE_PREFIX",
    "IncrementalRepairer",
    "remaining_dirty_tids",
    "RepairReview",
    "ReviewDecision",
    "ConflictNote",
]
