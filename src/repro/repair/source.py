"""Repair data sources: where the repairer's relational work runs.

PR 7 splits the data cleanser into two halves:

* the **planner** (:class:`~repro.repair.repairer.BatchRepairer` with the
  equivalence-class and cost machinery of :mod:`repro.repair.eqclass` /
  :mod:`repro.repair.cost`) — pure decision logic over a working
  :class:`~repro.engine.relation.Relation` it owns;
* a **data source** (this module) — the only component that talks to
  storage.  It decides *which tuples the planner gets to see* and answers
  the relational sub-problems (violation collection, group membership,
  value frequencies) either from an in-memory relation or from the
  storage backend's resident copy.

:class:`NativeRepairSource` is the parity oracle: the planner sees a full
copy of the relation and every answer comes from Python iteration — the
seed behaviour, bit-for-bit.

:class:`BackendRepairSource` keeps the relation in the backend and
materialises only a *partial* working relation:

* the initial tuple set is the violating tuples of a backend-resident
  ``detect()`` (reusing the PR 5 pushdown end to end);
* ``_column_frequencies`` becomes one ``GROUP BY``/``COUNT`` aggregate
  per attribute (:meth:`DetectionSqlGenerator.value_freq_query`), ordered
  client-side by ``(freq DESC, MIN(_tid) ASC)`` so candidate ranking ties
  break exactly like the native ``Counter``'s first-encounter order;
* whenever the planner changes a cell, the affected LHS-group keys are
  queued, and at the start of the next round the source *closes* the
  partial relation over them: a chunked
  :meth:`~DetectionSqlGenerator.group_stats_query` aggregate answers how
  many members the backend holds per key (keys nobody stores — the
  common fresh-value case — and keys whose members are all fetched
  already are dismissed by count alone), and only the remainder pay a
  sargable :meth:`~DetectionSqlGenerator.covering_members_query`
  enumeration plus a :meth:`~DetectionSqlGenerator.row_fetch_query` for
  the missing rows.

The closure maintains the invariant the oracle proof rests on: every
backend member of every LHS group that could *become* violating through a
planner change is present in the partial relation before violations are
re-collected.  Unfetched tuples never change, so their single-tuple
status is frozen (all initially-violating tuples are fetched up front)
and a group can only turn violating through a fetched-and-changed member
— whose new key was queued.  The partial relation is therefore
violation-equivalent to the full one at every round boundary, and the
planner's decisions (which iterate fetched tuples in sorted-tid order,
exactly like the native path iterates all tuples) come out identical.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..backends.base import StorageBackend
from ..core.cfd import CFD
from ..detection.detector import ErrorDetector, decode_backend_value
from ..detection.sqlgen import (
    LHS_COLUMN_PREFIX,
    DetectionSqlGenerator,
    SqlQuery,
)
from ..engine.relation import Relation
from ..engine.types import RelationSchema
from ..obs.telemetry import NULL_TELEMETRY, Telemetry

#: pseudo-tableau name scoping the repair source's covering-member plans in
#: the generator's cache (the plans join no tableau; the name is never
#: claimed by a CFD, so the cached plans survive for the generator's life)
REPAIR_PLAN_SCOPE = "__semandaq_repair__"

GroupKey = Tuple[Any, ...]


class RepairDataSource:
    """What the repair planner needs from storage, as a narrow protocol."""

    #: whether the source keeps the relation backend-resident
    resident = False

    def attribute_names(self) -> List[str]:
        """Attribute names of the target relation (for CFD validation)."""
        raise NotImplementedError

    def load(self, cfds: Sequence[CFD]) -> Relation:
        """Build and return the working relation the planner mutates."""
        raise NotImplementedError

    def original(self) -> Relation:
        """The pristine relation recorded as :attr:`Repair.original`."""
        raise NotImplementedError

    def column_frequencies(self) -> Dict[str, Counter]:
        """Per-attribute frequency of non-NULL values in the original data."""
        raise NotImplementedError

    def begin_round(self, working: Relation) -> None:
        """Hook before each violation-collection round (closure maintenance)."""

    def note_change(self, working: Relation, tid: int, attribute: str) -> None:
        """Hook after the planner changed ``working[tid][attribute]``."""


class NativeRepairSource(RepairDataSource):
    """The parity oracle: a full in-memory copy, Python iteration throughout."""

    def __init__(self, relation: Relation):
        self.relation = relation

    def attribute_names(self) -> List[str]:
        return list(self.relation.attribute_names)

    def load(self, cfds: Sequence[CFD]) -> Relation:
        return self.relation.copy()

    def original(self) -> Relation:
        return self.relation

    def column_frequencies(self) -> Dict[str, Counter]:
        return native_column_frequencies(self.relation)


def native_column_frequencies(relation: Relation) -> Dict[str, Counter]:
    """Frequency of every non-NULL value per attribute, by relation scan."""
    frequencies: Dict[str, Counter] = {
        name: Counter() for name in relation.attribute_names
    }
    for _tid, row in relation.rows():
        for attribute, value in row.items():
            if value is not None:
                frequencies[attribute][value] += 1
    return frequencies


class BackendRepairSource(RepairDataSource):
    """Backend-resident source: the planner sees only the tuples it needs.

    ``detector`` may be shared (the facade passes its own, so the repair
    reuses its per-relation generator and prepared-plan caches); when
    omitted a private one is built over ``backend``.
    """

    resident = True

    def __init__(
        self,
        backend: StorageBackend,
        relation_name: str,
        telemetry: Optional[Telemetry] = None,
        detector: Optional[ErrorDetector] = None,
    ):
        self.backend = backend
        self.relation_name = relation_name
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._detector = detector or ErrorDetector(
            backend, use_sql=True, telemetry=telemetry
        )
        self._schema: Optional[RelationSchema] = None
        self._generator: Optional[DetectionSqlGenerator] = None
        self._original: Optional[Relation] = None
        #: pristine backend rows of every fetched tuple (decoded values);
        #: the backend copy is frozen while a repair is planned, so these
        #: answer "is every backend member of this key already fetched?"
        #: exactly, without a round trip
        self._backend_rows: Dict[int, Dict[str, Any]] = {}
        #: per closure sub-CFD: pristine member count per LHS key among the
        #: fetched rows (maintained at fetch time so the begin_round
        #: pre-filter is a dictionary lookup, not a scan)
        self._fetched_members: List[Counter] = []
        #: normalised sub-CFDs with a wildcard RHS (the only shapes whose
        #: group membership a cell change can grow)
        self._subs: List[CFD] = []
        #: closure queue: sub-CFD index -> ordered set of LHS keys to re-check
        self._pending: Dict[int, Dict[GroupKey, None]] = {}
        #: SQL issued by this source (the detector keeps its own log)
        self.last_sql: List[str] = []
        #: pushdown counters (tests and benchmarks read these)
        self.stats = {
            "rows_fetched": 0,
            "groups_checked": 0,
            "groups_expanded": 0,
        }

    # -- protocol ----------------------------------------------------------------

    def attribute_names(self) -> List[str]:
        return list(self._schema_of().attribute_names)

    def load(self, cfds: Sequence[CFD]) -> Relation:
        schema = self._schema_of()
        self._generator = DetectionSqlGenerator(
            schema, dialect=self.backend.dialect, telemetry=self.telemetry
        )
        self._subs = self._closure_subs(cfds)
        self._fetched_members = [Counter() for _ in self._subs]
        working = Relation(schema)
        self._original = Relation(schema)
        # The initial working set: exactly the violating tuples, found by
        # the backend-resident detect (zero working-store reads, PR 5).
        report = self._detector.detect(self.relation_name, cfds)
        self._fetch_rows(working, sorted(report.dirty_tids()))
        return working

    def original(self) -> Relation:
        if self._original is None:
            raise RuntimeError("load() must run before original()")
        return self._original

    def column_frequencies(self) -> Dict[str, Counter]:
        schema = self._schema_of()
        generator = self._require_generator()
        frequencies: Dict[str, Counter] = {}
        for attribute in schema.attribute_names:
            rows = self._execute(generator.value_freq_query(attribute))
            decoded = [
                (
                    decode_backend_value(schema, attribute, row["value"]),
                    int(row["freq"]),
                    row["first_tid"],
                )
                for row in rows
            ]
            # (freq DESC, first-encounter tid ASC) insertion order makes
            # Counter.most_common — a stable sort on count — break ties
            # exactly like the native first-encounter Counter.
            decoded.sort(key=lambda item: (-item[1], item[2]))
            counter: Counter = Counter()
            for value, freq, _first_tid in decoded:
                counter[value] = freq
            frequencies[attribute] = counter
        return frequencies

    def begin_round(self, working: Relation) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, {}
        generator = self._require_generator()
        schema = self._schema_of()
        for sub_index, keymap in pending.items():
            sub = self._subs[sub_index]
            keys = list(keymap)
            rhs_attribute = sub.rhs[0]
            self.stats["groups_checked"] += len(keys)
            # Aggregate pre-filter: member counts straight off the CFD-LHS
            # index.  A key nobody stores (fresh values) or whose members
            # are all fetched already needs no enumeration.
            counts: Dict[GroupKey, int] = {}
            for plan in generator.group_stats_plans(sub, rhs_attribute, keys):
                for row in self._execute(plan):
                    key = tuple(
                        decode_backend_value(
                            schema, attr, row[LHS_COLUMN_PREFIX + attr]
                        )
                        for attr in sub.lhs
                    )
                    counts[key] = int(row["member_count"])
            fetched = self._fetched_members[sub_index]
            expand = [key for key in keys if counts.get(key, 0) > fetched[key]]
            if not expand:
                continue
            self.stats["groups_expanded"] += len(expand)
            missing: Dict[int, None] = {}
            for plan in generator.covering_members_plans(
                sub, REPAIR_PLAN_SCOPE, rhs_attribute, expand
            ):
                for row in self._execute(plan):
                    tid = row["tid"]
                    if tid not in working:
                        missing[tid] = None
            self._fetch_rows(working, sorted(missing))

    def note_change(self, working: Relation, tid: int, attribute: str) -> None:
        row = working.get(tid)
        for sub_index, sub in enumerate(self._subs):
            if attribute not in sub.lhs and attribute != sub.rhs[0]:
                continue
            key = tuple(row.get(attr) for attr in sub.lhs)
            if any(value is None for value in key):
                continue  # NULL-LHS tuples belong to no group
            if not self._key_applicable(sub, key):
                continue  # no wildcard-RHS pattern covers this key
            self._pending.setdefault(sub_index, {})[key] = None

    # -- internals ---------------------------------------------------------------

    def _schema_of(self) -> RelationSchema:
        if self._schema is None:
            self._schema = self.backend.schema(self.relation_name)
        return self._schema

    def _require_generator(self) -> DetectionSqlGenerator:
        if self._generator is None:
            raise RuntimeError("load() must run before queries are planned")
        return self._generator

    def _closure_subs(self, cfds: Sequence[CFD]) -> List[CFD]:
        subs: List[CFD] = []
        seen = set()
        for cfd in cfds:
            for sub in cfd.normalize():
                signature = (sub.lhs, sub.rhs, sub.patterns)
                if signature in seen:
                    continue
                seen.add(signature)
                if sub.lhs and any(
                    sub.rhs_pattern(pattern).value(sub.rhs[0]).is_wildcard
                    for pattern in sub.patterns
                ):
                    subs.append(sub)
        return subs

    def _key_applicable(self, sub: CFD, key: GroupKey) -> bool:
        """Whether some wildcard-RHS pattern's LHS constants match ``key``."""
        rhs_attribute = sub.rhs[0]
        row_like = dict(zip(sub.lhs, key))
        for pattern in sub.patterns:
            if not pattern.value(rhs_attribute).is_wildcard:
                continue
            if sub.lhs_pattern(pattern).matches(row_like):
                return True
        return False

    def _note_fetched(self, values: Dict[str, Any]) -> None:
        """Account one pristine fetched row in the per-sub member counters.

        The counting criterion mirrors :meth:`group_stats_query` exactly —
        LHS equals the key, RHS non-NULL, no pattern filter — so a
        counter hitting the backend's ``member_count`` proves every
        backend member of that key is already materialised.
        """
        for index, sub in enumerate(self._subs):
            if values.get(sub.rhs[0]) is None:
                continue
            key = tuple(values.get(attr) for attr in sub.lhs)
            if any(value is None for value in key):
                continue
            self._fetched_members[index][key] += 1

    def _fetch_rows(self, working: Relation, tids: Sequence[int]) -> None:
        missing = [tid for tid in tids if tid not in working]
        if not missing:
            return
        schema = self._schema_of()
        generator = self._require_generator()
        for plan in generator.row_fetch_plans(missing):
            for row in self._execute(plan):
                tid = row["tid"]
                if tid in working:
                    continue  # padding repeats the last tid
                values = {
                    attr: decode_backend_value(schema, attr, row.get(attr))
                    for attr in schema.attribute_names
                }
                working.insert_at(tid, dict(values))
                self.original().insert_at(tid, dict(values))
                self._backend_rows[tid] = values
                self._note_fetched(values)
                self.stats["rows_fetched"] += 1

    def _execute(self, query: SqlQuery) -> List[Dict[str, Any]]:
        self.last_sql.append(query.sql)
        if not self.telemetry.active:
            return self.backend.execute(query.sql, query.parameters)
        with self.telemetry.tag_statements(query.kind):
            return self.backend.execute(query.sql, query.parameters)
