"""Repair data sources: where the repairer's relational work runs.

PR 7 splits the data cleanser into two halves:

* the **planner** (:class:`~repro.repair.repairer.BatchRepairer` with the
  equivalence-class and cost machinery of :mod:`repro.repair.eqclass` /
  :mod:`repro.repair.cost`) — pure decision logic over a working
  :class:`~repro.engine.relation.Relation` it owns;
* a **data source** (this module) — the only component that talks to
  storage.  It decides *which tuples the planner gets to see* and answers
  the relational sub-problems (violation collection, group membership,
  value frequencies) either from an in-memory relation or from the
  storage backend's resident copy.

:class:`NativeRepairSource` is the parity oracle: the planner sees a full
copy of the relation and every answer comes from Python iteration — the
seed behaviour, bit-for-bit.

:class:`BackendRepairSource` keeps the relation in the backend and
materialises only a *partial* working relation:

* the initial tuple set is the violating tuples of a backend-resident
  ``detect()`` (reusing the PR 5 pushdown end to end);
* ``_column_frequencies`` becomes one ``GROUP BY``/``COUNT`` aggregate
  per attribute (:meth:`DetectionSqlGenerator.value_freq_query`), ordered
  client-side by ``(freq DESC, MIN(_tid) ASC)`` so candidate ranking ties
  break exactly like the native ``Counter``'s first-encounter order;
* whenever the planner changes a cell, the affected LHS-group keys are
  queued, and at the start of the next round the source *closes* the
  partial relation over them: a chunked
  :meth:`~DetectionSqlGenerator.group_stats_query` aggregate answers how
  many members the backend holds per key (keys nobody stores — the
  common fresh-value case — and keys whose members are all fetched
  already are dismissed by count alone), and only the remainder pay a
  sargable :meth:`~DetectionSqlGenerator.covering_members_query`
  enumeration plus a :meth:`~DetectionSqlGenerator.row_fetch_query` for
  the missing rows.

The closure maintains the invariant the oracle proof rests on: every
backend member of every LHS group that could *become* violating through a
planner change is present in the partial relation before violations are
re-collected.  Unfetched tuples never change, so their single-tuple
status is frozen (all initially-violating tuples are fetched up front)
and a group can only turn violating through a fetched-and-changed member
— whose new key was queued.  The partial relation is therefore
violation-equivalent to the full one at every round boundary, and the
planner's decisions (which iterate fetched tuples in sorted-tid order,
exactly like the native path iterates all tuples) come out identical.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..backends.base import StorageBackend
from ..core.cfd import CFD
from ..detection.detector import ErrorDetector
from ..detection.sqlgen import DetectionSqlGenerator
from ..engine.relation import Relation
from ..engine.types import RelationSchema
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..sources.backend import BackendTupleSource
from ..sources.base import GroupKey
from ..sources.native import native_column_frequencies

__all__ = [
    "REPAIR_PLAN_SCOPE",
    "GroupKey",
    "RepairDataSource",
    "NativeRepairSource",
    "BackendRepairSource",
    "native_column_frequencies",
]

#: pseudo-tableau name scoping the repair source's covering-member plans in
#: the generator's cache (the plans join no tableau; the name is never
#: claimed by a CFD, so the cached plans survive for the generator's life)
REPAIR_PLAN_SCOPE = "__semandaq_repair__"


class RepairDataSource:
    """What the repair planner needs from storage, as a narrow protocol."""

    #: whether the source keeps the relation backend-resident
    resident = False

    def attribute_names(self) -> List[str]:
        """Attribute names of the target relation (for CFD validation)."""
        raise NotImplementedError

    def load(self, cfds: Sequence[CFD]) -> Relation:
        """Build and return the working relation the planner mutates."""
        raise NotImplementedError

    def original(self) -> Relation:
        """The pristine relation recorded as :attr:`Repair.original`."""
        raise NotImplementedError

    def column_frequencies(self) -> Dict[str, Counter]:
        """Per-attribute frequency of non-NULL values in the original data."""
        raise NotImplementedError

    def begin_round(self, working: Relation) -> None:
        """Hook before each violation-collection round (closure maintenance)."""

    def note_change(self, working: Relation, tid: int, attribute: str) -> None:
        """Hook after the planner changed ``working[tid][attribute]``."""


class NativeRepairSource(RepairDataSource):
    """The parity oracle: a full in-memory copy, Python iteration throughout."""

    def __init__(self, relation: Relation):
        self.relation = relation

    def attribute_names(self) -> List[str]:
        return list(self.relation.attribute_names)

    def load(self, cfds: Sequence[CFD]) -> Relation:
        return self.relation.copy()

    def original(self) -> Relation:
        return self.relation

    def column_frequencies(self) -> Dict[str, Counter]:
        return native_column_frequencies(self.relation)


class BackendRepairSource(RepairDataSource):
    """Backend-resident source: the planner sees only the tuples it needs.

    ``detector`` may be shared (the facade passes its own, so the repair
    reuses its per-relation generator and prepared-plan caches); when
    omitted a private one is built over ``backend``.

    ``fetch_threshold`` (0 < t <= 1, ``None`` = disabled) caps the fraction
    of the relation the closure may fetch row-by-row.  When the dirty
    region at load time — or the cumulative fetches a closure round would
    reach — crosses ``t * row_count``, the source falls back to one
    keyset-paged full scan (``page_fetch``) and completes the working
    relation, which is strictly cheaper than paying O(N / chunk) ``IN``
    restrictions to fetch nearly everything anyway.  The blanket-group
    pathology (``[CC] -> [CNT]`` noise turning whole countries into one
    multi-tuple violation) is exactly that regime.
    """

    resident = True

    #: rows per ``page_fetch`` statement when the full-scan fallback engages
    FALLBACK_PAGE_SIZE = 512

    def __init__(
        self,
        backend: StorageBackend,
        relation_name: str,
        telemetry: Optional[Telemetry] = None,
        detector: Optional[ErrorDetector] = None,
        fetch_threshold: Optional[float] = None,
    ):
        self.backend = backend
        self.relation_name = relation_name
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.fetch_threshold = fetch_threshold
        self._detector = detector or ErrorDetector(
            backend, use_sql=True, telemetry=telemetry
        )
        #: shared read layer: every pushed-down read goes through here
        self._source = BackendTupleSource(
            backend,
            relation_name,
            telemetry=telemetry,
            plan_scope=REPAIR_PLAN_SCOPE,
        )
        self._schema: Optional[RelationSchema] = None
        self._generator: Optional[DetectionSqlGenerator] = None
        self._original: Optional[Relation] = None
        self._total_rows = 0
        #: whether the working relation holds every stored tuple (set by
        #: the threshold fallback; closure rounds become no-ops)
        self._complete = False
        #: pristine backend rows of every fetched tuple (decoded values);
        #: the backend copy is frozen while a repair is planned, so these
        #: answer "is every backend member of this key already fetched?"
        #: exactly, without a round trip
        self._backend_rows: Dict[int, Dict[str, Any]] = {}
        #: per closure sub-CFD: pristine member count per LHS key among the
        #: fetched rows (maintained at fetch time so the begin_round
        #: pre-filter is a dictionary lookup, not a scan)
        self._fetched_members: List[Counter] = []
        #: per closure sub-CFD: pristine non-NULL RHS values per LHS key
        #: among the fetched rows — subtracting these from a backend
        #: ``majority_value`` histogram leaves the unfetched remainder
        self._fetched_values: List[Dict[GroupKey, Counter]] = []
        #: normalised sub-CFDs with a wildcard RHS (the only shapes whose
        #: group membership a cell change can grow)
        self._subs: List[CFD] = []
        #: closure queue: sub-CFD index -> ordered set of LHS keys to re-check
        self._pending: Dict[int, Dict[GroupKey, None]] = {}
        #: SQL issued by this source (the detector keeps its own log);
        #: shared with the tuple source so both halves log to one place
        self.last_sql: List[str] = self._source.last_sql
        #: pushdown counters (tests and benchmarks read these)
        self.stats = {
            "rows_fetched": 0,
            "groups_checked": 0,
            "groups_expanded": 0,
            "groups_pruned": 0,
            "fallback_shipback": 0,
        }

    # -- protocol ----------------------------------------------------------------

    def attribute_names(self) -> List[str]:
        return list(self._schema_of().attribute_names)

    def load(self, cfds: Sequence[CFD]) -> Relation:
        schema = self._schema_of()
        self._generator = DetectionSqlGenerator(
            schema, dialect=self.backend.dialect, telemetry=self.telemetry
        )
        self._source._generator = self._generator  # share the plan cache
        self._subs = self._closure_subs(cfds)
        self._fetched_members = [Counter() for _ in self._subs]
        self._fetched_values = [{} for _ in self._subs]
        self._total_rows = self._source.row_count()
        working = Relation(schema)
        self._original = Relation(schema)
        # The initial working set: exactly the violating tuples, found by
        # the backend-resident detect (zero working-store reads, PR 5).
        report = self._detector.detect(self.relation_name, cfds)
        dirty = sorted(report.dirty_tids())
        if self._over_threshold(len(dirty)):
            self._ship_all(working)
        else:
            self._fetch_rows(working, dirty)
        return working

    def original(self) -> Relation:
        if self._original is None:
            raise RuntimeError("load() must run before original()")
        return self._original

    def column_frequencies(self) -> Dict[str, Counter]:
        self._require_generator()
        return self._source.value_frequencies()

    def begin_round(self, working: Relation) -> None:
        if self._complete or not self._pending:
            return
        pending, self._pending = self._pending, {}
        self._require_generator()
        for sub_index, keymap in pending.items():
            sub = self._subs[sub_index]
            keys = list(keymap)
            rhs_attribute = sub.rhs[0]
            self.stats["groups_checked"] += len(keys)
            # Aggregate pre-filter: member counts straight off the CFD-LHS
            # index.  A key nobody stores (fresh values) or whose members
            # are all fetched already needs no enumeration.
            counts = self._source.group_member_counts(sub, rhs_attribute, keys)
            fetched = self._fetched_members[sub_index]
            candidates = [
                key for key in keys if counts.get(key, 0) > fetched[key]
            ]
            if not candidates:
                continue
            # Majority pruning: a group whose combined value set — working
            # values of fetched members plus backend values of unfetched
            # ones — is already unanimous cannot violate, so the planner
            # would decide nothing differently for it.  One majority_value
            # histogram resolves that without shipping a single member.
            expand = self._prune_decided(working, sub_index, sub, candidates)
            if not expand:
                continue
            self.stats["groups_expanded"] += len(expand)
            missing = sorted(
                tid
                for tid in self._source.covering_member_tids(
                    sub, rhs_attribute, expand
                )
                if tid not in working
            )
            if self._over_threshold(self.stats["rows_fetched"] + len(missing)):
                self._ship_all(working)
                return
            self._fetch_rows(working, missing)

    def note_change(self, working: Relation, tid: int, attribute: str) -> None:
        if self._complete:
            return  # the working relation already holds every stored tuple
        row = working.get(tid)
        for sub_index, sub in enumerate(self._subs):
            if attribute not in sub.lhs and attribute != sub.rhs[0]:
                continue
            key = tuple(row.get(attr) for attr in sub.lhs)
            if any(value is None for value in key):
                continue  # NULL-LHS tuples belong to no group
            if not self._key_applicable(sub, key):
                continue  # no wildcard-RHS pattern covers this key
            self._pending.setdefault(sub_index, {})[key] = None

    def fetch_fraction(self) -> float:
        """Fraction of the stored relation fetched row-by-row so far."""
        if not self._total_rows:
            return 0.0
        return self.stats["rows_fetched"] / self._total_rows

    # -- internals ---------------------------------------------------------------

    def _schema_of(self) -> RelationSchema:
        if self._schema is None:
            self._schema = self.backend.schema(self.relation_name)
        return self._schema

    def _require_generator(self) -> DetectionSqlGenerator:
        if self._generator is None:
            raise RuntimeError("load() must run before queries are planned")
        return self._generator

    def _closure_subs(self, cfds: Sequence[CFD]) -> List[CFD]:
        subs: List[CFD] = []
        seen = set()
        for cfd in cfds:
            for sub in cfd.normalize():
                signature = (sub.lhs, sub.rhs, sub.patterns)
                if signature in seen:
                    continue
                seen.add(signature)
                if sub.lhs and any(
                    sub.rhs_pattern(pattern).value(sub.rhs[0]).is_wildcard
                    for pattern in sub.patterns
                ):
                    subs.append(sub)
        return subs

    def _key_applicable(self, sub: CFD, key: GroupKey) -> bool:
        """Whether some wildcard-RHS pattern's LHS constants match ``key``."""
        rhs_attribute = sub.rhs[0]
        row_like = dict(zip(sub.lhs, key))
        for pattern in sub.patterns:
            if not pattern.value(rhs_attribute).is_wildcard:
                continue
            if sub.lhs_pattern(pattern).matches(row_like):
                return True
        return False

    def _prune_decided(
        self,
        working: Relation,
        sub_index: int,
        sub: CFD,
        candidates: List[GroupKey],
    ) -> List[GroupKey]:
        """Drop candidate keys whose group is provably violation-free.

        A group violates only when its *current* full-relation value set —
        the working values of fetched members plus the pristine backend
        values of unfetched ones — holds more than one distinct non-NULL
        RHS value.  The backend side comes from one ``majority_value``
        histogram minus the pristine values of already-fetched rows; a
        unanimous group is pruned (HoloClean-style domain pruning) and
        re-queued by :meth:`note_change` if a fetched member moves again.
        Unfetched rows never change, so the decision cannot go stale.
        """
        rhs_attribute = sub.rhs[0]
        histograms = self._source.majority_values(sub, rhs_attribute, candidates)
        working_values = self._working_values(working, sub)
        fetched_values = self._fetched_values[sub_index]
        expand: List[GroupKey] = []
        for key in candidates:
            stored = histograms.get(key, Counter())
            unfetched = Counter(
                {v: c for v, c in stored.items() if v is not None}
            ) - fetched_values.get(key, Counter())
            distinct = set(working_values.get(key, ()))
            distinct.update(value for value, count in unfetched.items() if count > 0)
            if len(distinct) <= 1:
                self.stats["groups_pruned"] += 1
                self.telemetry.inc("repair.closure_pruned")
                continue
            expand.append(key)
        return expand

    def _working_values(
        self, working: Relation, sub: CFD
    ) -> Dict[GroupKey, Set[Any]]:
        """Distinct non-NULL working RHS values per working LHS key."""
        rhs_attribute = sub.rhs[0]
        index: Dict[GroupKey, Set[Any]] = {}
        for _tid, row in working.rows():
            value = row.get(rhs_attribute)
            if value is None:
                continue
            key = tuple(row.get(attr) for attr in sub.lhs)
            if any(part is None for part in key):
                continue
            index.setdefault(key, set()).add(value)
        return index

    def _over_threshold(self, rows_needed: int) -> bool:
        if self.fetch_threshold is None or not self._total_rows:
            return False
        return rows_needed > self.fetch_threshold * self._total_rows

    def _ship_all(self, working: Relation) -> None:
        """Threshold fallback: complete the working relation in one paged scan."""
        after_tid = -1
        while True:
            page = self._source.page(
                after_tid=after_tid, page_size=self.FALLBACK_PAGE_SIZE
            )
            for tid, values in page:
                after_tid = tid
                if tid not in working:
                    self._admit(working, tid, values)
            if len(page) < self.FALLBACK_PAGE_SIZE:
                break
        self._complete = True
        self._pending = {}
        self.stats["fallback_shipback"] = 1
        self.telemetry.inc("repair.fallback_shipback")

    def _note_fetched(self, values: Dict[str, Any]) -> None:
        """Account one pristine fetched row in the per-sub member counters.

        The counting criterion mirrors :meth:`group_stats_query` exactly —
        LHS equals the key, RHS non-NULL, no pattern filter — so a
        counter hitting the backend's ``member_count`` proves every
        backend member of that key is already materialised, and the value
        counter subtracted from a ``majority_value`` histogram leaves
        exactly the unfetched members' values.
        """
        for index, sub in enumerate(self._subs):
            value = values.get(sub.rhs[0])
            if value is None:
                continue
            key = tuple(values.get(attr) for attr in sub.lhs)
            if any(part is None for part in key):
                continue
            self._fetched_members[index][key] += 1
            self._fetched_values[index].setdefault(key, Counter())[value] += 1

    def _admit(self, working: Relation, tid: int, values: Dict[str, Any]) -> None:
        working.insert_at(tid, dict(values))
        self.original().insert_at(tid, dict(values))
        self._backend_rows[tid] = values
        self._note_fetched(values)
        self.stats["rows_fetched"] += 1
        self.telemetry.inc("repair.rows_fetched")

    def _fetch_rows(self, working: Relation, tids: Sequence[int]) -> None:
        missing = [tid for tid in tids if tid not in working]
        if not missing:
            return
        for tid, values in sorted(self._source.fetch_rows(missing).items()):
            if tid not in working:
                self._admit(working, tid, values)
