"""Incremental repair (IncRepair) for updates arriving after a repair.

Once a database has been cleansed, the paper's data monitor keeps it clean:
"invoking an incremental repair module … using the incremental CFD-based
repair algorithm" when updates arrive.  The IncRepair idea (Cong et al.,
VLDB 2007) is that the pre-existing data is trusted — it already satisfies
the CFDs — so only the *newly inserted or modified* tuples may be changed,
and only violations involving them need to be considered.

:class:`IncrementalRepairer` wraps :class:`~repro.repair.repairer.BatchRepairer`
with exactly those restrictions, which makes its cost proportional to the
size of the update batch rather than to the size of the database.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.cfd import CFD
from ..core.satisfaction import violating_tids
from ..engine.relation import Relation
from ..errors import RepairError
from .cost import CostModel
from .repairer import BatchRepairer, CellChange, Repair


class IncrementalRepairer:
    """Repairs only the tuples touched by an update batch."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        max_iterations: int = 25,
    ):
        self.cost_model = cost_model or CostModel.uniform()
        self.max_iterations = max_iterations

    def repair_updates(
        self,
        relation: Relation,
        cfds: Sequence[CFD],
        updated_tids: Iterable[int],
    ) -> Repair:
        """Repair violations involving ``updated_tids``, modifying only those tuples.

        ``relation`` is the current (already updated) relation; the returned
        :class:`~repro.repair.repairer.Repair` contains a repaired copy in
        which only updated tuples may differ from the input.
        """
        updated = {tid for tid in updated_tids if tid in relation}
        repairer = BatchRepairer(
            cost_model=self.cost_model,
            max_iterations=self.max_iterations,
            restrict_to_tids=updated,
        )
        return repairer.repair(relation, cfds)

    def insert_and_repair(
        self,
        relation: Relation,
        cfds: Sequence[CFD],
        rows: Sequence[Mapping[str, Any]],
    ) -> Tuple[List[int], Repair]:
        """Insert ``rows`` then repair any violations they introduce.

        Returns the tids assigned to the inserted rows and the repair of the
        resulting relation.  The inserted rows are the only tuples the repair
        is allowed to modify.
        """
        new_tids = [relation.insert(dict(row)) for row in rows]
        repair = self.repair_updates(relation, cfds, new_tids)
        return new_tids, repair

    def verify_untouched(self, repair: Repair, protected_tids: Iterable[int]) -> None:
        """Raise :class:`RepairError` if the repair modified a protected tuple.

        Used in tests and by the data monitor as a safety net: incremental
        repair must never silently rewrite previously cleansed data.
        """
        protected = set(protected_tids)
        offending = [
            change for change in repair.changes if change.tid in protected
        ]
        if offending:
            cells = [(change.tid, change.attribute) for change in offending]
            raise RepairError(
                f"incremental repair modified protected cells: {cells}"
            )


def remaining_dirty_tids(relation: Relation, cfds: Sequence[CFD]) -> Set[int]:
    """Tuples still involved in violations — the residue IncRepair could not fix."""
    return violating_tids(relation, cfds)
