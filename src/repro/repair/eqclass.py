"""Equivalence classes of cells for the repair algorithm.

The repair algorithms of the companion papers (SIGMOD 2005, VLDB 2007) do
not assign concrete values eagerly.  Instead they maintain *equivalence
classes* of cells ``(tid, attribute)``: all cells in one class must receive
the same value in the final repair.  Resolving a multi-tuple violation of a
variable CFD merges the RHS cells of the conflicting tuples into one class;
resolving a constant-RHS violation pins the class of the offending cell to
that constant.  Deferring the choice of the concrete value to the end avoids
oscillation and lets the algorithm pick, per class, the value that minimises
the total modification cost.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import RepairError
from .cost import CostModel

Cell = Tuple[int, str]


class EquivalenceClasses:
    """Union-find over cells, with optional pinned target constants per class."""

    def __init__(self) -> None:
        self._parent: Dict[Cell, Cell] = {}
        self._rank: Dict[Cell, int] = {}
        #: class root -> pinned constant (set by constant-RHS resolutions)
        self._target: Dict[Cell, Any] = {}

    # -- union-find ----------------------------------------------------------------

    def add(self, cell: Cell) -> Cell:
        """Register ``cell`` (idempotent) and return its root."""
        if cell not in self._parent:
            self._parent[cell] = cell
            self._rank[cell] = 0
        return self.find(cell)

    def find(self, cell: Cell) -> Cell:
        """Return the representative of ``cell``'s class (path compression)."""
        if cell not in self._parent:
            return self.add(cell)
        root = cell
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[cell] != root:
            self._parent[cell], cell = root, self._parent[cell]
        return root

    def union(self, left: Cell, right: Cell) -> Cell:
        """Merge the classes of ``left`` and ``right``; returns the new root.

        Pinned targets are propagated; merging two classes pinned to
        *different* constants raises :class:`RepairError` (the caller must
        resolve such conflicts by other means, e.g. changing an LHS value).
        """
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return root_left
        target_left = self._target.get(root_left)
        target_right = self._target.get(root_right)
        if (
            target_left is not None
            and target_right is not None
            and target_left != target_right
        ):
            raise RepairError(
                f"cannot merge classes pinned to different constants "
                f"{target_left!r} and {target_right!r}"
            )
        if self._rank[root_left] < self._rank[root_right]:
            root_left, root_right = root_right, root_left
        self._parent[root_right] = root_left
        if self._rank[root_left] == self._rank[root_right]:
            self._rank[root_left] += 1
        merged_target = target_left if target_left is not None else target_right
        self._target.pop(root_left, None)
        self._target.pop(root_right, None)
        if merged_target is not None:
            self._target[root_left] = merged_target
        return root_left

    def together(self, left: Cell, right: Cell) -> bool:
        """Whether the two cells are currently in the same class."""
        return self.find(left) == self.find(right)

    # -- targets ----------------------------------------------------------------------

    def pin(self, cell: Cell, constant: Any) -> None:
        """Pin the class of ``cell`` to ``constant``.

        Pinning a class already pinned to a different constant raises
        :class:`RepairError`.
        """
        root = self.find(cell)
        existing = self._target.get(root)
        if existing is not None and existing != constant:
            raise RepairError(
                f"class of {cell} already pinned to {existing!r}, cannot pin to {constant!r}"
            )
        self._target[root] = constant

    def pinned_value(self, cell: Cell) -> Optional[Any]:
        """The pinned constant of ``cell``'s class, if any."""
        return self._target.get(self.find(cell))

    def is_pinned(self, cell: Cell) -> bool:
        """Whether ``cell``'s class is pinned to a constant."""
        return self.find(cell) in self._target

    # -- enumeration -------------------------------------------------------------------

    def classes(self) -> List[List[Cell]]:
        """All classes as lists of cells (singletons included)."""
        grouped: Dict[Cell, List[Cell]] = defaultdict(list)
        for cell in self._parent:
            grouped[self.find(cell)].append(cell)
        return [sorted(members) for _root, members in sorted(grouped.items())]

    def members(self, cell: Cell) -> List[Cell]:
        """All cells in the same class as ``cell``."""
        root = self.find(cell)
        return sorted(c for c in self._parent if self.find(c) == root)

    def __len__(self) -> int:
        return len({self.find(cell) for cell in self._parent})

    def __contains__(self, cell: Cell) -> bool:
        return cell in self._parent

    # -- value selection ------------------------------------------------------------------

    def choose_value(
        self,
        cell: Cell,
        current_values: Dict[Cell, Any],
        cost_model: CostModel,
        candidates: Optional[Iterable[Any]] = None,
    ) -> Tuple[Any, float, List[Tuple[Any, float]]]:
        """Pick the value for ``cell``'s class that minimises total change cost.

        Returns ``(best_value, best_cost, ranked_alternatives)`` where the
        alternatives are ``(value, cost)`` pairs sorted by increasing cost —
        exactly what the cleansing-review pop-up of the paper displays.

        If the class is pinned, the pinned constant wins regardless of cost
        (but alternatives are still ranked for display).
        """
        members = self.members(cell)
        values = [current_values.get(member) for member in members]
        candidate_pool: List[Any] = []
        for value in values:
            if value is not None and value not in candidate_pool:
                candidate_pool.append(value)
        if candidates:
            for value in candidates:
                if value is not None and value not in candidate_pool:
                    candidate_pool.append(value)
        pinned = self.pinned_value(cell)
        if pinned is not None and pinned not in candidate_pool:
            candidate_pool.append(pinned)
        if not candidate_pool:
            raise RepairError(f"no candidate values for class of {cell}")
        ranked: List[Tuple[Any, float]] = []
        for candidate in candidate_pool:
            total = sum(
                cost_model.change_cost(member[0], member[1], current_values.get(member), candidate)
                for member in members
            )
            ranked.append((candidate, total))
        ranked.sort(key=lambda pair: (pair[1], str(pair[0])))
        if pinned is not None:
            best_value = pinned
            best_cost = next(cost for value, cost in ranked if value == pinned)
        else:
            best_value, best_cost = ranked[0]
        return best_value, best_cost, ranked
