"""Repair review: compare the candidate repair with the original data.

This is the programmatic counterpart of the paper's "Data cleansing review"
demo (Fig. 5): modified values are highlighted, each carries a ranked list
of alternative modifications, the user can accept or override a change, and
overrides trigger a background incremental detection so the effect on other
tuples is visible immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.cfd import CFD
from ..core.satisfaction import multi_tuple_violation_groups, single_tuple_violations
from ..engine.relation import Relation
from ..errors import RepairError
from .repairer import CellChange, Repair

Cell = Tuple[int, str]


@dataclass
class ReviewDecision:
    """The reviewer's decision about one repaired cell."""

    cell: Cell
    action: str  # 'accept' | 'override' | 'revert'
    value: Any = None


@dataclass
class ConflictNote:
    """A conflict a user override introduced with other tuples."""

    cfd_id: str
    kind: str
    tids: Tuple[int, ...]
    attribute: str


class RepairReview:
    """Interactive review of a candidate repair."""

    def __init__(self, repair: Repair, cfds: Sequence[CFD]):
        self.repair = repair
        self.cfds = list(cfds)
        #: working copy the reviewer edits; starts as the candidate repair
        self.working: Relation = repair.repaired.copy()
        self.decisions: Dict[Cell, ReviewDecision] = {}

    # -- inspection -------------------------------------------------------------------

    def modified_cells(self) -> List[CellChange]:
        """All cells the repair modified (the red cells of Fig. 5)."""
        return list(self.repair.changes)

    def modified_tuples(self) -> List[int]:
        """Tuple ids with at least one modified cell."""
        return sorted(self.repair.changed_tids())

    def tuple_diff(self, tid: int) -> Dict[str, Tuple[Any, Any]]:
        """``{attribute: (original value, repaired value)}`` for changed cells of ``tid``."""
        diff: Dict[str, Tuple[Any, Any]] = {}
        for change in self.repair.changes_for(tid):
            diff[change.attribute] = (change.old_value, change.new_value)
        return diff

    def alternatives(self, tid: int, attribute: str) -> List[Tuple[Any, float]]:
        """Ranked alternative values for a modified cell (the pop-up of Fig. 5)."""
        for change in self.repair.changes:
            if change.tid == tid and change.attribute == attribute:
                return list(change.alternatives)
        raise RepairError(f"cell ({tid}, {attribute!r}) was not modified by the repair")

    def summary(self) -> Dict[str, Any]:
        """Headline numbers for the review screen."""
        return {
            "modified_tuples": len(self.repair.changed_tids()),
            "modified_cells": len(self.repair.changes),
            "total_cost": self.repair.total_cost,
            "iterations": self.repair.iterations,
            "residual_violations": self.repair.residual_violations,
            "overrides": sum(
                1 for decision in self.decisions.values() if decision.action == "override"
            ),
            "reverts": sum(
                1 for decision in self.decisions.values() if decision.action == "revert"
            ),
        }

    # -- decisions ----------------------------------------------------------------------

    def accept(self, tid: int, attribute: str) -> None:
        """Accept the repaired value for one cell."""
        self._require_modified(tid, attribute)
        self.decisions[(tid, attribute)] = ReviewDecision((tid, attribute), "accept")

    def accept_all(self) -> None:
        """Accept every modification."""
        for change in self.repair.changes:
            self.accept(change.tid, change.attribute)

    def override(self, tid: int, attribute: str, value: Any) -> List[ConflictNote]:
        """Replace the repaired value of a cell with a user-chosen value.

        Returns the conflicts the new value introduces with other tuples —
        the "background incremental detection" of the demo.
        """
        self._require_modified(tid, attribute)
        self.working.update(tid, {attribute: value})
        self.decisions[(tid, attribute)] = ReviewDecision(
            (tid, attribute), "override", value
        )
        return self.conflicts_for(tid)

    def revert(self, tid: int, attribute: str) -> List[ConflictNote]:
        """Put the original (pre-repair) value back into a cell."""
        self._require_modified(tid, attribute)
        original = self.repair.original.get(tid).get(attribute)
        self.working.update(tid, {attribute: original})
        self.decisions[(tid, attribute)] = ReviewDecision(
            (tid, attribute), "revert", original
        )
        return self.conflicts_for(tid)

    # -- conflict checking -------------------------------------------------------------------

    def conflicts_for(self, tid: int) -> List[ConflictNote]:
        """Violations involving ``tid`` in the current working data."""
        notes: List[ConflictNote] = []
        for cfd in self.cfds:
            for sub in cfd.normalize():
                for violating_tid, _pattern in single_tuple_violations(self.working, sub):
                    if violating_tid == tid:
                        notes.append(
                            ConflictNote(
                                cfd_id=cfd.identifier,
                                kind="single",
                                tids=(tid,),
                                attribute=sub.rhs[0],
                            )
                        )
                for _pattern, _key, tids in multi_tuple_violation_groups(self.working, sub):
                    if tid in tids:
                        notes.append(
                            ConflictNote(
                                cfd_id=cfd.identifier,
                                kind="multi",
                                tids=tuple(tids),
                                attribute=sub.rhs[0],
                            )
                        )
        return notes

    def pending_cells(self) -> List[Cell]:
        """Modified cells the reviewer has not decided on yet."""
        return [
            (change.tid, change.attribute)
            for change in self.repair.changes
            if (change.tid, change.attribute) not in self.decisions
        ]

    def finalise(self) -> Relation:
        """Return the reviewed relation (working copy with all decisions applied)."""
        return self.working.copy()

    # -- internal ---------------------------------------------------------------------------

    def _require_modified(self, tid: int, attribute: str) -> None:
        if (tid, attribute) not in self.repair.changed_cells:
            raise RepairError(
                f"cell ({tid}, {attribute!r}) was not modified by the repair"
            )
