"""An exploration session: stateful drill-down with breadcrumbs.

Wraps :class:`~repro.explorer.navigation.DataExplorer` with the notion of a
current position (CFD → pattern → LHS values → RHS value), mirroring how a
user walks through the four tables of the paper's Fig. 2 and can always step
back one level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.cfd import CFD
from ..detection.violations import ViolationReport
from ..engine.relation import Relation
from ..errors import ExplorerError
from ..sources.base import TupleSource
from .navigation import CfdSummary, DataExplorer, LhsMatch, PatternSummary, RhsValue


@dataclass
class Breadcrumb:
    """One step of the drill-down path."""

    level: str
    label: str
    value: Any


class ExplorationSession:
    """A cursor over the CFD → pattern → LHS → RHS → tuples drill-down."""

    LEVELS = ("cfd", "pattern", "lhs", "rhs")

    def __init__(
        self,
        relation: "Relation | TupleSource",
        cfds: Sequence[CFD],
        report: ViolationReport,
    ):
        self.explorer = DataExplorer(relation, cfds, report)
        self._cfd_id: Optional[str] = None
        self._pattern_index: Optional[int] = None
        self._lhs_values: Optional[Tuple[Any, ...]] = None
        self._rhs_value: Optional[Any] = None
        #: keyset cursor of :meth:`next_page` (last tid served, -1 = start)
        self._page_cursor: int = -1

    # -- navigation --------------------------------------------------------------------

    def options(self) -> List[Any]:
        """The choices available at the current level."""
        if self._cfd_id is None:
            return self.explorer.list_cfds()
        if self._pattern_index is None:
            return self.explorer.patterns_for(self._cfd_id)
        if self._lhs_values is None:
            return self.explorer.lhs_matches(self._cfd_id, self._pattern_index)
        if self._rhs_value is None:
            return self.explorer.rhs_values(
                self._cfd_id, self._pattern_index, self._lhs_values
            )
        return self.explorer.tuples_for(
            self._cfd_id, self._pattern_index, self._lhs_values, self._rhs_value
        )

    def select(self, choice: Any) -> List[Any]:
        """Descend one level by selecting ``choice`` and return the next options.

        ``choice`` may be the option object returned by :meth:`options` or the
        underlying key (CFD id, pattern index, LHS value tuple, RHS value).
        """
        if self._cfd_id is None:
            self._cfd_id = choice.cfd_id if isinstance(choice, CfdSummary) else str(choice)
        elif self._pattern_index is None:
            self._pattern_index = (
                choice.pattern_index if isinstance(choice, PatternSummary) else int(choice)
            )
        elif self._lhs_values is None:
            self._lhs_values = (
                tuple(choice.lhs_values) if isinstance(choice, LhsMatch) else tuple(choice)
            )
        elif self._rhs_value is None:
            self._rhs_value = choice.value if isinstance(choice, RhsValue) else choice
        else:
            raise ExplorerError("already at the tuple level; call back() to go up")
        self._page_cursor = -1
        return self.options()

    def back(self) -> List[Any]:
        """Step one level up and return the options at that level."""
        if self._rhs_value is not None:
            self._rhs_value = None
        elif self._lhs_values is not None:
            self._lhs_values = None
        elif self._pattern_index is not None:
            self._pattern_index = None
        elif self._cfd_id is not None:
            self._cfd_id = None
        else:
            raise ExplorerError("already at the top level")
        self._page_cursor = -1
        return self.options()

    def reset(self) -> None:
        """Return to the top level."""
        self._cfd_id = None
        self._pattern_index = None
        self._lhs_values = None
        self._rhs_value = None
        self._page_cursor = -1

    def next_page(self, page_size: int = 50) -> List[Tuple[int, Dict[str, Any]]]:
        """The next keyset page of tuples at the current drill-down position.

        Available once an LHS combination is selected (the RHS filter, if
        any, carries over).  Each call hydrates one page and advances the
        cursor; an empty or short page means the listing is exhausted.
        Navigation (:meth:`select` / :meth:`back` / :meth:`reset`) rewinds
        the cursor.
        """
        if self._cfd_id is None or self._pattern_index is None or self._lhs_values is None:
            raise ExplorerError("select an LHS combination before paging tuples")
        page = self.explorer.tuples_page(
            self._cfd_id,
            self._pattern_index,
            self._lhs_values,
            rhs_value=self._rhs_value,
            after_tid=self._page_cursor,
            page_size=page_size,
        )
        if page:
            self._page_cursor = page[-1][0]
        return page

    # -- state -----------------------------------------------------------------------------

    @property
    def level(self) -> str:
        """The level of the *next* choice to make."""
        if self._cfd_id is None:
            return "cfd"
        if self._pattern_index is None:
            return "pattern"
        if self._lhs_values is None:
            return "lhs"
        if self._rhs_value is None:
            return "rhs"
        return "tuples"

    def breadcrumbs(self) -> List[Breadcrumb]:
        """The path selected so far."""
        crumbs: List[Breadcrumb] = []
        if self._cfd_id is not None:
            crumbs.append(Breadcrumb("cfd", "CFD", self._cfd_id))
        if self._pattern_index is not None:
            crumbs.append(Breadcrumb("pattern", "pattern", self._pattern_index))
        if self._lhs_values is not None:
            crumbs.append(Breadcrumb("lhs", "LHS values", self._lhs_values))
        if self._rhs_value is not None:
            crumbs.append(Breadcrumb("rhs", "RHS value", self._rhs_value))
        return crumbs

    def explain(self, tid: int) -> Dict[str, Any]:
        """Reverse exploration: why is tuple ``tid`` dirty?"""
        return self.explorer.explain_tuple(tid)
