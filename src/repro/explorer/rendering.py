"""Text rendering of explorer views.

The paper's data explorer is a rich web UI; the library equivalent renders
the same views — data tables, the tuple-level quality map, the per-attribute
bar chart, the violation pie chart, and the repair diff — as plain text so
they can be printed from scripts, notebooks and the benchmark harnesses.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..audit.metrics import Cleanliness
from ..audit.quality_map import QualityMap
from ..audit.report import DataQualityReport
from ..engine.relation import Relation
from ..repair.repairer import Repair

#: Characters used for quality-map shading, from clean to dirtiest.
SHADE_CHARS = (".", "░", "▒", "▓", "█")


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    max_rows: Optional[int] = None,
) -> str:
    """Render dict rows as an aligned text table."""
    rows = list(rows)
    if max_rows is not None:
        rows = rows[:max_rows]
    if columns is None:
        columns = list(rows[0].keys()) if rows else []
    widths = {column: len(str(column)) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [("" if row.get(column) is None else str(row.get(column))) for column in columns]
        rendered_rows.append(rendered)
        for column, text in zip(columns, rendered):
            widths[column] = max(widths[column], len(text))
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for rendered in rendered_rows:
        lines.append(
            " | ".join(text.ljust(widths[column]) for column, text in zip(columns, rendered))
        )
    return "\n".join(lines)


def render_relation(relation: Relation, max_rows: int = 20) -> str:
    """Render a relation (with tuple ids) as a text table."""
    rows = []
    for tid, row in relation.rows():
        entry = {"tid": tid}
        entry.update(row)
        rows.append(entry)
        if len(rows) >= max_rows:
            break
    return render_table(rows, columns=["tid"] + relation.attribute_names)


def render_bar_chart(
    data: Mapping[str, float], width: int = 40, suffix: str = "%"
) -> str:
    """Render a horizontal bar chart from label -> value (0..100 by default)."""
    if not data:
        return "(no data)"
    label_width = max(len(str(label)) for label in data)
    maximum = max(data.values()) or 1.0
    lines = []
    for label, value in data.items():
        bar = "#" * int(round(width * value / maximum)) if maximum else ""
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.1f}{suffix}")
    return "\n".join(lines)


def render_pie_chart(data: Mapping[str, int]) -> str:
    """Render pie-chart data as labelled counts with percentages."""
    total = sum(data.values()) or 1
    label_width = max((len(str(label)) for label in data), default=0)
    lines = []
    for label, count in data.items():
        lines.append(
            f"{str(label).ljust(label_width)} : {count:6d}  ({100.0 * count / total:5.1f}%)"
        )
    return "\n".join(lines)


def render_quality_map(
    relation: Relation, quality_map: QualityMap, max_rows: int = 30
) -> str:
    """Render the tuple-level quality map of Fig. 3.

    Each tuple is one line: its shade block, ``vio(t)``, and the row values.
    The darker the block, the dirtier the tuple.
    """
    lines = [f"shade legend: {' '.join(f'{c}={s}' for c, s in zip(SHADE_CHARS, quality_map.shades))}"]
    count = 0
    for tid, row in relation.rows():
        bucket = quality_map.bucket_of(tid)
        shade = SHADE_CHARS[min(bucket, len(SHADE_CHARS) - 1)]
        values = ", ".join("" if v is None else str(v) for v in row.values())
        lines.append(f"{shade * 3} vio={quality_map.vio.get(tid, 0):3d}  t{tid}: {values}")
        count += 1
        if count >= max_rows:
            lines.append(f"... ({len(relation) - max_rows} more tuples)")
            break
    return "\n".join(lines)


def render_quality_report(report: DataQualityReport) -> str:
    """Render the data-quality report of Fig. 4 (pie chart + per-attribute bars)."""
    sections = [
        f"Data quality report for relation {report.relation!r} "
        f"({report.tuple_count} tuples, {report.dirty_percentage():.1f}% dirty)",
        "",
        "Tuple cleanliness (pie chart):",
        render_pie_chart(report.pie_chart()),
        "",
        "Per-attribute cleanliness (bar chart, % verified clean):",
    ]
    verified = {
        attribute: categories.get(Cleanliness.VERIFIED.value, 0.0)
        + categories.get(Cleanliness.PROBABLY.value, 0.0)
        for attribute, categories in report.bar_chart().items()
    }
    sections.append(render_bar_chart(verified))
    sections.append("")
    sections.append("Violation statistics:")
    for key, value in sorted(report.statistics.items()):
        sections.append(f"  {key}: {value:.2f}")
    worst = report.worst_attributes()
    if worst:
        sections.append("")
        sections.append(
            "Dirtiest attributes: "
            + ", ".join(f"{attribute} ({count} dirty cells)" for attribute, count in worst)
        )
    return "\n".join(sections)


def render_repair_diff(repair: Repair, max_rows: int = 30) -> str:
    """Render the cleansing review of Fig. 5: original vs repaired values.

    Changed cells are marked with ``*old -> new*`` (the UI's red highlight);
    each change also lists its top alternative modifications.
    """
    lines = [
        f"Candidate repair: {len(repair.changes)} cells changed in "
        f"{len(repair.changed_tids())} tuples, total cost {repair.total_cost:.3f}"
    ]
    shown = 0
    for tid in sorted(repair.changed_tids()):
        original_row = repair.original.get(tid)
        repaired_row = repair.repaired.get(tid)
        pieces = []
        for attribute in repair.original.attribute_names:
            old = original_row.get(attribute)
            new = repaired_row.get(attribute)
            if old != new:
                pieces.append(f"{attribute}: *{old!r} -> {new!r}*")
            else:
                pieces.append(f"{attribute}: {old!r}")
        lines.append(f"t{tid}: " + ", ".join(pieces))
        for change in repair.changes_for(tid):
            if change.alternatives:
                alternatives = ", ".join(
                    f"{value!r} (cost {cost:.2f})" for value, cost in change.alternatives[:3]
                )
                lines.append(f"    alternatives for {change.attribute}: {alternatives}")
        shown += 1
        if shown >= max_rows:
            lines.append(f"... ({len(repair.changed_tids()) - max_rows} more tuples)")
            break
    return "\n".join(lines)
