"""Data exploration: the drill-down navigation of the paper's Fig. 2.

The data explorer lets users explore *data by means of CFDs* — select an
embedded FD, then one of its pattern tuples, then one of the LHS value
combinations matching that pattern, then one of the distinct RHS values, and
finally the tuples themselves — and, in the other direction, explore *CFDs
by means of the data*: pick a tuple and see every CFD and pattern tuple
relevant to it and why it is considered a violation.  At every step the
number of violating tuples is reported to guide the navigation.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..core.cfd import CFD
from ..core.pattern import PatternTuple
from ..detection.violations import Violation, ViolationReport
from ..engine.relation import Relation
from ..errors import ExplorerError
from ..sources.base import NO_RHS_FILTER, TupleSource
from ..sources.native import NativeTupleSource


@dataclass(frozen=True)
class CfdSummary:
    """One row of the explorer's CFD list (left table of Fig. 2)."""

    cfd_id: str
    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]
    pattern_count: int
    violating_tuples: int


@dataclass(frozen=True)
class PatternSummary:
    """One pattern tuple of a CFD, with its violation count (second table of Fig. 2)."""

    cfd_id: str
    pattern_index: int
    rendered: Dict[str, str]
    violating_tuples: int


@dataclass(frozen=True)
class LhsMatch:
    """One distinct LHS value combination matching a pattern (third table of Fig. 2)."""

    lhs_values: Tuple[Any, ...]
    tuple_count: int
    violating_tuples: int


@dataclass(frozen=True)
class RhsValue:
    """One distinct RHS value for a selected LHS combination (fourth table of Fig. 2)."""

    value: Any
    tuple_count: int
    violating_tuples: int


class DataExplorer:
    """Programmatic drill-down over a relation, its CFDs and a violation report.

    Accepts either an in-memory :class:`Relation` (wrapped in a
    :class:`NativeTupleSource`) or any :class:`TupleSource` — in
    particular a backend-resident one, in which case every navigation step
    is answered by pushed-down aggregates plus one cached fetch of the
    dirty rows, and tuple listings hydrate keyset-sized pages only.
    """

    #: page size used when :meth:`tuples_for` drains a group to a full list
    DEFAULT_PAGE_SIZE = 200

    def __init__(
        self,
        relation: Union[Relation, TupleSource],
        cfds: Sequence[CFD],
        report: ViolationReport,
    ):
        if isinstance(relation, TupleSource):
            self.source = relation
            self.relation = getattr(relation, "relation", None)
        else:
            self.relation = relation
            self.source = NativeTupleSource(relation)
        self.cfds = list(cfds)
        self.report = report
        self._by_id: Dict[str, CFD] = {cfd.identifier: cfd for cfd in self.cfds}
        #: tids involved in a violation, per CFD id
        self._dirty_by_cfd: Dict[str, Set[int]] = defaultdict(set)
        for violation in report.violations:
            self._dirty_by_cfd[violation.cfd_id].update(violation.tids)
        #: lazily fetched rows of every dirty tid (one row_fetch, cached)
        self._dirty_rows_cache: Optional[Dict[int, Dict[str, Any]]] = None

    def _dirty_rows(self) -> Dict[int, Dict[str, Any]]:
        if self._dirty_rows_cache is None:
            self._dirty_rows_cache = self.source.fetch_rows(
                sorted(self.report.dirty_tids())
            )
        return self._dirty_rows_cache

    # -- exploring data by means of CFDs -------------------------------------------------

    def list_cfds(self) -> List[CfdSummary]:
        """The explorer's CFD list with per-CFD violation counts."""
        summaries = []
        for cfd in self.cfds:
            summaries.append(
                CfdSummary(
                    cfd_id=cfd.identifier,
                    lhs=cfd.lhs,
                    rhs=cfd.rhs,
                    pattern_count=len(cfd.patterns),
                    violating_tuples=len(self._dirty_by_cfd.get(cfd.identifier, set())),
                )
            )
        return summaries

    def patterns_for(self, cfd_id: str) -> List[PatternSummary]:
        """The pattern tuples of one CFD, each with its violating-tuple count."""
        cfd = self._cfd(cfd_id)
        dirty = self._dirty_by_cfd.get(cfd_id, set())
        rows = self._dirty_rows()
        summaries = []
        for index, pattern in enumerate(cfd.patterns):
            matching_dirty = {
                tid
                for tid in dirty
                if tid in rows and cfd.applies_to(rows[tid], pattern)
            }
            summaries.append(
                PatternSummary(
                    cfd_id=cfd_id,
                    pattern_index=index,
                    rendered={attr: str(pattern.value(attr)) for attr in cfd.attributes},
                    violating_tuples=len(matching_dirty),
                )
            )
        return summaries

    def lhs_matches(self, cfd_id: str, pattern_index: int) -> List[LhsMatch]:
        """Distinct LHS value combinations of tuples matching the selected pattern."""
        cfd = self._cfd(cfd_id)
        pattern = self._pattern(cfd, pattern_index)
        dirty = self._dirty_by_cfd.get(cfd_id, set())
        # Group sizes come from one pushed-down histogram; the violating
        # counts need only the (already fetched) dirty rows, because a
        # violating tuple is by definition dirty.
        freq = self.source.pattern_group_freq(cfd, pattern_index)
        rows = self._dirty_rows()
        violating: Dict[Tuple[Any, ...], int] = defaultdict(int)
        for tid in dirty:
            row = rows.get(tid)
            if row is None or not cfd.applies_to(row, pattern):
                continue
            violating[tuple(row.get(attr) for attr in cfd.lhs)] += 1
        matches = [
            LhsMatch(
                lhs_values=key,
                tuple_count=count,
                violating_tuples=violating.get(key, 0),
            )
            for key, count in freq.items()
        ]
        matches.sort(key=lambda match: (-match.violating_tuples, str(match.lhs_values)))
        return matches

    def rhs_values(
        self, cfd_id: str, pattern_index: int, lhs_values: Sequence[Any]
    ) -> List[RhsValue]:
        """Distinct RHS values among the tuples with the selected LHS values."""
        cfd = self._cfd(cfd_id)
        pattern = self._pattern(cfd, pattern_index)
        key = tuple(lhs_values)
        if not self._key_applies(cfd, pattern, key):
            return []
        dirty = self._dirty_by_cfd.get(cfd_id, set())
        rhs_attribute = cfd.rhs[0]
        # Applicability is a function of the LHS key alone, so once the key
        # passes, the per-value counts are exactly the group's RHS
        # histogram (NULL bucket included).
        histogram = self.source.majority_values(cfd, rhs_attribute, [key]).get(
            key, Counter()
        )
        rows = self._dirty_rows()
        violating: Dict[Any, int] = defaultdict(int)
        for tid in dirty:
            row = rows.get(tid)
            if row is None:
                continue
            if tuple(row.get(attr) for attr in cfd.lhs) != key:
                continue
            violating[row.get(rhs_attribute)] += 1
        values = [
            RhsValue(
                value=value,
                tuple_count=count,
                violating_tuples=violating.get(value, 0),
            )
            for value, count in histogram.items()
        ]
        values.sort(key=lambda entry: (-entry.tuple_count, str(entry.value)))
        return values

    def tuples_for(
        self,
        cfd_id: str,
        pattern_index: int,
        lhs_values: Sequence[Any],
        rhs_value: Optional[Any] = None,
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """The tuples behind a selected LHS combination (optionally filtered by RHS value)."""
        rows: List[Tuple[int, Dict[str, Any]]] = []
        after_tid = -1
        while True:
            page = self.tuples_page(
                cfd_id,
                pattern_index,
                lhs_values,
                rhs_value=rhs_value,
                after_tid=after_tid,
                page_size=self.DEFAULT_PAGE_SIZE,
            )
            rows.extend(page)
            if len(page) < self.DEFAULT_PAGE_SIZE:
                return rows
            after_tid = page[-1][0]

    def tuples_page(
        self,
        cfd_id: str,
        pattern_index: int,
        lhs_values: Sequence[Any],
        rhs_value: Optional[Any] = None,
        after_tid: int = -1,
        page_size: int = 50,
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """One keyset page of the tuples behind a selected LHS combination.

        Rows arrive in ascending tid order starting after ``after_tid``; a
        short page means the group is exhausted.  On a backend-resident
        source each page is one ``page_fetch`` statement — only the
        visible page is ever hydrated.
        """
        cfd = self._cfd(cfd_id)
        pattern = self._pattern(cfd, pattern_index)
        key = tuple(lhs_values)
        if not self._key_applies(cfd, pattern, key):
            return []
        return self.source.page(
            after_tid=after_tid,
            page_size=page_size,
            cfd=cfd,
            lhs_values=key,
            rhs_value=NO_RHS_FILTER if rhs_value is None else rhs_value,
        )

    # -- exploring CFDs by means of the data -----------------------------------------------

    def explain_tuple(self, tid: int) -> Dict[str, Any]:
        """Everything the explorer shows about one tuple.

        Returns the tuple's values, its ``vio(t)``, the violations it is
        involved in, and — for every CFD — whether the CFD applies to the
        tuple and which pattern tuples are relevant.  This is the information
        a user needs to understand why the tuple is regarded as a violation
        and to correct it manually.
        """
        fetched = self.source.fetch_rows([tid])
        if tid not in fetched:
            raise ExplorerError(f"tuple {tid} does not exist")
        row = fetched[tid]
        relevant: List[Dict[str, Any]] = []
        for cfd in self.cfds:
            applicable_patterns = [
                index
                for index, pattern in enumerate(cfd.patterns)
                if cfd.applies_to(row, pattern)
            ]
            if applicable_patterns:
                relevant.append(
                    {
                        "cfd": cfd.identifier,
                        "patterns": applicable_patterns,
                        "violated": tid in self._dirty_by_cfd.get(cfd.identifier, set()),
                    }
                )
        return {
            "tid": tid,
            "row": row,
            "vio": self.report.vio_of(tid),
            "violations": [v.to_dict() for v in self.report.violations_for(tid)],
            "relevant_cfds": relevant,
        }

    def dirtiest_tuples(self, top: int = 10) -> List[Tuple[int, int]]:
        """The ``top`` tuples by ``vio(t)`` — the entry point for focused review."""
        vio = self.report.vio()
        ranked = sorted(vio.items(), key=lambda pair: (-pair[1], pair[0]))
        return [(tid, count) for tid, count in ranked if count > 0][:top]

    # -- internal -----------------------------------------------------------------------------

    @staticmethod
    def _key_applies(cfd: CFD, pattern: PatternTuple, key: Tuple[Any, ...]) -> bool:
        """Whether the pattern applies to (every) tuple carrying ``key``.

        :meth:`CFD.applies_to` looks only at a row's LHS values, so this
        is decidable from the key alone: no NULL components and the
        pattern's LHS constants match.
        """
        if len(key) != len(cfd.lhs) or any(value is None for value in key):
            return False
        return cfd.lhs_pattern(pattern).matches(dict(zip(cfd.lhs, key)))

    def _cfd(self, cfd_id: str) -> CFD:
        if cfd_id not in self._by_id:
            raise ExplorerError(f"unknown CFD {cfd_id!r}")
        return self._by_id[cfd_id]

    def _pattern(self, cfd: CFD, pattern_index: int) -> PatternTuple:
        if not 0 <= pattern_index < len(cfd.patterns):
            raise ExplorerError(
                f"CFD {cfd.identifier} has no pattern #{pattern_index}"
            )
        return cfd.patterns[pattern_index]
