"""Data exploration: the drill-down navigation of the paper's Fig. 2.

The data explorer lets users explore *data by means of CFDs* — select an
embedded FD, then one of its pattern tuples, then one of the LHS value
combinations matching that pattern, then one of the distinct RHS values, and
finally the tuples themselves — and, in the other direction, explore *CFDs
by means of the data*: pick a tuple and see every CFD and pattern tuple
relevant to it and why it is considered a violation.  At every step the
number of violating tuples is reported to guide the navigation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.cfd import CFD
from ..core.pattern import PatternTuple
from ..detection.violations import Violation, ViolationReport
from ..engine.relation import Relation
from ..errors import ExplorerError


@dataclass(frozen=True)
class CfdSummary:
    """One row of the explorer's CFD list (left table of Fig. 2)."""

    cfd_id: str
    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]
    pattern_count: int
    violating_tuples: int


@dataclass(frozen=True)
class PatternSummary:
    """One pattern tuple of a CFD, with its violation count (second table of Fig. 2)."""

    cfd_id: str
    pattern_index: int
    rendered: Dict[str, str]
    violating_tuples: int


@dataclass(frozen=True)
class LhsMatch:
    """One distinct LHS value combination matching a pattern (third table of Fig. 2)."""

    lhs_values: Tuple[Any, ...]
    tuple_count: int
    violating_tuples: int


@dataclass(frozen=True)
class RhsValue:
    """One distinct RHS value for a selected LHS combination (fourth table of Fig. 2)."""

    value: Any
    tuple_count: int
    violating_tuples: int


class DataExplorer:
    """Programmatic drill-down over a relation, its CFDs and a violation report."""

    def __init__(self, relation: Relation, cfds: Sequence[CFD], report: ViolationReport):
        self.relation = relation
        self.cfds = list(cfds)
        self.report = report
        self._by_id: Dict[str, CFD] = {cfd.identifier: cfd for cfd in self.cfds}
        #: tids involved in a violation, per CFD id
        self._dirty_by_cfd: Dict[str, Set[int]] = defaultdict(set)
        for violation in report.violations:
            self._dirty_by_cfd[violation.cfd_id].update(violation.tids)

    # -- exploring data by means of CFDs -------------------------------------------------

    def list_cfds(self) -> List[CfdSummary]:
        """The explorer's CFD list with per-CFD violation counts."""
        summaries = []
        for cfd in self.cfds:
            summaries.append(
                CfdSummary(
                    cfd_id=cfd.identifier,
                    lhs=cfd.lhs,
                    rhs=cfd.rhs,
                    pattern_count=len(cfd.patterns),
                    violating_tuples=len(self._dirty_by_cfd.get(cfd.identifier, set())),
                )
            )
        return summaries

    def patterns_for(self, cfd_id: str) -> List[PatternSummary]:
        """The pattern tuples of one CFD, each with its violating-tuple count."""
        cfd = self._cfd(cfd_id)
        dirty = self._dirty_by_cfd.get(cfd_id, set())
        summaries = []
        for index, pattern in enumerate(cfd.patterns):
            matching_dirty = {
                tid
                for tid in dirty
                if tid in self.relation
                and cfd.applies_to(self.relation.get(tid), pattern)
            }
            summaries.append(
                PatternSummary(
                    cfd_id=cfd_id,
                    pattern_index=index,
                    rendered={attr: str(pattern.value(attr)) for attr in cfd.attributes},
                    violating_tuples=len(matching_dirty),
                )
            )
        return summaries

    def lhs_matches(self, cfd_id: str, pattern_index: int) -> List[LhsMatch]:
        """Distinct LHS value combinations of tuples matching the selected pattern."""
        cfd = self._cfd(cfd_id)
        pattern = self._pattern(cfd, pattern_index)
        dirty = self._dirty_by_cfd.get(cfd_id, set())
        groups: Dict[Tuple[Any, ...], List[int]] = defaultdict(list)
        for tid, row in self.relation.rows():
            if not cfd.applies_to(row, pattern):
                continue
            groups[tuple(row.get(attr) for attr in cfd.lhs)].append(tid)
        matches = [
            LhsMatch(
                lhs_values=key,
                tuple_count=len(tids),
                violating_tuples=len(set(tids) & dirty),
            )
            for key, tids in groups.items()
        ]
        matches.sort(key=lambda match: (-match.violating_tuples, str(match.lhs_values)))
        return matches

    def rhs_values(
        self, cfd_id: str, pattern_index: int, lhs_values: Sequence[Any]
    ) -> List[RhsValue]:
        """Distinct RHS values among the tuples with the selected LHS values."""
        cfd = self._cfd(cfd_id)
        pattern = self._pattern(cfd, pattern_index)
        dirty = self._dirty_by_cfd.get(cfd_id, set())
        rhs_attribute = cfd.rhs[0]
        counts: Dict[Any, List[int]] = defaultdict(list)
        for tid, row in self.relation.rows():
            if not cfd.applies_to(row, pattern):
                continue
            if tuple(row.get(attr) for attr in cfd.lhs) != tuple(lhs_values):
                continue
            counts[row.get(rhs_attribute)].append(tid)
        values = [
            RhsValue(
                value=value,
                tuple_count=len(tids),
                violating_tuples=len(set(tids) & dirty),
            )
            for value, tids in counts.items()
        ]
        values.sort(key=lambda entry: (-entry.tuple_count, str(entry.value)))
        return values

    def tuples_for(
        self,
        cfd_id: str,
        pattern_index: int,
        lhs_values: Sequence[Any],
        rhs_value: Optional[Any] = None,
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """The tuples behind a selected LHS combination (optionally filtered by RHS value)."""
        cfd = self._cfd(cfd_id)
        pattern = self._pattern(cfd, pattern_index)
        rhs_attribute = cfd.rhs[0]
        rows: List[Tuple[int, Dict[str, Any]]] = []
        for tid, row in self.relation.rows():
            if not cfd.applies_to(row, pattern):
                continue
            if tuple(row.get(attr) for attr in cfd.lhs) != tuple(lhs_values):
                continue
            if rhs_value is not None and row.get(rhs_attribute) != rhs_value:
                continue
            rows.append((tid, row))
        return rows

    # -- exploring CFDs by means of the data -----------------------------------------------

    def explain_tuple(self, tid: int) -> Dict[str, Any]:
        """Everything the explorer shows about one tuple.

        Returns the tuple's values, its ``vio(t)``, the violations it is
        involved in, and — for every CFD — whether the CFD applies to the
        tuple and which pattern tuples are relevant.  This is the information
        a user needs to understand why the tuple is regarded as a violation
        and to correct it manually.
        """
        if tid not in self.relation:
            raise ExplorerError(f"tuple {tid} does not exist")
        row = self.relation.get(tid)
        relevant: List[Dict[str, Any]] = []
        for cfd in self.cfds:
            applicable_patterns = [
                index
                for index, pattern in enumerate(cfd.patterns)
                if cfd.applies_to(row, pattern)
            ]
            if applicable_patterns:
                relevant.append(
                    {
                        "cfd": cfd.identifier,
                        "patterns": applicable_patterns,
                        "violated": tid in self._dirty_by_cfd.get(cfd.identifier, set()),
                    }
                )
        return {
            "tid": tid,
            "row": row,
            "vio": self.report.vio_of(tid),
            "violations": [v.to_dict() for v in self.report.violations_for(tid)],
            "relevant_cfds": relevant,
        }

    def dirtiest_tuples(self, top: int = 10) -> List[Tuple[int, int]]:
        """The ``top`` tuples by ``vio(t)`` — the entry point for focused review."""
        vio = self.report.vio()
        ranked = sorted(vio.items(), key=lambda pair: (-pair[1], pair[0]))
        return [(tid, count) for tid, count in ranked if count > 0][:top]

    # -- internal -----------------------------------------------------------------------------

    def _cfd(self, cfd_id: str) -> CFD:
        if cfd_id not in self._by_id:
            raise ExplorerError(f"unknown CFD {cfd_id!r}")
        return self._by_id[cfd_id]

    def _pattern(self, cfd: CFD, pattern_index: int) -> PatternTuple:
        if not 0 <= pattern_index < len(cfd.patterns):
            raise ExplorerError(
                f"CFD {cfd.identifier} has no pattern #{pattern_index}"
            )
        return cfd.patterns[pattern_index]
