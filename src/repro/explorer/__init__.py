"""The data explorer: drill-down navigation and text rendering of quality views."""

from .navigation import (
    CfdSummary,
    DataExplorer,
    LhsMatch,
    PatternSummary,
    RhsValue,
)
from .rendering import (
    render_bar_chart,
    render_pie_chart,
    render_quality_map,
    render_quality_report,
    render_relation,
    render_repair_diff,
    render_table,
)
from .session import Breadcrumb, ExplorationSession

__all__ = [
    "DataExplorer",
    "CfdSummary",
    "PatternSummary",
    "LhsMatch",
    "RhsValue",
    "ExplorationSession",
    "Breadcrumb",
    "render_table",
    "render_relation",
    "render_bar_chart",
    "render_pie_chart",
    "render_quality_map",
    "render_quality_report",
    "render_repair_diff",
]
