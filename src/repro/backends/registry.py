"""Backend registry: name-based construction of storage backends.

``SemandaqConfig(backend="sqlite")`` selects a backend by name; this module
is the indirection that makes the choice pluggable.  A backend *factory* is
any callable taking keyword options and returning a
:class:`~repro.backends.base.StorageBackend`.  The two built-in backends
are pre-registered; third parties add their own with
:func:`register_backend` before constructing the system::

    from repro.backends import register_backend
    register_backend("postgres", PostgresBackend)
    system = Semandaq(config=SemandaqConfig(backend="postgres"))
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import BackendError
from .base import StorageBackend
from .memory import MemoryBackend
from .sqlite import SqliteBackend

#: factory registry, keyed by backend name
_REGISTRY: Dict[str, Callable[..., StorageBackend]] = {}


def register_backend(
    name: str, factory: Callable[..., StorageBackend], replace: bool = False
) -> None:
    """Register ``factory`` under ``name`` for :func:`create_backend`."""
    if not name or not isinstance(name, str):
        raise BackendError("backend name must be a non-empty string")
    if name in _REGISTRY and not replace:
        raise BackendError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (built-ins included — use with care)."""
    if name not in _REGISTRY:
        raise BackendError(f"backend {name!r} is not registered")
    del _REGISTRY[name]


def available_backends() -> List[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def create_backend(name: str, **options) -> StorageBackend:
    """Construct the backend registered under ``name`` with ``options``."""
    if name not in _REGISTRY:
        raise BackendError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        )
    return _REGISTRY[name](**options)


register_backend("memory", MemoryBackend)
register_backend("sqlite", SqliteBackend)
