"""The in-memory backend: an adapter over the embedded engine.

:class:`MemoryBackend` wraps a :class:`repro.engine.database.Database` (the
engine the seed repository ran everything on) behind the
:class:`~repro.backends.base.StorageBackend` interface.  Detection SQL runs
through the embedded SQL-subset executor; indexes map to the engine's hash
indexes.  The wrapped database may be shared with other components — the
Semandaq facade shares its working :class:`Database` with this backend so
the memory configuration has exactly one copy of the data.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..engine.database import Database
from ..engine.relation import Relation
from ..engine.types import RelationSchema
from .base import StorageBackend
from .delta import DeltaBatch
from .dialect import MEMORY_DIALECT


class MemoryBackend(StorageBackend):
    """Storage backend over the embedded in-memory engine."""

    name = "memory"
    dialect = MEMORY_DIALECT

    def __init__(self, database: Optional[Database] = None):
        #: the wrapped database; exposed so callers can share it
        self.database = database if database is not None else Database()

    # -- catalog ---------------------------------------------------------------

    def create_relation(
        self,
        schema: RelationSchema,
        rows: Optional[Iterable[Mapping[str, Any]]] = None,
        replace: bool = False,
    ) -> None:
        self.database.create_relation(
            schema,
            rows=[dict(row) for row in rows] if rows is not None else None,
            replace=replace,
        )

    def add_relation(self, relation: Relation, replace: bool = False) -> None:
        self.database.add_relation(relation, replace=replace)

    def drop_relation(self, name: str) -> None:
        self.database.drop_relation(name)

    def has_relation(self, name: str) -> bool:
        return self.database.has_relation(name)

    def relation_names(self) -> List[str]:
        return self.database.relation_names()

    def schema(self, name: str) -> RelationSchema:
        return self.database.relation(name).schema

    # -- rows -------------------------------------------------------------------

    def insert_many(self, name: str, rows: Iterable[Mapping[str, Any]]) -> List[int]:
        return self.database.relation(name).insert_many(dict(row) for row in rows)

    def insert_row(
        self, name: str, row: Mapping[str, Any], tid: Optional[int] = None
    ) -> int:
        relation = self.database.relation(name)
        if tid is None:
            return relation.insert(dict(row))
        return relation.insert_at(tid, dict(row))

    def delete_row(self, name: str, tid: int) -> None:
        self.database.relation(name).delete(tid)

    def update_row(self, name: str, tid: int, changes: Mapping[str, Any]) -> None:
        self.database.relation(name).update(tid, dict(changes))

    def apply_delta_batch(self, name: str, batch: DeltaBatch) -> None:
        # Applied directly against the engine relation: one attribute-lookup
        # round per op, no per-op dispatch through the public delta methods.
        relation = self.database.relation(name)
        if batch.is_empty():
            return
        for tid in batch.deletes:
            relation.delete(tid)
        for tid, row in batch.inserts:
            relation.insert_at(tid, dict(row))
        for tid, changes in batch.updates:
            relation.update(tid, dict(changes))

    def get_row(self, name: str, tid: int) -> Dict[str, Any]:
        return self.database.relation(name).get(tid)

    def iter_rows(self, name: str) -> Iterator[Tuple[int, Dict[str, Any]]]:
        return self.database.relation(name).rows()

    def row_count(self, name: str) -> int:
        return len(self.database.relation(name))

    def to_relation(self, name: str) -> Relation:
        # The live object: the engine already *is* an in-memory relation, so
        # materialisation is free and mutations stay visible to the backend.
        # (The SQL detection paths never call this — they stay on execute()
        # and the catalog ops even here, so the detector's access pattern is
        # identical across backends.)
        return self.database.relation(name)

    # -- queries and indexes -------------------------------------------------------

    def execute(
        self, sql: str, parameters: Optional[Sequence[Any]] = None
    ) -> List[Dict[str, Any]]:
        result = self.database.execute(sql, parameters)
        rows = getattr(result, "rows", None)
        return rows if rows is not None else []

    def ensure_index(self, name: str, attributes: Sequence[str]) -> None:
        # The embedded SQL executor does not consult hash indexes, but this
        # is the exact index the detector's group-member enumeration
        # (Relation.lookup on the CFD LHS) creates lazily anyway; building
        # it here just front-loads that work.
        self.database.relation(name).create_index(attributes)
