"""The SQLite backend: real-DBMS pushdown on the stdlib ``sqlite3`` module.

This is the first backend that runs the paper's detection SQL on an actual
database server.  Each relation becomes a SQLite table whose primary key is
the stable tuple id (``_tid INTEGER PRIMARY KEY`` — a rowid alias, so tid
lookups are B-tree point reads), loaded with ``executemany`` batches.  The
connection is tuned the way embedded-SQLite services usually are:

* ``journal_mode=WAL`` — write-ahead logging, so future concurrent readers
  never block a loader (file-backed databases only; ``:memory:`` databases
  fall back to the ``memory`` journal);
* ``synchronous=NORMAL`` — fsync only at WAL checkpoints, the standard
  durability/throughput trade-off for derived data;
* ``temp_store=MEMORY`` — grouping/temp structures stay off disk.

The detector asks for indexes on CFD LHS attributes through
:meth:`ensure_index`, so the ``Q_V`` grouping queries hit covering B-trees
exactly as the paper's "maximally leverage DBMS indices" line prescribes.

**Concurrent serving.**  A file-backed backend is split into one *writer*
connection (all DDL/DML, guarded by a re-entrant lock so a multi-statement
``DeltaBatch`` transaction is never interleaved) plus a bounded
:class:`~repro.backends.pool.SqliteReaderPool` of read-only connections
handed out per thread through :meth:`read_connection`.  Detection SELECTs
route to the calling thread's pooled reader automatically, so worker
threads run ``detect``/``detect_for_tuples`` in parallel with the writer
streaming update batches — WAL gives every reader a consistent snapshot
and the writer never blocks on them.  ``:memory:`` databases cannot share
data across connections, so they keep the single-connection mode (reads
serialise through the writer lock); ``pool_size=0`` forces that mode on
files too (the single-connection baseline the THROUGHPUT benchmark
measures against).
"""

from __future__ import annotations

import hashlib
import re
import sqlite3
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import (
    BackendError,
    ConstraintViolationError,
    DuplicateRelationError,
    SqlExecutionError,
    UnknownRelationError,
    UnknownTupleError,
)
from ..engine.relation import Relation
from ..engine.types import AttributeDef, DataType, RelationSchema
from .base import StorageBackend
from .delta import DeltaBatch
from .dialect import SQLITE_DIALECT, SQLITE_PARAMETER_FLOOR, SqliteDialect
from .pool import SqliteReaderPool

#: SQLite column affinity per engine data type
_SQL_TYPES = {
    DataType.STRING: "TEXT",
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.BOOLEAN: "INTEGER",
}

#: inverse mapping used when reopening an existing database file.  BOOLEAN
#: is stored as INTEGER, so it reopens as INTEGER — values survive, the
#: boolean typing does not.
_AFFINITY_TYPES = {
    "TEXT": DataType.STRING,
    "INTEGER": DataType.INTEGER,
    "REAL": DataType.FLOAT,
}

#: name of the hidden tuple-id column
TID_COLUMN = "_tid"

#: default size of the connection's prepared-statement cache.  The default
#: of the stdlib module (128) is too small once the detection layer issues
#: per-chunk delta Q_C/Q_V and covering-members statements for several CFDs
#: per round; 512 keeps every recurring shape compiled.
STATEMENT_CACHE_SIZE = 512

#: name prefix of the detection layer's internal relations (temporary
#: detection tableaux and the incremental detector's resident tableaux);
#: never part of the user's catalog
INTERNAL_RELATION_PREFIX = "__semandaq_"

#: default number of pooled read-only connections for file-backed stores
DEFAULT_POOL_SIZE = 4

#: default ``PRAGMA busy_timeout`` (milliseconds) on every connection —
#: a reader that races a WAL checkpoint waits instead of erroring
DEFAULT_BUSY_TIMEOUT_MS = 5000

#: default seconds :meth:`SqliteBackend.read_connection` waits for a
#: pooled connection before raising ``PoolTimeoutError``
DEFAULT_POOL_TIMEOUT = 30.0

#: first keyword of statements that route to a pooled reader connection
_READ_STATEMENT = re.compile(r"^\s*(SELECT|WITH|VALUES|EXPLAIN)\b", re.IGNORECASE)


def _ident(name: str) -> str:
    """Quote ``name`` as a SQLite identifier, rejecting embedded quotes."""
    if '"' in name:
        raise BackendError(f"invalid identifier for the sqlite backend: {name!r}")
    return f'"{name}"'


class SqliteBackend(StorageBackend):
    """Storage backend over a (file- or memory-backed) SQLite database."""

    name = "sqlite"
    #: class-level default (the conservative 999-parameter floor); every
    #: instance replaces it with a per-connection dialect carrying the
    #: connection's real bound-parameter limit
    dialect = SQLITE_DIALECT

    def __init__(
        self,
        path: str = ":memory:",
        synchronous: str = "NORMAL",
        max_parameters: Optional[int] = None,
        row_values: Optional[bool] = None,
        window_functions: Optional[bool] = None,
        cached_statements: int = STATEMENT_CACHE_SIZE,
        pool_size: Optional[int] = None,
        busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
        pool_timeout: float = DEFAULT_POOL_TIMEOUT,
    ):
        self.path = str(path)
        self._synchronous = synchronous
        self._cached_statements = cached_statements
        self._busy_timeout_ms = busy_timeout_ms
        self._pool_timeout = pool_timeout
        #: serialises every writer-connection use; re-entrant so a batch
        #: transaction can call the single-statement helpers it is built of
        self._write_lock = threading.RLock()
        #: per-thread pinned reader (see :meth:`read_connection`)
        self._local = threading.local()
        self._closed = False
        # The budget-chunked delta/members statements recur with a bounded
        # set of shapes (one per parameter-budget chunk size); a statement
        # cache larger than sqlite3's default 128 keeps them compiled
        # across rounds — the connection-level half of the prepared-plan
        # caching whose SQL-text half lives in DetectionSqlGenerator.
        # ``check_same_thread=False``: the writer connection is shared by
        # every thread that applies updates, serialised by ``_write_lock``.
        self._conn = sqlite3.connect(
            self.path, cached_statements=cached_statements, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA synchronous={synchronous}")
        self._conn.execute("PRAGMA temp_store=MEMORY")
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        # A private ``:memory:`` database is invisible to other
        # connections, so only file-backed stores get a reader pool;
        # ``pool_size=0`` keeps the single-connection mode on files too.
        if pool_size is None:
            pool_size = DEFAULT_POOL_SIZE
        if self.path == ":memory:" or self.path.startswith("file:"):
            pool_size = 0
        self._pool: Optional[SqliteReaderPool] = (
            SqliteReaderPool(pool_size, self._connect_reader)
            if pool_size > 0
            else None
        )
        # The delta query compiler chunks its statements by this dialect's
        # parameter budget, so read the connection's real limit where the
        # stdlib exposes it (Python 3.11+); older builds keep the portable
        # 999 floor.  ``max_parameters``/``row_values`` override the probe —
        # e.g. to force the portable chunking against a capped server.
        # ``window_functions`` likewise overrides the library-version probe
        # the detect-plan auto-selection branches on — False simulates an
        # old (pre-3.25) SQLite, pinning the legacy fallback.
        if max_parameters is None:
            max_parameters = self._probe_parameter_limit()
        self.dialect = SqliteDialect(
            max_parameters=max_parameters,
            supports_row_values=row_values,
            supports_window_functions=window_functions,
        )
        # The dialect renders FLOAT columns with pystr(...) so the string
        # encoding matches Python's str() exactly (CAST AS TEXT disagrees on
        # exponent-form floats: '1.0e+16' vs '1e+16'), keeping detection
        # results identical to the memory backend.
        self._conn.create_function("pystr", 1, _pystr, deterministic=True)
        self._schemas: Dict[str, RelationSchema] = {}
        self._next_tid: Dict[str, int] = {}
        self._load_catalog()

    def _probe_parameter_limit(self) -> int:
        """The connection's ``SQLITE_LIMIT_VARIABLE_NUMBER``.

        Falls back to the portable 999 floor when the stdlib predates the
        ``getlimit`` API (Python < 3.11), where the actual compile-time
        limit cannot be read.
        """
        if hasattr(self._conn, "getlimit"):  # Python 3.11+
            try:
                limit = self._conn.getlimit(sqlite3.SQLITE_LIMIT_VARIABLE_NUMBER)
                if limit > 0:
                    return limit
            except sqlite3.Error:  # pragma: no cover - probe never fails in CI
                pass
        return SQLITE_PARAMETER_FLOOR

    # -- reader pool -------------------------------------------------------------

    def _connect_reader(self) -> sqlite3.Connection:
        """Open one read-only connection, configured like the writer.

        ``mode=ro`` refuses writes at open time and ``query_only=ON`` at
        statement time; ``check_same_thread=False`` because the pool hands
        a connection to whichever thread acquires it (one thread at a time
        — the pool guarantees exclusive checkout).
        """
        conn = sqlite3.connect(
            f"file:{self.path}?mode=ro",
            uri=True,
            cached_statements=self._cached_statements,
            check_same_thread=False,
        )
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA query_only=ON")
        conn.execute(f"PRAGMA busy_timeout={int(self._busy_timeout_ms)}")
        conn.create_function("pystr", 1, _pystr, deterministic=True)
        return conn

    @contextmanager
    def read_connection(
        self, snapshot: bool = False, timeout: Optional[float] = None
    ) -> Iterator[sqlite3.Connection]:
        """Pin a reader connection to the calling thread for the block.

        Every read the thread performs inside the block (``execute`` of a
        SELECT, ``get_row``, ``row_count``, ...) reuses the pinned
        connection instead of checking one out per statement; nested
        blocks are re-entrant.  With ``snapshot=True`` the connection
        holds one WAL read transaction across the whole block, so every
        statement inside sees the same committed state — a concurrent
        writer cannot tear a multi-statement report.

        Without a pool (``:memory:`` or ``pool_size=0``) the block holds
        the write lock and yields the single connection: the original
        serialised semantics, which is what makes this the explicit seam
        the concurrent paths are written against.
        """
        if self._pool is None:
            with self._write_lock:
                yield self._conn
            return
        state = self._local
        if getattr(state, "depth", 0) > 0:
            state.depth += 1
            try:
                yield state.conn
            finally:
                state.depth -= 1
            return
        conn = self._pool.acquire(
            timeout=self._pool_timeout if timeout is None else timeout
        )
        state.conn = conn
        state.depth = 1
        began = False
        try:
            if snapshot:
                # deferred: the snapshot is taken at the block's first read
                conn.execute("BEGIN")
                began = True
            yield conn
        finally:
            state.depth = 0
            state.conn = None
            if began:
                try:
                    conn.execute("COMMIT")
                except sqlite3.Error:  # pragma: no cover - read txns commit
                    pass
            self._pool.release(conn)

    def _read_conn(self) -> Optional[sqlite3.Connection]:
        """The thread's pinned reader connection, if inside ``read_connection``."""
        return getattr(self._local, "conn", None) if self._pool is not None else None

    @contextmanager
    def _reading(self) -> Iterator[sqlite3.Connection]:
        """One read statement's connection: pinned reader, pool, or writer."""
        pinned = self._read_conn()
        if pinned is not None:
            yield pinned
            return
        with self.read_connection() as conn:
            yield conn

    def pool_stats(self) -> Dict[str, Any]:
        """The reader pool's ``pool.*`` statistics (empty without a pool)."""
        return self._pool.stats() if self._pool is not None else {}

    def _load_catalog(self) -> None:
        """Rebuild the catalog from an existing database file.

        Every table with a ``_tid`` column reopens as a relation (schema
        reconstructed from column affinities, tid counter from the highest
        stored tid), so a file-backed store survives across sessions.
        Internal detection tableaux orphaned by an unclean shutdown are
        dropped instead of being adopted as user relations — they are
        derived data their owner re-materialises on demand.
        """
        tables = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        ).fetchall()
        for table in tables:
            name = table["name"]
            if name.startswith("sqlite_"):
                continue
            if name.startswith(INTERNAL_RELATION_PREFIX):
                self._conn.execute(f"DROP TABLE IF EXISTS {_ident(name)}")
                self._conn.commit()
                continue
            info = self._conn.execute(f"PRAGMA table_info({_ident(name)})").fetchall()
            if TID_COLUMN not in {column["name"] for column in info}:
                continue
            attributes = [
                AttributeDef(
                    column["name"],
                    _AFFINITY_TYPES.get(str(column["type"]).upper(), DataType.STRING),
                    nullable=not column["notnull"],
                )
                for column in info
                if column["name"] != TID_COLUMN
            ]
            self._schemas[name] = RelationSchema(name=name, attributes=attributes)
            max_tid = self._conn.execute(
                f"SELECT MAX({_ident(TID_COLUMN)}) AS m FROM {_ident(name)}"
            ).fetchone()["m"]
            self._next_tid[name] = 0 if max_tid is None else max_tid + 1

    # -- catalog ---------------------------------------------------------------

    def create_relation(
        self,
        schema: RelationSchema,
        rows: Optional[Iterable[Mapping[str, Any]]] = None,
        replace: bool = False,
    ) -> None:
        with self._write_lock:
            if schema.name in self._schemas:
                if not replace:
                    raise DuplicateRelationError(
                        f"relation {schema.name!r} already exists"
                    )
                self.drop_relation(schema.name)
            columns = [f"{_ident(TID_COLUMN)} INTEGER PRIMARY KEY"]
            for attr in schema.attributes:
                null = "" if attr.nullable else " NOT NULL"
                columns.append(f"{_ident(attr.name)} {_SQL_TYPES[attr.dtype]}{null}")
            self._conn.execute(
                f"CREATE TABLE {_ident(schema.name)} ({', '.join(columns)})"
            )
            if schema.key:
                self._conn.execute(
                    f"CREATE UNIQUE INDEX {_ident('uq_' + schema.name + '_key')} "
                    f"ON {_ident(schema.name)} "
                    f"({', '.join(_ident(a) for a in schema.key)})"
                )
            self._schemas[schema.name] = schema
            self._next_tid[schema.name] = 0
            if rows is not None:
                self.insert_many(schema.name, rows)
            self._conn.commit()

    def add_relation(self, relation: Relation, replace: bool = False) -> None:
        with self._write_lock:
            self.create_relation(relation.schema, rows=None, replace=replace)
            name = relation.name
            self._bulk_insert(name, list(relation.rows()))
            tids = relation.tids()
            self._next_tid[name] = (tids[-1] + 1) if tids else 0
            self._conn.commit()

    def drop_relation(self, name: str) -> None:
        with self._write_lock:
            self._require(name)
            self._conn.execute(f"DROP TABLE IF EXISTS {_ident(name)}")
            self._conn.commit()
            del self._schemas[name]
            del self._next_tid[name]

    def has_relation(self, name: str) -> bool:
        return name in self._schemas

    def relation_names(self) -> List[str]:
        return sorted(self._schemas)

    def schema(self, name: str) -> RelationSchema:
        return self._require(name)

    # -- rows -------------------------------------------------------------------

    def insert_many(self, name: str, rows: Iterable[Mapping[str, Any]]) -> List[int]:
        with self._write_lock:
            schema = self._require(name)
            start = self._next_tid[name]
            pairs = [
                (start + offset, schema.coerce_row(dict(row)))
                for offset, row in enumerate(rows)
            ]
            try:
                self._bulk_insert(name, pairs)
            except sqlite3.IntegrityError as exc:
                # Roll the partial batch back so the backend stays usable (and
                # _next_tid stays consistent with what is actually stored).
                self._conn.rollback()
                raise ConstraintViolationError(str(exc)) from exc
            self._next_tid[name] = start + len(pairs)
            self._conn.commit()
            return [tid for tid, _row in pairs]

    def _bulk_insert(
        self, name: str, pairs: Sequence[Tuple[int, Mapping[str, Any]]]
    ) -> None:
        if not pairs:
            return
        schema = self._schemas[name]
        attrs = schema.attribute_names
        columns = ", ".join(_ident(c) for c in [TID_COLUMN] + attrs)
        placeholders = ", ".join("?" for _ in range(len(attrs) + 1))
        self._conn.executemany(
            f"INSERT INTO {_ident(name)} ({columns}) VALUES ({placeholders})",
            (
                tuple([tid] + [_encode(row.get(a)) for a in attrs])
                for tid, row in pairs
            ),
        )

    def insert_row(
        self, name: str, row: Mapping[str, Any], tid: Optional[int] = None
    ) -> int:
        with self._write_lock:
            schema = self._require(name)
            coerced = schema.coerce_row(dict(row))
            if tid is None:
                tid = self._next_tid[name]
            try:
                self._bulk_insert(name, [(tid, coerced)])
            except sqlite3.IntegrityError as exc:
                self._conn.rollback()
                raise ConstraintViolationError(str(exc)) from exc
            except sqlite3.Error as exc:
                raise SqlExecutionError(str(exc)) from exc
            self._next_tid[name] = max(self._next_tid[name], tid + 1)
            self._conn.commit()
            return tid

    def delete_row(self, name: str, tid: int) -> None:
        with self._write_lock:
            self._require(name)
            try:
                cursor = self._conn.execute(
                    f"DELETE FROM {_ident(name)} WHERE {_ident(TID_COLUMN)} = ?",
                    (tid,),
                )
            except sqlite3.Error as exc:
                raise SqlExecutionError(str(exc)) from exc
            if cursor.rowcount == 0:
                self._conn.rollback()
                raise UnknownTupleError(tid)
            self._conn.commit()

    def update_row(self, name: str, tid: int, changes: Mapping[str, Any]) -> None:
        with self._write_lock:
            schema = self._require(name)
            if not changes:
                self.get_row(name, tid)  # still raises UnknownTupleError if absent
                return
            assignments: List[str] = []
            values: List[Any] = []
            for attr_name, value in changes.items():
                attr = schema.attribute(attr_name)  # validates existence
                assignments.append(f"{_ident(attr_name)} = ?")
                values.append(_encode(attr.coerce(value)))
            try:
                cursor = self._conn.execute(
                    f"UPDATE {_ident(name)} SET {', '.join(assignments)} "
                    f"WHERE {_ident(TID_COLUMN)} = ?",
                    tuple(values) + (tid,),
                )
            except sqlite3.IntegrityError as exc:
                self._conn.rollback()
                raise ConstraintViolationError(str(exc)) from exc
            except sqlite3.Error as exc:
                raise SqlExecutionError(str(exc)) from exc
            if cursor.rowcount == 0:
                self._conn.rollback()
                raise UnknownTupleError(tid)
            self._conn.commit()

    def apply_delta_batch(self, name: str, batch: DeltaBatch) -> None:
        """Apply a whole batch in one transaction: executemany per op kind.

        Where the single-statement delta ops pay one commit each, the batch
        pays exactly one — the grouped statements run inside one implicit
        transaction and either all commit or (on any failure) all roll
        back, so the backend copy never holds half an update batch.
        """
        with self._write_lock:
            schema = self._require(name)
            if batch.is_empty():
                # An empty (fully coalesced-away) batch must not touch the
                # connection at all: no statements, no transaction, no commit.
                return
            deletes = batch.deletes
            inserts = batch.inserts
            try:
                if deletes:
                    cursor = self._conn.executemany(
                        f"DELETE FROM {_ident(name)} WHERE {_ident(TID_COLUMN)} = ?",
                        [(tid,) for tid in deletes],
                    )
                    if cursor.rowcount != len(deletes):
                        # roll back first so the existence probe sees the
                        # pre-batch state (the present tids are deleted by now)
                        self._conn.rollback()
                        raise UnknownTupleError(self._first_missing_tid(name, deletes))
                if inserts:
                    self._bulk_insert(
                        name,
                        [(tid, schema.coerce_row(dict(row))) for tid, row in inserts],
                    )
                for attrs, group in batch.grouped_updates():
                    for attr_name in attrs:
                        schema.attribute(attr_name)  # validates existence
                    assignments = ", ".join(f"{_ident(a)} = ?" for a in attrs)
                    cursor = self._conn.executemany(
                        f"UPDATE {_ident(name)} SET {assignments} "
                        f"WHERE {_ident(TID_COLUMN)} = ?",
                        [
                            tuple(
                                _encode(schema.attribute(a).coerce(changes[a]))
                                for a in attrs
                            )
                            + (tid,)
                            for tid, changes in group
                        ],
                    )
                    if cursor.rowcount != len(group):
                        self._conn.rollback()
                        raise UnknownTupleError(
                            self._first_missing_tid(name, [tid for tid, _ in group])
                        )
            except sqlite3.IntegrityError as exc:
                self._conn.rollback()
                raise ConstraintViolationError(str(exc)) from exc
            except sqlite3.Error as exc:
                self._conn.rollback()
                raise SqlExecutionError(str(exc)) from exc
            except Exception:
                self._conn.rollback()
                raise
            self._conn.commit()
            if inserts:
                self._next_tid[name] = max(
                    self._next_tid[name], max(tid for tid, _row in inserts) + 1
                )

    def get_row(self, name: str, tid: int) -> Dict[str, Any]:
        schema = self._require(name)
        with self._reading() as conn:
            cursor = conn.execute(
                f"SELECT * FROM {_ident(name)} WHERE {_ident(TID_COLUMN)} = ?",
                (tid,),
            )
            row = cursor.fetchone()
        if row is None:
            raise UnknownTupleError(tid)
        return _decode_row(schema, row)

    def iter_rows(self, name: str) -> Iterator[Tuple[int, Dict[str, Any]]]:
        schema = self._require(name)
        # materialised inside the block: a lazily consumed cursor would
        # pin the pooled connection for the generator's whole lifetime
        with self._reading() as conn:
            rows = conn.execute(
                f"SELECT * FROM {_ident(name)} ORDER BY {_ident(TID_COLUMN)}"
            ).fetchall()
        for row in rows:
            yield row[TID_COLUMN], _decode_row(schema, row)

    def row_count(self, name: str) -> int:
        self._require(name)
        with self._reading() as conn:
            cursor = conn.execute(f"SELECT COUNT(*) AS n FROM {_ident(name)}")
            return int(cursor.fetchone()["n"])

    def to_relation(self, name: str) -> Relation:
        return Relation.from_tid_rows(self._require(name), self.iter_rows(name))

    # -- queries and indexes -------------------------------------------------------

    def execute(
        self, sql: str, parameters: Optional[Sequence[Any]] = None
    ) -> List[Dict[str, Any]]:
        # Read statements (the detection SELECTs) route to a pooled
        # read-only connection so worker threads never serialise on the
        # writer; everything else (DDL, DML, pragmas) takes the writer
        # under the write lock.
        if self._pool is not None and _READ_STATEMENT.match(sql):
            with self._reading() as conn:
                try:
                    cursor = conn.execute(sql, tuple(parameters or ()))
                except sqlite3.Error as exc:
                    raise SqlExecutionError(str(exc)) from exc
                return (
                    []
                    if cursor.description is None
                    else [dict(row) for row in cursor.fetchall()]
                )
        with self._write_lock:
            try:
                cursor = self._conn.execute(sql, tuple(parameters or ()))
            except sqlite3.IntegrityError as exc:
                self._conn.rollback()
                raise ConstraintViolationError(str(exc)) from exc
            except sqlite3.Error as exc:
                # Surface the engine's error type so callers can switch backends
                # without changing their exception handling.
                raise SqlExecutionError(str(exc)) from exc
            rows = (
                []
                if cursor.description is None
                else [dict(row) for row in cursor.fetchall()]
            )
            # Commit only when the statement actually opened a write transaction.
            # Read-only statements (the detection SELECTs) never do, so they no
            # longer pay a WAL write per query — and DML that *returns* rows
            # (e.g. RETURNING clauses) is committed, which keying the decision
            # on ``cursor.description`` alone would miss.
            if self._conn.in_transaction:
                self._conn.commit()
            return rows

    def explain_query_plan(
        self, sql: str, parameters: Optional[Sequence[Any]] = None
    ) -> Optional[List[Dict[str, Any]]]:
        """SQLite's ``EXPLAIN QUERY PLAN`` rows for ``sql``.

        The statement is prepared with the same bound parameters the real
        execution would use, so the reported plan is the one the engine
        actually picks.  Returns ``None`` when the engine cannot explain
        the statement (e.g. DDL), keeping the base-contract semantics of
        "no plan available".
        """
        with self._reading() as conn:
            try:
                cursor = conn.execute(
                    "EXPLAIN QUERY PLAN " + sql, tuple(parameters or ())
                )
            except sqlite3.Error:
                return None
            return [dict(row) for row in cursor.fetchall()]

    def ensure_index(self, name: str, attributes: Sequence[str]) -> None:
        with self._write_lock:
            schema = self._require(name)
            for attr in attributes:
                schema.attribute(attr)  # validates existence
            # A digest keeps distinct attribute lists from colliding on the same
            # index name (joining with "_" alone would map ("a_b",) and
            # ("a", "b") to one name and silently skip the second index).
            digest = hashlib.md5("\x1f".join(attributes).encode()).hexdigest()[:8]
            index_name = "idx_" + name + "_" + "_".join(attributes) + "_" + digest
            self._conn.execute(
                f"CREATE INDEX IF NOT EXISTS {_ident(index_name)} "
                f"ON {_ident(name)} ({', '.join(_ident(a) for a in attributes)})"
            )
            self._conn.commit()

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close the writer and drain the reader pool.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
        self._conn.close()

    # -- internal -------------------------------------------------------------------

    def _first_missing_tid(self, name: str, tids: Sequence[int]) -> int:
        """The first tid of ``tids`` not stored in ``name`` (for error reports).

        Only called on the batch error path, after the failed transaction
        rolled back, so the probes see the pre-batch state.
        """
        for tid in tids:
            row = self._conn.execute(
                f"SELECT 1 FROM {_ident(name)} WHERE {_ident(TID_COLUMN)} = ?",
                (tid,),
            ).fetchone()
            if row is None:
                return tid
        return tids[0]  # pragma: no cover - rowcount mismatch implies a miss

    def _require(self, name: str) -> RelationSchema:
        if name not in self._schemas:
            raise UnknownRelationError(name)
        return self._schemas[name]


def _pystr(value: Any) -> Optional[str]:
    """SQL function behind the dialect's FLOAT rendering: Python str()."""
    return None if value is None else str(value)


def _encode(value: Any) -> Any:
    """Encode an engine value for SQLite storage (booleans become 0/1)."""
    if isinstance(value, bool):
        return int(value)
    return value


def _decode_row(schema: RelationSchema, row: sqlite3.Row) -> Dict[str, Any]:
    """Decode a SQLite row back into engine values (0/1 back to booleans)."""
    out: Dict[str, Any] = {}
    for attr in schema.attributes:
        value = row[attr.name]
        if value is not None and attr.dtype is DataType.BOOLEAN:
            value = bool(value)
        out[attr.name] = value
    return out
