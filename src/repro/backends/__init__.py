"""Pluggable storage backends: the "Database Servers" layer of Semandaq.

The paper's system compiles CFD violation detection to SQL and pushes it
down to the underlying DBMS.  This package makes that layer pluggable:

* :class:`~repro.backends.base.StorageBackend` — the narrow interface
  (catalog ops, bulk loading, tid-stable row access, ``execute``,
  ``apply_delta_batch``);
* :class:`~repro.backends.delta.DeltaBatch` — the first-class, coalescing
  changeset the update path ships to a backend in one transaction;
* :class:`~repro.backends.memory.MemoryBackend` — adapter over the embedded
  engine (:mod:`repro.engine`);
* :class:`~repro.backends.sqlite.SqliteBackend` — real-DBMS pushdown on the
  stdlib ``sqlite3`` module (WAL, ``synchronous=NORMAL``, tid primary keys,
  ``executemany`` bulk loads, automatic CFD-LHS indexes);
* :mod:`~repro.backends.dialect` — per-backend SQL dialect descriptions the
  detection-SQL generator consults, so the same ``Q_C``/``Q_V`` queries run
  unmodified everywhere;
* :mod:`~repro.backends.registry` — name-based backend construction
  (``create_backend``), selected through ``SemandaqConfig(backend=...)``.

To add a backend: implement :class:`StorageBackend`, give it a
:class:`~repro.backends.dialect.SqlDialect` describing how non-string
columns are rendered as strings and whether ``?`` parameters are supported,
and register a factory with :func:`register_backend`.
"""

from .base import StorageBackend
from .delta import DeltaBatch
from .dialect import MEMORY_DIALECT, SQLITE_DIALECT, MemoryDialect, SqlDialect, SqliteDialect
from .memory import MemoryBackend
from .registry import (
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from .sqlite import SqliteBackend

__all__ = [
    "StorageBackend",
    "DeltaBatch",
    "MemoryBackend",
    "SqliteBackend",
    "SqlDialect",
    "MemoryDialect",
    "SqliteDialect",
    "MEMORY_DIALECT",
    "SQLITE_DIALECT",
    "available_backends",
    "create_backend",
    "register_backend",
    "unregister_backend",
]
