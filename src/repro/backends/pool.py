"""A bounded pool of read-only SQLite connections.

The concurrent serving layer hands every reader thread its own SQLite
connection: WAL mode already lets any number of readers run against the
database file while one writer streams update batches, but a single
``sqlite3.Connection`` serialises everything through one cursor (and the
stdlib forbids sharing a connection across threads by default).  The
:class:`SqliteReaderPool` keeps that concurrency honest and bounded:

* connections are opened **read-only** (``mode=ro`` URI + ``PRAGMA
  query_only=ON``), so a detection query can never mutate the store even
  if a statement slips through the backend's read/write routing;
* the pool is **bounded** — ``acquire`` blocks when every connection is
  checked out (a timeout raises :class:`PoolTimeoutError` instead of
  silently opening more file handles), so a thundering herd degrades to
  queueing, not to fd exhaustion;
* connections are opened **lazily**: a single-threaded workload pays for
  one reader connection, not ``size``;
* ``close`` drains the pool and closes every connection it ever opened —
  the file-backed test suite pins "no leaked fds" on this.

Acquisition statistics (``acquired``/``wait_ms``/``timeouts``/``size``)
are tracked under the pool lock; the facade folds them into the telemetry
snapshot as ``pool.*`` counters.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..errors import BackendError


class PoolTimeoutError(BackendError):
    """Waiting for a pooled reader connection exceeded the timeout."""

    def __init__(self, timeout: float, size: int):
        super().__init__(
            f"no reader connection became available within {timeout:.3f}s "
            f"(pool size {size}; every connection is checked out)"
        )
        self.timeout = timeout
        self.size = size


class SqliteReaderPool:
    """A bounded, lazily populated pool of read-only SQLite connections.

    ``connect`` is the factory that opens one configured read-only
    connection (the backend supplies it so the readers carry the same
    row factory, pragmas and SQL functions as the writer).  The pool
    never opens more than ``size`` connections; once the cap is reached,
    :meth:`acquire` blocks on a condition variable until a connection is
    released (or the timeout expires).
    """

    def __init__(self, size: int, connect: Callable[[], sqlite3.Connection]):
        if size < 1:
            raise BackendError(f"reader pool size must be at least 1, got {size}")
        self.size = size
        self._connect = connect
        self._lock = threading.Condition()
        #: connections currently checked in (LIFO: the hottest statement
        #: cache is reused first)
        self._idle: List[sqlite3.Connection] = []
        #: number of connections opened so far (idle + checked out)
        self._opened = 0
        self._closed = False
        #: acquisition statistics (read via :meth:`stats`)
        self._acquired = 0
        self._wait_ms = 0.0
        self._timeouts = 0

    def acquire(self, timeout: Optional[float] = None) -> sqlite3.Connection:
        """Check one reader connection out, blocking while the pool is empty.

        Raises :class:`PoolTimeoutError` when ``timeout`` (seconds) passes
        without a connection becoming available, and :class:`BackendError`
        once the pool is closed.
        """
        started = time.perf_counter()
        deadline = None if timeout is None else started + timeout
        with self._lock:
            while True:
                if self._closed:
                    raise BackendError("reader pool is closed")
                if self._idle:
                    conn = self._idle.pop()
                    break
                if self._opened < self.size:
                    # open outside the idle list: this connection is
                    # checked out the moment it exists
                    self._opened += 1
                    try:
                        conn = self._connect()
                    except BaseException:
                        self._opened -= 1
                        self._lock.notify()
                        raise
                    break
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    self._timeouts += 1
                    raise PoolTimeoutError(timeout or 0.0, self.size)
                self._lock.wait(remaining)
            self._acquired += 1
            self._wait_ms += (time.perf_counter() - started) * 1000.0
            return conn

    def release(self, conn: sqlite3.Connection) -> None:
        """Check a connection back in (closes it if the pool was closed)."""
        with self._lock:
            if self._closed:
                self._opened -= 1
                conn.close()
                return
            self._idle.append(conn)
            self._lock.notify()

    def close(self) -> None:
        """Drain the pool: close every idle connection and refuse new work.

        Connections still checked out are closed by their own
        :meth:`release`; a subsequent :meth:`acquire` raises.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            while self._idle:
                self._idle.pop().close()
                self._opened -= 1
            self._lock.notify_all()

    @property
    def open_count(self) -> int:
        """Number of connections currently open (idle + checked out)."""
        with self._lock:
            return self._opened

    def stats(self) -> Dict[str, Any]:
        """Acquisition statistics, for the ``pool.*`` telemetry counters."""
        with self._lock:
            return {
                "pool.size": self.size,
                "pool.open": self._opened,
                "pool.acquired": self._acquired,
                "pool.wait_ms": round(self._wait_ms, 3),
                "pool.timeouts": self._timeouts,
            }
