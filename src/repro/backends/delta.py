"""The first-class changeset flowing through the update path: ``DeltaBatch``.

Before this module existed, every layer of the update path spoke in single
tuples: the data monitor forwarded one ``insert_row``/``delete_row``/
``update_row`` statement per applied update, and every one of those cost a
commit on a real-DBMS backend.  A :class:`DeltaBatch` is the grouped
alternative: it accumulates the *net* per-tuple effect of a whole update
batch and ships it to a backend in one
:meth:`~repro.backends.base.StorageBackend.apply_delta_batch` call — one
transaction on SQLite (``executemany`` per operation kind, single commit)
instead of one commit per statement.

Recording is **coalescing**: operations on the same tuple id collapse into
their net effect, so a batch never carries two statements for one tuple:

* insert then update  → one insert of the final row;
* insert then delete  → nothing (the tuple never reaches the backend);
* update then update  → one update with the merged changes;
* update then delete  → one delete;
* delete then insert  → a *replace* (shipped as delete + insert of the new
  row under the same tid — backends apply all deletes before all inserts,
  so the order is always safe).

Sequences that could not have happened against a live relation (updating a
deleted tuple, inserting an already-live tid twice) raise
:class:`~repro.errors.BackendError` at recording time, before anything
reaches a backend.

Tuple ids are explicit throughout: the recorder (typically the
:class:`~repro.detection.incremental.IncrementalDetector`, whose working
store assigns tids) owns tid assignment, which is what keeps the working
store and every backend copy aligned tid for tid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import BackendError

#: internal op kinds a tuple id can net out to
_INSERT = "insert"
_UPDATE = "update"
_DELETE = "delete"
_REPLACE = "replace"  # delete of the stored row, then insert of a new one


@dataclass
class DeltaBatch:
    """The coalesced net effect of a batch of updates on one relation."""

    #: relation the batch applies to (informational; backends take the
    #: target name explicitly in ``apply_delta_batch``)
    relation: Optional[str] = None
    #: tid -> (kind, payload); payload is the row for inserts/replaces, the
    #: change mapping for updates, ``None`` for deletes
    _ops: Dict[int, Tuple[str, Any]] = field(default_factory=dict)
    #: operations recorded into the batch before coalescing; compared with
    #: :attr:`statement_count` this is the coalescing win the telemetry
    #: layer surfaces (ops recorded vs ops shipped)
    ops_recorded: int = 0

    # -- recording -------------------------------------------------------------

    def record_insert(self, tid: int, row: Mapping[str, Any]) -> None:
        """Record the insertion of ``row`` under ``tid``."""
        kind = self._ops.get(tid, (None,))[0]
        if kind is None:
            self._ops[tid] = (_INSERT, dict(row))
        elif kind == _DELETE:
            self._ops[tid] = (_REPLACE, dict(row))
        else:
            raise BackendError(f"tid {tid} is already live in this batch")
        self.ops_recorded += 1

    def record_update(self, tid: int, changes: Mapping[str, Any]) -> None:
        """Record a cell-value update of the tuple under ``tid``."""
        if not changes:
            return
        kind, payload = self._ops.get(tid, (None, None))
        if kind is None:
            self._ops[tid] = (_UPDATE, dict(changes))
        elif kind in (_INSERT, _REPLACE):
            self._ops[tid] = (kind, {**payload, **changes})
        elif kind == _UPDATE:
            self._ops[tid] = (_UPDATE, {**payload, **changes})
        else:
            raise BackendError(f"tid {tid} was deleted earlier in this batch")
        self.ops_recorded += 1

    def record_delete(self, tid: int) -> None:
        """Record the deletion of the tuple under ``tid``."""
        kind = self._ops.get(tid, (None,))[0]
        if kind == _INSERT:
            del self._ops[tid]  # never existed as far as the backend knows
        elif kind in (_UPDATE, _REPLACE, None):
            self._ops[tid] = (_DELETE, None)
        else:
            raise BackendError(f"tid {tid} was already deleted in this batch")
        self.ops_recorded += 1

    # -- grouped views ---------------------------------------------------------

    @property
    def deletes(self) -> List[int]:
        """Tids to delete (including the delete half of every replace)."""
        return [
            tid for tid, (kind, _) in self._ops.items() if kind in (_DELETE, _REPLACE)
        ]

    @property
    def inserts(self) -> List[Tuple[int, Dict[str, Any]]]:
        """``(tid, row)`` pairs to insert (including the insert half of replaces)."""
        return [
            (tid, payload)
            for tid, (kind, payload) in self._ops.items()
            if kind in (_INSERT, _REPLACE)
        ]

    @property
    def updates(self) -> List[Tuple[int, Dict[str, Any]]]:
        """``(tid, changes)`` pairs to update in place."""
        return [
            (tid, payload)
            for tid, (kind, payload) in self._ops.items()
            if kind == _UPDATE
        ]

    def grouped_updates(self) -> List[Tuple[Tuple[str, ...], List[Tuple[int, Dict[str, Any]]]]]:
        """Updates grouped by their (sorted) changed-attribute set.

        Each group shares one SQL statement shape, so a backend can run one
        ``executemany`` per group instead of one statement per tuple.
        """
        groups: Dict[Tuple[str, ...], List[Tuple[int, Dict[str, Any]]]] = {}
        for tid, changes in self.updates:
            groups.setdefault(tuple(sorted(changes)), []).append((tid, changes))
        return list(groups.items())

    # -- inspection ------------------------------------------------------------

    def is_empty(self) -> bool:
        """Whether the batch nets out to no change at all."""
        return not self._ops

    def __len__(self) -> int:
        """Number of tuples the batch touches (a replace counts once)."""
        return len(self._ops)

    @property
    def statement_count(self) -> int:
        """Single-statement operations this batch replaces (replace = 2)."""
        return sum(
            2 if kind == _REPLACE else 1 for kind, _ in self._ops.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaBatch(relation={self.relation!r}, inserts={len(self.inserts)}, "
            f"updates={len(self.updates)}, deletes={len(self.deletes)})"
        )
