"""The storage-backend interface: the "Database Servers" layer made pluggable.

Semandaq's defining architecture decision is that CFD violation detection is
compiled to SQL and *pushed down* to the underlying DBMS.  A
:class:`StorageBackend` is the narrow contract that pushdown needs from a
database server:

* **catalog operations** — create/drop/list relations, schema lookup;
* **bulk loading** — :meth:`insert_many` for loading rows efficiently
  (CSV import, tableau materialisation);
* **tid-stable row access** — every stored row keeps the stable integer
  tuple id (``tid``) the detector, auditor and cleanser use to refer to it,
  across backends and across round trips;
* **delta operations** — :meth:`insert_row`, :meth:`delete_row` and
  :meth:`update_row` apply a single-tuple change without reloading the
  relation, and :meth:`apply_delta_batch` applies a whole
  :class:`~repro.backends.delta.DeltaBatch` of such changes in one round
  trip (one transaction on SQLite).  The data monitor ships every monitored
  update batch (and every incremental-repair cell change) down this way,
  which is what keeps a backend-resident copy current at a cost
  proportional to the update batch instead of the relation;
* **query execution** — :meth:`execute` runs a detection query (in the
  backend's own :class:`~repro.backends.dialect.SqlDialect`) and returns
  plain row dicts;
* **index management** — :meth:`ensure_index` lets the detector create
  indexes on CFD LHS attributes before running the grouping queries.

Two implementations ship with the library: a
:class:`~repro.backends.memory.MemoryBackend` adapter over the embedded
engine, and a :class:`~repro.backends.sqlite.SqliteBackend` over the stdlib
``sqlite3`` module.  New backends register themselves with
:func:`repro.backends.registry.register_backend` and become selectable via
``SemandaqConfig(backend=...)``.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..engine.relation import Relation
from ..engine.types import RelationSchema
from .delta import DeltaBatch
from .dialect import SqlDialect


class StorageBackend(abc.ABC):
    """Abstract interface every storage backend implements."""

    #: short backend name (matches its registry key)
    name: str = "abstract"
    #: SQL dialect the backend's ``execute`` understands
    dialect: SqlDialect

    # -- catalog ---------------------------------------------------------------

    @abc.abstractmethod
    def create_relation(
        self,
        schema: RelationSchema,
        rows: Optional[Iterable[Mapping[str, Any]]] = None,
        replace: bool = False,
    ) -> None:
        """Create a relation from ``schema`` and optionally bulk-load ``rows``."""

    @abc.abstractmethod
    def add_relation(self, relation: Relation, replace: bool = False) -> None:
        """Store an existing in-memory :class:`Relation`, preserving its tids."""

    @abc.abstractmethod
    def drop_relation(self, name: str) -> None:
        """Remove relation ``name``; raises ``UnknownRelationError`` if absent."""

    @abc.abstractmethod
    def has_relation(self, name: str) -> bool:
        """Whether a relation called ``name`` exists."""

    @abc.abstractmethod
    def relation_names(self) -> List[str]:
        """Names of all stored relations, sorted."""

    @abc.abstractmethod
    def schema(self, name: str) -> RelationSchema:
        """The schema of relation ``name``."""

    def schema_summary(self) -> Dict[str, List[str]]:
        """Map each relation name to its attribute names."""
        return {
            name: self.schema(name).attribute_names for name in self.relation_names()
        }

    # -- rows -------------------------------------------------------------------

    @abc.abstractmethod
    def insert_many(
        self, name: str, rows: Iterable[Mapping[str, Any]]
    ) -> List[int]:
        """Bulk-insert ``rows`` into relation ``name``; returns assigned tids."""

    @abc.abstractmethod
    def insert_row(
        self, name: str, row: Mapping[str, Any], tid: Optional[int] = None
    ) -> int:
        """Insert one row; returns its tid.

        When ``tid`` is given the row is stored under exactly that tuple id
        (the caller — typically the data monitor mirroring its working
        store — owns tid assignment); otherwise the backend assigns the next
        free tid.  A single-statement operation: no other row is touched.
        """

    @abc.abstractmethod
    def delete_row(self, name: str, tid: int) -> None:
        """Delete the row stored under ``tid``; raises ``UnknownTupleError``
        if absent.  A single-statement operation."""

    @abc.abstractmethod
    def update_row(
        self, name: str, tid: int, changes: Mapping[str, Any]
    ) -> None:
        """Apply ``changes`` (attribute -> new value) to the row under ``tid``.

        Raises ``UnknownTupleError`` if the tid is not stored.  A
        single-statement operation: only the named attributes of the one row
        change.
        """

    def apply_delta_batch(self, name: str, batch: DeltaBatch) -> None:
        """Apply a whole :class:`~repro.backends.delta.DeltaBatch` to ``name``.

        The batch is already coalesced (at most one net operation per tid),
        so the application order — all deletes, then all inserts, then all
        updates — is always safe, including for replaces (delete + insert
        of the same tid).

        The base implementation loops over the single-statement delta ops;
        backends with a cheaper grouped path (a single transaction, one
        ``executemany`` per operation kind) override it.  Backends that can
        roll back must apply the batch atomically: on failure, none of it.
        A batch that coalesced to *nothing* (e.g. an insert and a delete of
        the same tid) must be a no-op — in particular, no write transaction
        may be opened for it.
        """
        if batch.is_empty():
            return
        for tid in batch.deletes:
            self.delete_row(name, tid)
        for tid, row in batch.inserts:
            self.insert_row(name, row, tid=tid)
        for tid, changes in batch.updates:
            self.update_row(name, tid, changes)

    @abc.abstractmethod
    def get_row(self, name: str, tid: int) -> Dict[str, Any]:
        """The row stored under tuple id ``tid``."""

    @abc.abstractmethod
    def iter_rows(self, name: str) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Iterate ``(tid, row)`` pairs in ascending tid order."""

    @abc.abstractmethod
    def row_count(self, name: str) -> int:
        """Number of rows stored in relation ``name``."""

    @abc.abstractmethod
    def to_relation(self, name: str) -> Relation:
        """Materialise relation ``name`` as an in-memory :class:`Relation`.

        Tuple ids are preserved exactly.  Backends that already hold an
        in-memory :class:`Relation` may return the live object; callers
        must not rely on the result being a private copy.

        The SQL detection paths no longer call this: batch and incremental
        detection assemble their reports from backend rows alone (schema
        and row count come from the catalog ops above), so a remote
        backend never ships the relation back.  It remains the bulk-export
        path for the native detector, repair and the explorer.
        """

    # -- queries and indexes -------------------------------------------------------

    @abc.abstractmethod
    def execute(
        self, sql: str, parameters: Optional[Sequence[Any]] = None
    ) -> List[Dict[str, Any]]:
        """Run ``sql`` (in this backend's dialect) and return rows as dicts.

        Statements that produce no rows (DDL, DML) return an empty list.
        ``parameters`` bind to ``?`` placeholders on dialects that support
        them (:attr:`SqlDialect.supports_parameters`).
        """

    @abc.abstractmethod
    def ensure_index(self, name: str, attributes: Sequence[str]) -> None:
        """Create an index on ``attributes`` of relation ``name`` if missing.

        The detector calls this for every CFD LHS before running the
        grouping queries, mirroring the paper's reliance on DBMS indexes.
        """

    def explain_query_plan(
        self, sql: str, parameters: Optional[Sequence[Any]] = None
    ) -> Optional[List[Dict[str, Any]]]:
        """The backend's query plan for ``sql``, as plain row dicts.

        Backends without plan introspection return ``None`` (the base
        behaviour); the telemetry layer's ``explain_plans`` mode records
        nothing for them.  SQLite returns its ``EXPLAIN QUERY PLAN`` rows,
        whose ``detail`` text names the indexes driving each step — which
        is what turns "the covering-members query rides the CFD-LHS
        index" from prose into a testable property.
        """
        return None

    # -- concurrent serving --------------------------------------------------------

    @contextmanager
    def read_connection(
        self, snapshot: bool = False, timeout: Optional[float] = None
    ) -> Iterator[Any]:
        """Pin one read context to the calling thread for the block's duration.

        The concurrent serving layer wraps multi-statement read phases
        (a detection run, an audit, an explorer page) in this context so
        every statement issued inside it lands on the *same* underlying
        connection.  With ``snapshot=True`` the backend additionally opens
        a read transaction, so the block observes one consistent snapshot
        of the store even while a writer streams delta batches.

        The yielded value is backend-private (SQLite yields the pinned
        ``sqlite3`` connection); callers keep issuing reads through the
        normal :meth:`execute` / :meth:`get_row` / :meth:`iter_rows`
        surface, which routes to the pinned connection automatically.

        The base implementation is a no-op pin: backends without reader
        pools (e.g. the embedded-engine adapter) are plain objects whose
        reads need no per-thread connection, so the context just yields
        the backend itself.  ``timeout`` bounds the wait for a pooled
        connection on backends that have one.
        """
        del snapshot, timeout  # no pool: nothing to pin or snapshot
        yield self

    def pool_stats(self) -> Dict[str, Any]:
        """Reader-pool acquisition counters (``pool.*``), empty without a pool."""
        return {}

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (connections, file handles)."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"relations={self.relation_names()})"
        )
