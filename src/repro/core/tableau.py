"""Pattern tableaux and their relational encoding.

The paper stresses that "CFDs allow for a relational representation [3], the
constraint engine maximally leverages the use of indices and other
optimizations provided by DBMS in the storage and manipulation of CFDs".
This module materialises the pattern tableau of a CFD as a relation whose
columns are the CFD's attributes (wildcards encoded as SQL NULL), which is
exactly what the SQL-based detection queries join against.

Wildcards used to be stored as the literal ``_`` token, which made a
*constant* whose value is literally ``'_'`` (constructible through
:meth:`~repro.core.pattern.PatternValue.const`) indistinguishable from a
wildcard on the SQL detection paths while the native path treated it as the
constant it is.  NULL cannot collide with any constant — ``const(None)``
is rejected at construction — so the encoding is now NULL for wildcards
and ``str(constant)`` for constants, and the generated predicates test
``tab.X IS NULL`` instead of ``tab.X = '_'``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import CfdError
from ..engine.relation import Relation
from ..engine.types import AttributeDef, DataType, RelationSchema
from .cfd import CFD
from .pattern import PatternTuple, PatternValue

#: Name of the extra column holding the pattern-tuple index in the encoding.
PATTERN_ID_COLUMN = "pattern_id"


def merge_cfds(cfds: Iterable[CFD]) -> List[CFD]:
    """Merge CFDs that share relation and embedded FD into multi-pattern CFDs.

    The result contains one CFD per (relation, LHS, RHS) combination whose
    tableau is the concatenation of all pattern tuples, with duplicates
    removed.  This is how the constraint engine stores user-specified CFDs
    compactly.
    """
    grouped: Dict[Tuple[str, Tuple[str, ...], Tuple[str, ...]], List[CFD]] = {}
    order: List[Tuple[str, Tuple[str, ...], Tuple[str, ...]]] = []
    for cfd in cfds:
        key = (cfd.relation, cfd.lhs, cfd.rhs)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(cfd)
    merged: List[CFD] = []
    for key in order:
        members = grouped[key]
        patterns: List[PatternTuple] = []
        for member in members:
            for pattern in member.patterns:
                if pattern not in patterns:
                    patterns.append(pattern)
        name = members[0].name
        merged.append(members[0].with_patterns(patterns) if len(patterns) != len(members[0].patterns) or len(members) > 1 else members[0])
        merged[-1] = CFD(
            relation=key[0], lhs=key[1], rhs=key[2], patterns=tuple(patterns), name=name
        )
    return merged


def tableau_schema(cfd: CFD, relation_name: Optional[str] = None) -> RelationSchema:
    """Schema of the relational encoding of ``cfd``'s pattern tableau."""
    name = relation_name or f"tableau_{cfd.name or 'cfd'}"
    attributes = [AttributeDef(PATTERN_ID_COLUMN, DataType.INTEGER, nullable=False)]
    attributes.extend(AttributeDef(attr, DataType.STRING) for attr in cfd.attributes)
    return RelationSchema(name=name, attributes=attributes)


def tableau_to_relation(cfd: CFD, relation_name: Optional[str] = None) -> Relation:
    """Materialise the pattern tableau of ``cfd`` as a relation.

    Every constant is stored as its string encoding; wildcards are stored
    as NULL (which no constant can collide with).  The extra ``pattern_id``
    column numbers the pattern tuples so detection results can point back
    to the exact pattern violated.
    """
    schema = tableau_schema(cfd, relation_name)
    relation = Relation(schema)
    for index, pattern in enumerate(cfd.patterns):
        row: Dict[str, object] = {PATTERN_ID_COLUMN: index}
        for attr in cfd.attributes:
            row[attr] = _encode_value(pattern.value(attr))
        relation.insert(row)
    return relation


def relation_to_tableau(cfd_shape: CFD, relation: Relation) -> CFD:
    """Rebuild a CFD from the relational encoding produced by :func:`tableau_to_relation`.

    ``cfd_shape`` supplies the relation name and embedded FD; the pattern
    tuples are read back from ``relation`` ordered by ``pattern_id``.
    """
    rows = sorted(relation.to_list(), key=lambda row: row.get(PATTERN_ID_COLUMN, 0))
    if not rows:
        raise CfdError("tableau relation is empty")
    patterns: List[PatternTuple] = []
    for row in rows:
        mapping = {}
        for attr in cfd_shape.attributes:
            mapping[attr] = _decode_value(row.get(attr))
        patterns.append(PatternTuple.of(mapping))
    return cfd_shape.with_patterns(patterns)


def _encode_value(value: PatternValue) -> Optional[str]:
    if value.is_wildcard:
        return None
    return str(value.constant)


def _decode_value(raw: object) -> PatternValue:
    # NULL is the wildcard encoding; every non-NULL string — including a
    # literal '_' — decodes to the constant it is
    if raw is None:
        return PatternValue.wildcard()
    return PatternValue.const(raw)


def tableau_size(cfds: Iterable[CFD]) -> int:
    """Total number of pattern tuples across ``cfds`` (the |Tp| of the papers)."""
    return sum(len(cfd.patterns) for cfd in cfds)


def split_constant_variable(cfd: CFD) -> Tuple[List[PatternTuple], List[PatternTuple]]:
    """Partition the tableau into constant-RHS and variable-RHS pattern tuples.

    The detection SQL treats them differently: constant-RHS patterns can be
    violated by a single tuple, variable-RHS patterns only by pairs.
    """
    constant_patterns: List[PatternTuple] = []
    variable_patterns: List[PatternTuple] = []
    for pattern in cfd.patterns:
        rhs = cfd.rhs_pattern(pattern)
        if any(value.is_constant for _attr, value in rhs.values):
            constant_patterns.append(pattern)
        if any(value.is_wildcard for _attr, value in rhs.values):
            variable_patterns.append(pattern)
    return constant_patterns, variable_patterns
