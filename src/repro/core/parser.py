"""Textual syntax for specifying CFDs.

The data explorer of the paper lets users build CFDs by drag-and-drop; the
library equivalent is a compact textual syntax::

    customer: [CC='44'] -> [CNT='UK']
    customer: [CNT='UK', ZIP=_] -> [STR=_]
    [CNT, ZIP] -> [CITY]                      # plain FD (wildcards implied)

Rules:

* the leading ``relation:`` part is optional if a default relation is given;
* an attribute without ``=`` (or with ``=_``) is the unnamed variable ``_``;
* constants are single-quoted strings, double-quoted strings, or bare
  numbers / identifiers (bare tokens are kept as strings unless they parse
  as numbers);
* several pattern tuples can be given for the same embedded FD by separating
  bracket groups with ``;`` on the right of the colon, e.g.
  ``customer: [CC='44'] -> [CNT='UK'] ; [CC='01'] -> [CNT='US']``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import CfdParseError
from .cfd import CFD
from .pattern import PatternTuple, PatternValue, WILDCARD_TOKEN

_ITEM_RE = re.compile(
    r"""
    \s*
    (?P<attr>[A-Za-z_][A-Za-z0-9_]*)
    \s*
    (?:=\s*(?P<value>'(?:[^']|'')*'|"[^"]*"|[^,\]]+?))?
    \s*
    (?:,|$)
    """,
    re.VERBOSE,
)


def _parse_value(raw: Optional[str]) -> PatternValue:
    if raw is None:
        return PatternValue.wildcard()
    text = raw.strip()
    if text == WILDCARD_TOKEN or text == "":
        return PatternValue.wildcard()
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return PatternValue.const(text[1:-1].replace("''", "'"))
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return PatternValue.const(text[1:-1])
    # bare token: try numeric, otherwise keep the string
    try:
        if re.fullmatch(r"[+-]?\d+", text):
            return PatternValue.const(int(text))
        if re.fullmatch(r"[+-]?\d*\.\d+([eE][+-]?\d+)?", text):
            return PatternValue.const(float(text))
    except ValueError:  # pragma: no cover - regex guards this
        pass
    return PatternValue.const(text)


def _parse_bracket_group(text: str, what: str) -> List[Tuple[str, PatternValue]]:
    text = text.strip()
    if not (text.startswith("[") and text.endswith("]")):
        raise CfdParseError(f"{what} must be enclosed in brackets: {text!r}")
    inner = text[1:-1].strip()
    if not inner:
        return []
    items: List[Tuple[str, PatternValue]] = []
    position = 0
    while position < len(inner):
        match = _ITEM_RE.match(inner, position)
        if not match or match.end() == position:
            raise CfdParseError(f"cannot parse {what} item near {inner[position:]!r}")
        attr = match.group("attr")
        value = _parse_value(match.group("value"))
        items.append((attr, value))
        position = match.end()
    return items


def _split_top_level(text: str, separator: str) -> List[str]:
    """Split on ``separator`` while ignoring occurrences inside brackets/quotes."""
    parts: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
            i += 1
            continue
        if ch in ("'", '"'):
            quote = ch
            current.append(ch)
            i += 1
            continue
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if depth == 0 and text.startswith(separator, i):
            parts.append("".join(current))
            current = []
            i += len(separator)
            continue
        current.append(ch)
        i += 1
    parts.append("".join(current))
    return parts


def parse_cfd(text: str, default_relation: Optional[str] = None, name: Optional[str] = None) -> CFD:
    """Parse one CFD from its textual form."""
    text = text.strip()
    if not text:
        raise CfdParseError("empty CFD specification")
    relation = default_relation
    body = text
    # Optional "relation:" prefix — only if the colon comes before the first '['.
    colon = text.find(":")
    bracket = text.find("[")
    if colon != -1 and (bracket == -1 or colon < bracket):
        relation = text[:colon].strip()
        body = text[colon + 1 :].strip()
    if not relation:
        raise CfdParseError(
            "no relation name: prefix the CFD with 'relation:' or pass default_relation"
        )

    groups = [group.strip() for group in _split_top_level(body, ";") if group.strip()]
    if not groups:
        raise CfdParseError(f"no pattern groups found in {text!r}")

    lhs_attrs: Optional[Tuple[str, ...]] = None
    rhs_attrs: Optional[Tuple[str, ...]] = None
    patterns = []
    for group in groups:
        arrow_parts = _split_top_level(group, "->")
        if len(arrow_parts) != 2:
            raise CfdParseError(f"expected exactly one '->' in {group!r}")
        lhs_items = _parse_bracket_group(arrow_parts[0], "LHS")
        rhs_items = _parse_bracket_group(arrow_parts[1], "RHS")
        if not rhs_items:
            raise CfdParseError(f"RHS of {group!r} is empty")
        group_lhs = tuple(attr for attr, _ in lhs_items)
        group_rhs = tuple(attr for attr, _ in rhs_items)
        if lhs_attrs is None:
            lhs_attrs, rhs_attrs = group_lhs, group_rhs
        elif (group_lhs, group_rhs) != (lhs_attrs, rhs_attrs):
            raise CfdParseError(
                "all pattern groups of one CFD must share the same embedded FD; "
                f"got [{','.join(group_lhs)}]->[{','.join(group_rhs)}] after "
                f"[{','.join(lhs_attrs)}]->[{','.join(rhs_attrs)}]"
            )
        mapping: Dict[str, PatternValue] = {}
        mapping.update(dict(lhs_items))
        mapping.update(dict(rhs_items))
        patterns.append(PatternTuple.of(mapping))

    assert lhs_attrs is not None and rhs_attrs is not None
    return CFD(
        relation=relation,
        lhs=lhs_attrs,
        rhs=rhs_attrs,
        patterns=tuple(patterns),
        name=name,
    )


def parse_cfds(
    text: str, default_relation: Optional[str] = None, name_prefix: str = "cfd"
) -> List[CFD]:
    """Parse a multi-line specification: one CFD per non-empty, non-comment line."""
    cfds: List[CFD] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        name = f"{name_prefix}{len(cfds) + 1}"
        try:
            cfds.append(parse_cfd(line, default_relation=default_relation, name=name))
        except CfdParseError as exc:
            raise CfdParseError(f"line {line_number}: {exc}") from exc
    return cfds


def format_cfd(cfd: CFD) -> str:
    """Render a CFD back to the textual syntax accepted by :func:`parse_cfd`."""
    groups = []
    for pattern in cfd.patterns:
        def render(attr: str) -> str:
            value = pattern.value(attr)
            if value.is_wildcard:
                return f"{attr}=_"
            if isinstance(value.constant, str):
                escaped = value.constant.replace("'", "''")
                return f"{attr}='{escaped}'"
            return f"{attr}={value.constant}"

        lhs = ", ".join(render(attr) for attr in cfd.lhs)
        rhs = ", ".join(render(attr) for attr in cfd.rhs)
        groups.append(f"[{lhs}] -> [{rhs}]")
    return f"{cfd.relation}: " + " ; ".join(groups)
