"""Pattern values and pattern tuples for conditional functional dependencies.

A CFD pairs an embedded functional dependency ``X -> Y`` with a *pattern
tuple* over ``X ∪ Y``.  Each position of the pattern tuple is either a
constant (the attribute must carry exactly that value) or the unnamed
variable ``_`` ("don't care": any value is allowed, but equal values are
still required across tuples by the embedded FD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..errors import CfdError

#: The token used to render the unnamed variable ("don't care") in text and
#: in the relational encoding of pattern tableaux.
WILDCARD_TOKEN = "_"


@dataclass(frozen=True)
class PatternValue:
    """A single position of a pattern tuple: a constant or the wildcard ``_``."""

    constant: Optional[Any] = None
    is_wildcard: bool = False

    def __post_init__(self) -> None:
        if self.is_wildcard and self.constant is not None:
            raise CfdError("a wildcard pattern value cannot carry a constant")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def wildcard(cls) -> "PatternValue":
        """The unnamed variable ``_``."""
        return cls(constant=None, is_wildcard=True)

    @classmethod
    def const(cls, value: Any) -> "PatternValue":
        """A constant pattern value."""
        if value is None:
            raise CfdError("a constant pattern value cannot be NULL")
        return cls(constant=value, is_wildcard=False)

    @classmethod
    def parse(cls, text: Any) -> "PatternValue":
        """Parse a raw token: ``'_'`` (or None) is the wildcard, else a constant."""
        if text is None:
            return cls.wildcard()
        if isinstance(text, str) and text.strip() == WILDCARD_TOKEN:
            return cls.wildcard()
        return cls.const(text)

    # -- semantics -------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        """Whether this pattern value is a constant."""
        return not self.is_wildcard

    def matches(self, value: Any) -> bool:
        """Whether a data value matches this pattern value.

        The wildcard matches every non-NULL value; a constant matches only an
        equal value.  NULL never matches (a NULL cell cannot support or
        violate a pattern on its own).
        """
        if value is None:
            return False
        if self.is_wildcard:
            return True
        if isinstance(self.constant, (int, float)) and isinstance(value, (int, float)):
            return float(self.constant) == float(value)
        return self.constant == value

    def encode(self) -> Any:
        """Relational encoding used when materialising pattern tableaux."""
        return WILDCARD_TOKEN if self.is_wildcard else self.constant

    def __str__(self) -> str:
        return WILDCARD_TOKEN if self.is_wildcard else repr(self.constant)


@dataclass(frozen=True)
class PatternTuple:
    """An assignment of pattern values to a fixed set of attributes."""

    values: Tuple[Tuple[str, PatternValue], ...]

    # -- constructors -----------------------------------------------------------

    @classmethod
    def of(cls, mapping: Mapping[str, Any]) -> "PatternTuple":
        """Build a pattern tuple from ``{attribute: raw value or PatternValue}``."""
        items = []
        for attribute, value in mapping.items():
            if isinstance(value, PatternValue):
                items.append((attribute, value))
            else:
                items.append((attribute, PatternValue.parse(value)))
        return cls(values=tuple(items))

    # -- access -----------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attributes this pattern tuple constrains, in order."""
        return tuple(attribute for attribute, _value in self.values)

    def value(self, attribute: str) -> PatternValue:
        """The pattern value for ``attribute``."""
        for name, pattern_value in self.values:
            if name == attribute:
                return pattern_value
        raise CfdError(f"pattern tuple has no attribute {attribute!r}")

    def __contains__(self, attribute: str) -> bool:
        return any(name == attribute for name, _value in self.values)

    def as_dict(self) -> Dict[str, PatternValue]:
        """Return the pattern tuple as a plain dict."""
        return dict(self.values)

    def restrict(self, attributes: Iterable[str]) -> "PatternTuple":
        """Project the pattern tuple onto ``attributes`` (kept in that order)."""
        return PatternTuple(
            values=tuple((attribute, self.value(attribute)) for attribute in attributes)
        )

    # -- semantics ----------------------------------------------------------------

    def constant_attributes(self) -> Tuple[str, ...]:
        """Attributes whose pattern value is a constant."""
        return tuple(a for a, v in self.values if v.is_constant)

    def wildcard_attributes(self) -> Tuple[str, ...]:
        """Attributes whose pattern value is the wildcard."""
        return tuple(a for a, v in self.values if v.is_wildcard)

    def is_all_constants(self) -> bool:
        """Whether every position is a constant."""
        return all(v.is_constant for _a, v in self.values)

    def is_all_wildcards(self) -> bool:
        """Whether every position is the wildcard."""
        return all(v.is_wildcard for _a, v in self.values)

    def matches(self, row: Mapping[str, Any]) -> bool:
        """Whether data row ``row`` matches this pattern tuple on all attributes."""
        return all(value.matches(row.get(attribute)) for attribute, value in self.values)

    def matches_constants(self, row: Mapping[str, Any]) -> bool:
        """Whether ``row`` matches on the constant positions only.

        Wildcard positions are ignored, so a row with NULL in a wildcard
        position still matches.  This is the applicability test used when
        deciding whether a CFD "applies to" a tuple.
        """
        return all(
            value.matches(row.get(attribute))
            for attribute, value in self.values
            if value.is_constant
        )

    def subsumes(self, other: "PatternTuple") -> bool:
        """Whether this pattern is at least as general as ``other``.

        A wildcard subsumes anything; a constant subsumes only the same
        constant.  Both tuples must range over the same attributes.
        """
        if set(self.attributes) != set(other.attributes):
            return False
        for attribute, value in self.values:
            other_value = other.value(attribute)
            if value.is_wildcard:
                continue
            if other_value.is_wildcard:
                return False
            if value.constant != other_value.constant:
                return False
        return True

    def encode(self) -> Dict[str, Any]:
        """Relational encoding (wildcards become the ``_`` token)."""
        return {attribute: value.encode() for attribute, value in self.values}

    def __str__(self) -> str:
        inner = ", ".join(f"{a}={v}" for a, v in self.values)
        return f"({inner})"
