"""Conditional functional dependencies (CFDs).

A CFD ``phi = (R: X -> Y, Tp)`` consists of

* a target relation name ``R``;
* an embedded functional dependency ``X -> Y``;
* a pattern tableau ``Tp``: one or more pattern tuples over ``X ∪ Y`` whose
  positions are constants or the unnamed variable ``_``.

Semantics (per the paper and its companion TODS 2008 article): for every
pattern tuple ``tp`` in ``Tp`` and all tuples ``t1, t2`` of an instance of
``R``, if ``t1[X] = t2[X]`` and both match ``tp[X]``, then ``t1[Y] = t2[Y]``
and both must match ``tp[Y]``.  Traditional FDs are the special case where
every position is ``_``; instance-level constraints such as
``[CC='44'] -> [CNT='UK']`` are the special case where every position is a
constant.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import CfdError, CfdSchemaError
from .pattern import PatternTuple, PatternValue


@dataclass(frozen=True)
class CFD:
    """A conditional functional dependency over one relation."""

    relation: str
    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]
    patterns: Tuple[PatternTuple, ...]
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.lhs and not any(
            pattern.value(attr).is_constant
            for pattern in self.patterns
            for attr in self.rhs
        ):
            # An empty LHS is only meaningful for constant RHS patterns
            # (assertions of the form "[] -> [A='x']").
            raise CfdError("a CFD needs a non-empty LHS or a constant RHS pattern")
        if not self.rhs:
            raise CfdError("a CFD needs at least one RHS attribute")
        if not self.patterns:
            raise CfdError("a CFD needs at least one pattern tuple")
        overlap = set(self.lhs) & set(self.rhs)
        if overlap:
            raise CfdError(f"attributes {sorted(overlap)} appear on both sides of the FD")
        expected = set(self.lhs) | set(self.rhs)
        for pattern in self.patterns:
            if set(pattern.attributes) != expected:
                raise CfdError(
                    f"pattern tuple {pattern} does not range over {sorted(expected)}"
                )

    # -- constructors --------------------------------------------------------------

    @classmethod
    def build(
        cls,
        relation: str,
        lhs: Mapping[str, Any],
        rhs: Mapping[str, Any],
        name: Optional[str] = None,
    ) -> "CFD":
        """Build a single-pattern CFD from ``{attr: constant or '_'}`` mappings.

        Example::

            CFD.build("customer", {"CC": "44"}, {"CNT": "UK"})
            CFD.build("customer", {"CNT": "UK", "ZIP": "_"}, {"STR": "_"})
        """
        lhs_attrs = tuple(lhs.keys())
        rhs_attrs = tuple(rhs.keys())
        combined: Dict[str, Any] = {}
        combined.update(lhs)
        combined.update(rhs)
        pattern = PatternTuple.of(combined)
        return cls(
            relation=relation,
            lhs=lhs_attrs,
            rhs=rhs_attrs,
            patterns=(pattern,),
            name=name,
        )

    @classmethod
    def from_fd(
        cls,
        relation: str,
        lhs: Sequence[str],
        rhs: Sequence[str],
        name: Optional[str] = None,
    ) -> "CFD":
        """Lift a traditional FD ``X -> Y`` into a CFD with an all-wildcard pattern."""
        mapping = {attr: PatternValue.wildcard() for attr in tuple(lhs) + tuple(rhs)}
        return cls(
            relation=relation,
            lhs=tuple(lhs),
            rhs=tuple(rhs),
            patterns=(PatternTuple.of(mapping),),
            name=name,
        )

    # -- structure -------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attributes mentioned by the CFD (LHS then RHS)."""
        return self.lhs + self.rhs

    @property
    def embedded_fd(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """The embedded functional dependency ``(X, Y)``."""
        return (self.lhs, self.rhs)

    @property
    def identifier(self) -> str:
        """A stable human-readable identifier (explicit name or derived)."""
        if self.name:
            return self.name
        lhs = ",".join(self.lhs)
        rhs = ",".join(self.rhs)
        return f"{self.relation}:[{lhs}]->[{rhs}]#{len(self.patterns)}"

    def lhs_pattern(self, pattern: PatternTuple) -> PatternTuple:
        """Project ``pattern`` onto the LHS attributes."""
        return pattern.restrict(self.lhs)

    def rhs_pattern(self, pattern: PatternTuple) -> PatternTuple:
        """Project ``pattern`` onto the RHS attributes."""
        return pattern.restrict(self.rhs)

    def is_constant_cfd(self) -> bool:
        """Whether every pattern position (LHS and RHS) is a constant."""
        return all(pattern.is_all_constants() for pattern in self.patterns)

    def is_variable_cfd(self) -> bool:
        """Whether every RHS pattern position is the wildcard (pure FD behaviour)."""
        return all(
            self.rhs_pattern(pattern).is_all_wildcards() for pattern in self.patterns
        )

    def is_plain_fd(self) -> bool:
        """Whether the CFD is a traditional FD (all positions wildcards)."""
        return all(pattern.is_all_wildcards() for pattern in self.patterns)

    # -- schema validation --------------------------------------------------------------

    def validate_against(self, attribute_names: Iterable[str]) -> None:
        """Raise :class:`CfdSchemaError` if the CFD uses unknown attributes."""
        known = set(attribute_names)
        unknown = [attr for attr in self.attributes if attr not in known]
        if unknown:
            raise CfdSchemaError(
                f"CFD {self.identifier} refers to unknown attributes {unknown}"
            )

    # -- normalisation -------------------------------------------------------------------

    def normalize(self) -> List["CFD"]:
        """Split into normal form: one pattern tuple and one RHS attribute each.

        Normal-form CFDs are what the detector, the repair algorithm and the
        static analyses operate on; ``normalize`` is idempotent.
        """
        normalized: List[CFD] = []
        counter = itertools.count(1)
        for pattern in self.patterns:
            for rhs_attr in self.rhs:
                attrs = self.lhs + (rhs_attr,)
                sub_pattern = pattern.restrict(attrs)
                suffix = next(counter)
                name = f"{self.name}#{suffix}" if self.name else None
                normalized.append(
                    CFD(
                        relation=self.relation,
                        lhs=self.lhs,
                        rhs=(rhs_attr,),
                        patterns=(sub_pattern,),
                        name=name,
                    )
                )
        return normalized

    def is_normalized(self) -> bool:
        """Whether the CFD is already in normal form."""
        return len(self.patterns) == 1 and len(self.rhs) == 1

    def with_patterns(self, patterns: Sequence[PatternTuple]) -> "CFD":
        """Return a copy of this CFD with a different pattern tableau."""
        return replace(self, patterns=tuple(patterns))

    # -- tuple-level semantics (single CFD, single/pair of tuples) -----------------------

    def applies_to(self, row: Mapping[str, Any], pattern: Optional[PatternTuple] = None) -> bool:
        """Whether the CFD's LHS pattern applies to ``row``.

        A CFD applies to a tuple when the tuple matches the constants of the
        LHS pattern and carries non-NULL values for all LHS attributes.
        """
        patterns = [pattern] if pattern is not None else list(self.patterns)
        for candidate in patterns:
            lhs_pattern = self.lhs_pattern(candidate) if self.lhs else None
            if self.lhs:
                if any(row.get(attr) is None for attr in self.lhs):
                    continue
                if not lhs_pattern.matches(row):
                    continue
            return True
        return False

    def single_tuple_violation(
        self, row: Mapping[str, Any], pattern: Optional[PatternTuple] = None
    ) -> bool:
        """Whether ``row`` violates the CFD all by itself.

        This happens exactly when the row matches the LHS pattern but fails a
        *constant* RHS pattern position.
        """
        patterns = [pattern] if pattern is not None else list(self.patterns)
        for candidate in patterns:
            if not self.applies_to(row, candidate):
                continue
            for rhs_attr in self.rhs:
                rhs_value = candidate.value(rhs_attr)
                if rhs_value.is_constant and not rhs_value.matches(row.get(rhs_attr)):
                    return True
        return False

    def pair_violation(
        self,
        row_a: Mapping[str, Any],
        row_b: Mapping[str, Any],
        pattern: Optional[PatternTuple] = None,
    ) -> bool:
        """Whether two rows jointly violate the CFD (multi-tuple violation).

        The rows must both match the LHS pattern, agree on all LHS attributes
        and disagree on some RHS attribute whose pattern position is ``_``.
        (Disagreement against a constant RHS is already a single-tuple
        violation of at least one of the rows.)
        """
        patterns = [pattern] if pattern is not None else list(self.patterns)
        for candidate in patterns:
            if not (self.applies_to(row_a, candidate) and self.applies_to(row_b, candidate)):
                continue
            if any(
                not _values_agree(row_a.get(attr), row_b.get(attr)) for attr in self.lhs
            ):
                continue
            for rhs_attr in self.rhs:
                rhs_value = candidate.value(rhs_attr)
                if rhs_value.is_wildcard and not _values_agree(
                    row_a.get(rhs_attr), row_b.get(rhs_attr)
                ):
                    return True
        return False

    # -- serialisation ----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a JSON-friendly dict (wildcards as ``'_'``)."""
        return {
            "relation": self.relation,
            "lhs": list(self.lhs),
            "rhs": list(self.rhs),
            "name": self.name,
            "patterns": [pattern.encode() for pattern in self.patterns],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CFD":
        """Deserialise a CFD produced by :meth:`to_dict`."""
        lhs = tuple(data["lhs"])
        rhs = tuple(data["rhs"])
        patterns = []
        for raw in data["patterns"]:
            ordered = {attr: raw[attr] for attr in list(lhs) + list(rhs)}
            patterns.append(PatternTuple.of(ordered))
        return cls(
            relation=data["relation"],
            lhs=lhs,
            rhs=rhs,
            patterns=tuple(patterns),
            name=data.get("name"),
        )

    def __str__(self) -> str:
        parts = []
        for pattern in self.patterns:
            lhs_part = ", ".join(
                f"{attr}={pattern.value(attr)}" for attr in self.lhs
            )
            rhs_part = ", ".join(
                f"{attr}={pattern.value(attr)}" for attr in self.rhs
            )
            parts.append(f"[{lhs_part}] -> [{rhs_part}]")
        rendered = " ; ".join(parts)
        return f"{self.relation}: {rendered}"


def _values_agree(left: Any, right: Any) -> bool:
    """Equality used for the FD part of the semantics (NULL agrees with nothing)."""
    if left is None or right is None:
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)) and not (
        isinstance(left, bool) or isinstance(right, bool)
    ):
        return float(left) == float(right)
    return left == right


def normalize_all(cfds: Iterable[CFD]) -> List[CFD]:
    """Normalise every CFD in ``cfds`` and concatenate the results."""
    normalized: List[CFD] = []
    for cfd in cfds:
        normalized.extend(cfd.normalize())
    return normalized
