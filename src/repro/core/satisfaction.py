"""Direct (non-SQL) satisfaction checking for CFDs.

These routines implement the CFD semantics by explicit iteration over the
relation.  They serve two purposes in the reproduction:

* an *oracle* against which the SQL-based detector is tested (property-based
  tests compare the two on random instances);
* the native-Python side of the SQL-vs-native ablation benchmark (SQL-ABL in
  DESIGN.md).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..engine.relation import Relation
from .cfd import CFD
from .pattern import PatternTuple


def matching_tids(relation: Relation, cfd: CFD, pattern: PatternTuple) -> List[int]:
    """Tuple ids whose rows the CFD (with ``pattern``) applies to."""
    return [tid for tid, row in relation.rows() if cfd.applies_to(row, pattern)]


def single_tuple_violations(
    relation: Relation, cfd: CFD
) -> List[Tuple[int, int]]:
    """Return ``(tid, pattern_index)`` pairs of single-tuple violations."""
    violations: List[Tuple[int, int]] = []
    for pattern_index, pattern in enumerate(cfd.patterns):
        for tid, row in relation.rows():
            if cfd.single_tuple_violation(row, pattern):
                violations.append((tid, pattern_index))
    return violations


def multi_tuple_violation_groups(
    relation: Relation, cfd: CFD
) -> List[Tuple[int, Tuple[Any, ...], List[int]]]:
    """Return multi-tuple violation groups.

    Each element is ``(pattern_index, lhs_values, tids)`` where ``tids`` are
    the tuples that share the LHS values, match the pattern, and disagree on
    some wildcard RHS attribute.  Only groups with at least two tuples and a
    genuine disagreement are reported.
    """
    groups: List[Tuple[int, Tuple[Any, ...], List[int]]] = []
    for pattern_index, pattern in enumerate(cfd.patterns):
        rhs_pattern = cfd.rhs_pattern(pattern)
        wildcard_rhs = [attr for attr, value in rhs_pattern.values if value.is_wildcard]
        if not wildcard_rhs or not cfd.lhs:
            continue
        by_lhs: Dict[Tuple[Any, ...], List[int]] = defaultdict(list)
        for tid, row in relation.rows():
            if not cfd.applies_to(row, pattern):
                continue
            if all(row.get(attr) is None for attr in wildcard_rhs):
                # A tuple with NULL in every wildcard RHS attribute can neither
                # support nor contradict the FD part of the CFD.
                continue
            key = tuple(row.get(attr) for attr in cfd.lhs)
            by_lhs[key].append(tid)
        for key, tids in by_lhs.items():
            if len(tids) < 2:
                continue
            disagreement = False
            for attr in wildcard_rhs:
                values = {
                    _normalise(relation.value(tid, attr))
                    for tid in tids
                    if relation.value(tid, attr) is not None
                }
                if len(values) > 1:
                    disagreement = True
                    break
            if disagreement:
                groups.append((pattern_index, key, sorted(tids)))
    return groups


def satisfies(relation: Relation, cfd: CFD) -> bool:
    """Whether ``relation`` satisfies ``cfd`` (no violations of either kind)."""
    if single_tuple_violations(relation, cfd):
        return False
    if multi_tuple_violation_groups(relation, cfd):
        return False
    return True


def satisfies_all(relation: Relation, cfds: Iterable[CFD]) -> bool:
    """Whether ``relation`` satisfies every CFD in ``cfds``."""
    return all(satisfies(relation, cfd) for cfd in cfds)


def violating_tids(relation: Relation, cfds: Iterable[CFD]) -> Set[int]:
    """The set of tuple ids involved in any violation of any CFD."""
    dirty: Set[int] = set()
    for cfd in cfds:
        for tid, _pattern_index in single_tuple_violations(relation, cfd):
            dirty.add(tid)
        for _pattern_index, _key, tids in multi_tuple_violation_groups(relation, cfd):
            dirty.update(tids)
    return dirty


def violation_counts(relation: Relation, cfds: Iterable[CFD]) -> Dict[int, int]:
    """Compute ``vio(t)`` for every tuple, per the paper's definition.

    ``vio(t)`` starts at 0, is incremented by 1 for each CFD for which ``t``
    is a single-tuple violation, and is incremented by the cardinality of the
    set of tuples that jointly (with ``t``) violate a CFD, for each such CFD.
    """
    vio: Dict[int, int] = {tid: 0 for tid, _row in relation.rows()}
    for cfd in cfds:
        single = single_tuple_violations(relation, cfd)
        single_tids = {tid for tid, _pattern in single}
        for tid in single_tids:
            vio[tid] += 1
        counted: Set[int] = set()
        for _pattern_index, _key, tids in multi_tuple_violation_groups(relation, cfd):
            for tid in tids:
                if tid in counted:
                    continue
                counted.add(tid)
                # the tuples that jointly violate with t (excluding t itself)
                vio[tid] += len(tids) - 1
    return vio


def _normalise(value: Any) -> Any:
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value
