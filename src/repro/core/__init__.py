"""The CFD formalism: pattern tuples, CFDs, tableaux and their semantics.

This package is the paper's primary contribution in library form: the data
structures the constraint engine stores, the textual syntax users specify
CFDs in, and the tuple-level semantics every other component builds on.
"""

from .cfd import CFD, normalize_all
from .parser import format_cfd, parse_cfd, parse_cfds
from .pattern import WILDCARD_TOKEN, PatternTuple, PatternValue
from .satisfaction import (
    multi_tuple_violation_groups,
    satisfies,
    satisfies_all,
    single_tuple_violations,
    violating_tids,
    violation_counts,
)
from .tableau import (
    PATTERN_ID_COLUMN,
    merge_cfds,
    relation_to_tableau,
    split_constant_variable,
    tableau_size,
    tableau_to_relation,
)

__all__ = [
    "CFD",
    "PatternTuple",
    "PatternValue",
    "WILDCARD_TOKEN",
    "PATTERN_ID_COLUMN",
    "normalize_all",
    "parse_cfd",
    "parse_cfds",
    "format_cfd",
    "merge_cfds",
    "tableau_to_relation",
    "relation_to_tableau",
    "tableau_size",
    "split_constant_variable",
    "satisfies",
    "satisfies_all",
    "single_tuple_violations",
    "multi_tuple_violation_groups",
    "violating_tids",
    "violation_counts",
]
