"""A synthetic order-processing relation (the data-warehousing motivation).

The paper's introduction motivates data quality tooling with data
warehousing projects; this dataset models the kind of order feed such a
project consolidates: orders referencing customers, countries, currencies
and tax codes, with dependencies spanning reference data (country ->
currency) and per-entity consistency (customer id -> customer name).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..core.cfd import CFD
from ..core.parser import parse_cfd
from ..engine.relation import Relation
from ..engine.types import AttributeDef, DataType, RelationSchema

_COUNTRIES: Dict[str, Tuple[str, str, str]] = {
    # country -> (currency, region, standard tax code)
    "UK": ("GBP", "EMEA", "VAT20"),
    "US": ("USD", "AMER", "SALES0"),
    "DE": ("EUR", "EMEA", "VAT19"),
    "FR": ("EUR", "EMEA", "VAT20"),
    "JP": ("JPY", "APAC", "CT10"),
}

_PRODUCTS = ["WIDGET", "GADGET", "SPROCKET", "GIZMO", "DOODAD"]
_CUSTOMER_NAMES = [
    "Acme Ltd", "Globex Corp", "Initech", "Umbrella plc", "Soylent GmbH",
    "Stark KK", "Wayne SARL", "Wonka SA", "Tyrell Inc", "Hooli LLC",
]


def orders_schema() -> RelationSchema:
    """Schema of the synthetic orders relation."""
    return RelationSchema(
        name="orders",
        attributes=[
            AttributeDef("ORDER_ID", DataType.STRING),
            AttributeDef("CUST_ID", DataType.STRING),
            AttributeDef("CUST_NAME", DataType.STRING),
            AttributeDef("COUNTRY", DataType.STRING),
            AttributeDef("CURRENCY", DataType.STRING),
            AttributeDef("REGION", DataType.STRING),
            AttributeDef("TAX_CODE", DataType.STRING),
            AttributeDef("PRODUCT", DataType.STRING),
            AttributeDef("QUANTITY", DataType.INTEGER),
        ],
    )


def orders_cfds() -> List[CFD]:
    """CFDs the clean order feed satisfies."""
    return [
        parse_cfd("orders: [COUNTRY=_] -> [CURRENCY=_]", name="ord1"),
        parse_cfd("orders: [COUNTRY=_] -> [REGION=_]", name="ord2"),
        parse_cfd("orders: [CUST_ID=_] -> [CUST_NAME=_]", name="ord3"),
        parse_cfd("orders: [CUST_ID=_] -> [COUNTRY=_]", name="ord4"),
        parse_cfd("orders: [COUNTRY='UK'] -> [CURRENCY='GBP']", name="ord5"),
        parse_cfd("orders: [COUNTRY='US'] -> [CURRENCY='USD']", name="ord6"),
        parse_cfd("orders: [COUNTRY='UK', TAX_CODE=_] -> [REGION='EMEA']", name="ord7"),
    ]


def generate_orders(size: int, seed: int = 0, customers: int = 0) -> Relation:
    """Generate ``size`` clean order rows over a pool of customers."""
    rng = random.Random(seed)
    relation = Relation(orders_schema())
    customer_count = customers or max(size // 5, 4)
    countries = list(_COUNTRIES)
    customer_pool = []
    for index in range(customer_count):
        country = countries[index % len(countries)]
        currency, region, tax_code = _COUNTRIES[country]
        customer_pool.append(
            {
                "CUST_ID": f"C{1000 + index}",
                "CUST_NAME": _CUSTOMER_NAMES[index % len(_CUSTOMER_NAMES)],
                "COUNTRY": country,
                "CURRENCY": currency,
                "REGION": region,
                "TAX_CODE": tax_code,
            }
        )
    for order_index in range(size):
        customer = customer_pool[rng.randrange(len(customer_pool))]
        row = dict(customer)
        row.update(
            {
                "ORDER_ID": f"O{100000 + order_index}",
                "PRODUCT": _PRODUCTS[rng.randrange(len(_PRODUCTS))],
                "QUANTITY": rng.randrange(1, 50),
            }
        )
        relation.insert(row)
    return relation
