"""The paper's running example: the ``customer`` relation and its CFDs.

``customer(NAME, CNT, CITY, ZIP, STR, CC, AC)`` stores, for each customer,
a name, an address (country, city, postal code, street) and the country and
area codes of their phone number.  The generator below produces clean data
in which the paper's constraints hold by construction:

* ``phi1``: ``[CNT, ZIP] -> [CITY]`` — country + postal code determine the city;
* ``phi2``: ``[CNT='UK', ZIP=_] -> [STR=_]`` — in the UK, the postal code
  determines the street;
* ``phi3``: ``[CC] -> [CNT]`` — the country code determines the country;
* ``phi4``: ``[CC='44'] -> [CNT='UK']`` and ``[CC='01'] -> [CNT='US']`` —
  instance-level bindings of country codes to country names.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cfd import CFD
from ..core.parser import parse_cfd
from ..engine.relation import Relation
from ..engine.types import AttributeDef, DataType, RelationSchema

#: Geography used by the generator: country -> (country code, list of cities).
_GEOGRAPHY: Dict[str, Tuple[str, List[Tuple[str, str]]]] = {
    "UK": ("44", [("EDI", "131"), ("LDN", "020"), ("GLA", "141"), ("MAN", "161")]),
    "US": ("01", [("NYC", "212"), ("CHI", "312"), ("SFO", "415"), ("BOS", "617")]),
    "NL": ("31", [("AMS", "020"), ("RTM", "010"), ("UTR", "030")]),
    "FR": ("33", [("PAR", "01"), ("LYO", "04"), ("MRS", "04")]),
}

_STREET_WORDS = [
    "Mayfield", "Crichton", "Mountain", "High", "Station", "Church", "Park",
    "Victoria", "Queen", "King", "Mill", "North", "South", "West", "East",
]
_STREET_SUFFIXES = ["Rd", "St", "Ave", "Ln", "Way", "Pl"]
_FIRST_NAMES = [
    "Mike", "Rick", "Joe", "Mary", "Anna", "Bob", "Carol", "Dave", "Ella",
    "Frank", "Grace", "Henry", "Iris", "Jack", "Kate", "Liam", "Nina",
]
_LAST_NAMES = [
    "Smith", "Jones", "Brown", "Wilson", "Taylor", "Clark", "Lewis", "Young",
    "Walker", "Hall", "Allen", "King", "Wright", "Scott", "Green", "Baker",
]


def customer_schema() -> RelationSchema:
    """Schema of the paper's ``customer`` relation."""
    return RelationSchema(
        name="customer",
        attributes=[
            AttributeDef("NAME", DataType.STRING),
            AttributeDef("CNT", DataType.STRING),
            AttributeDef("CITY", DataType.STRING),
            AttributeDef("ZIP", DataType.STRING),
            AttributeDef("STR", DataType.STRING),
            AttributeDef("CC", DataType.STRING),
            AttributeDef("AC", DataType.STRING),
        ],
    )


def paper_cfds() -> List[CFD]:
    """The CFDs used throughout the paper's examples (phi1 … phi4)."""
    return [
        parse_cfd("customer: [CNT=_, ZIP=_] -> [CITY=_]", name="phi1"),
        parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]", name="phi2"),
        parse_cfd("customer: [CC=_] -> [CNT=_]", name="phi3"),
        parse_cfd(
            "customer: [CC='44'] -> [CNT='UK'] ; [CC='01'] -> [CNT='US']",
            name="phi4",
        ),
    ]


def paper_example_rows() -> List[Dict[str, str]]:
    """A tiny hand-written instance mirroring the flavour of the paper's Figure 3.

    It contains one single-tuple violation (a country code 44 paired with a
    non-UK country) and one multi-tuple violation (two UK customers sharing a
    postal code but reporting different streets).
    """
    return [
        {"NAME": "Mike", "CNT": "UK", "CITY": "EDI", "ZIP": "EH4 1DT",
         "STR": "Mayfield Rd", "CC": "44", "AC": "131"},
        {"NAME": "Rick", "CNT": "UK", "CITY": "EDI", "ZIP": "EH4 1DT",
         "STR": "Crichton St", "CC": "44", "AC": "131"},
        {"NAME": "Joe", "CNT": "US", "CITY": "NYC", "ZIP": "01202",
         "STR": "Mountain Ave", "CC": "01", "AC": "212"},
        {"NAME": "Mary", "CNT": "US", "CITY": "NYC", "ZIP": "01202",
         "STR": "Mountain Ave", "CC": "01", "AC": "212"},
        {"NAME": "Anna", "CNT": "NL", "CITY": "AMS", "ZIP": "1012",
         "STR": "Station Way", "CC": "44", "AC": "020"},
        {"NAME": "Bob", "CNT": "UK", "CITY": "GLA", "ZIP": "G1 1AA",
         "STR": "High St", "CC": "44", "AC": "141"},
    ]


def paper_example_relation() -> Relation:
    """The hand-written example instance as a :class:`Relation`."""
    return Relation.from_rows(customer_schema(), paper_example_rows())


def generate_customers(size: int, seed: int = 0) -> Relation:
    """Generate ``size`` clean customer tuples (the paper's CFDs hold).

    Determinism: the same ``(size, seed)`` always produces the same relation.
    Postal codes are generated per (country, city) so that ``[CNT, ZIP] ->
    [CITY]`` and, within the UK, ``ZIP -> STR`` hold by construction; country
    codes are taken from the geography table so ``CC -> CNT`` holds.
    """
    rng = random.Random(seed)
    relation = Relation(customer_schema())
    countries = list(_GEOGRAPHY)
    # Pre-build a pool of (country, city, area code, zip, street) addresses so
    # that repeated zips agree on city and street.
    address_pool: List[Tuple[str, str, str, str, str]] = []
    pool_size = max(size // 3, 8)
    for index in range(pool_size):
        country = countries[index % len(countries)]
        code, cities = _GEOGRAPHY[country]
        city, area_code = cities[rng.randrange(len(cities))]
        zip_code = f"{city[:2]}{index:04d}"
        street = (
            f"{_STREET_WORDS[rng.randrange(len(_STREET_WORDS))]} "
            f"{_STREET_SUFFIXES[rng.randrange(len(_STREET_SUFFIXES))]}"
        )
        address_pool.append((country, city, area_code, zip_code, street))
    for _ in range(size):
        country, city, area_code, zip_code, street = address_pool[
            rng.randrange(len(address_pool))
        ]
        code, _cities = _GEOGRAPHY[country]
        name = (
            f"{_FIRST_NAMES[rng.randrange(len(_FIRST_NAMES))]} "
            f"{_LAST_NAMES[rng.randrange(len(_LAST_NAMES))]}"
        )
        relation.insert(
            {
                "NAME": name,
                "CNT": country,
                "CITY": city,
                "ZIP": zip_code,
                "STR": street,
                "CC": code,
                "AC": area_code,
            }
        )
    return relation
