"""Controlled error injection with ground truth.

The paper's data is proprietary customer data; this reproduction instead
generates clean data and *injects* errors at a controlled rate, recording
exactly which cells were corrupted and what their true values were.  That
ground truth is what lets the REP-QUALITY benchmark measure repair precision
and recall, the way the companion repair paper evaluates its algorithms.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine.relation import Relation

Cell = Tuple[int, str]

#: Error kinds the injector supports.
TYPO = "typo"
SWAP = "swap"
NULL = "null"
ALL_KINDS = (TYPO, SWAP, NULL)


@dataclass
class NoiseResult:
    """A dirty copy of a relation plus the ground truth of every corruption."""

    clean: Relation
    dirty: Relation
    corrupted: Dict[Cell, Tuple[Any, Any]] = field(default_factory=dict)

    @property
    def corrupted_cells(self) -> List[Cell]:
        """The corrupted ``(tid, attribute)`` cells."""
        return sorted(self.corrupted)

    @property
    def corruption_rate(self) -> float:
        """Fraction of cells corrupted."""
        total_cells = len(self.clean) * len(self.clean.attribute_names)
        if total_cells == 0:
            return 0.0
        return len(self.corrupted) / total_cells

    def corrupted_tids(self) -> List[int]:
        """Tuples with at least one corrupted cell."""
        return sorted({tid for tid, _attribute in self.corrupted})


def _typo(value: str, rng: random.Random) -> str:
    """Introduce a single-character edit into ``value``."""
    if not value:
        return value + rng.choice(string.ascii_uppercase)
    position = rng.randrange(len(value))
    operation = rng.choice(("substitute", "delete", "insert", "transpose"))
    characters = string.ascii_uppercase + string.digits
    if operation == "substitute":
        replacement = rng.choice(characters)
        while replacement == value[position]:
            replacement = rng.choice(characters)
        return value[:position] + replacement + value[position + 1 :]
    if operation == "delete" and len(value) > 1:
        return value[:position] + value[position + 1 :]
    if operation == "transpose" and len(value) > 1:
        position = min(position, len(value) - 2)
        return (
            value[:position]
            + value[position + 1]
            + value[position]
            + value[position + 2 :]
        )
    return value[:position] + rng.choice(characters) + value[position:]


def inject_noise(
    relation: Relation,
    rate: float,
    seed: int = 0,
    attributes: Optional[Sequence[str]] = None,
    kinds: Sequence[str] = (TYPO, SWAP),
) -> NoiseResult:
    """Corrupt a fraction ``rate`` of the cells of ``relation``.

    ``rate`` is interpreted per cell over the chosen ``attributes`` (all
    attributes by default).  ``kinds`` selects the error types:

    * ``"typo"`` — a one-character edit of the string value;
    * ``"swap"`` — replace the value with a different value drawn from the
      same column (a plausible but wrong value, the hardest case to catch);
    * ``"null"`` — blank the cell.

    The original relation is not modified; tuple ids are preserved in the
    dirty copy so ground truth can be joined back cell by cell.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("noise rate must be between 0 and 1")
    unknown = set(kinds) - set(ALL_KINDS)
    if unknown:
        raise ValueError(f"unknown noise kinds: {sorted(unknown)}")
    rng = random.Random(seed)
    target_attributes = list(attributes or relation.attribute_names)
    dirty = relation.copy()
    corrupted: Dict[Cell, Tuple[Any, Any]] = {}

    # Column pools for the swap kind.
    pools: Dict[str, List[Any]] = {
        attribute: relation.distinct_values(attribute) for attribute in target_attributes
    }

    for tid, row in relation.rows():
        for attribute in target_attributes:
            if rng.random() >= rate:
                continue
            old_value = row.get(attribute)
            kind = rng.choice(tuple(kinds))
            new_value: Any
            if kind == NULL:
                new_value = None
            elif kind == SWAP:
                candidates = [value for value in pools[attribute] if value != old_value]
                if not candidates:
                    continue
                new_value = rng.choice(candidates)
            else:  # typo
                if old_value is None:
                    continue
                new_value = _typo(str(old_value), rng)
            if new_value == old_value:
                continue
            dirty.update(tid, {attribute: new_value})
            corrupted[(tid, attribute)] = (old_value, new_value)
    return NoiseResult(clean=relation, dirty=dirty, corrupted=corrupted)
