"""Synthetic workloads with known CFDs and seeded error injection."""

from .customer import (
    customer_schema,
    generate_customers,
    paper_cfds,
    paper_example_relation,
    paper_example_rows,
)
from .hospital import generate_hospital, hospital_cfds, hospital_schema
from .noise import ALL_KINDS, NULL, SWAP, TYPO, NoiseResult, inject_noise
from .orders import generate_orders, orders_cfds, orders_schema

__all__ = [
    "customer_schema",
    "generate_customers",
    "paper_cfds",
    "paper_example_relation",
    "paper_example_rows",
    "hospital_schema",
    "generate_hospital",
    "hospital_cfds",
    "orders_schema",
    "generate_orders",
    "orders_cfds",
    "NoiseResult",
    "inject_noise",
    "TYPO",
    "SWAP",
    "NULL",
    "ALL_KINDS",
]
