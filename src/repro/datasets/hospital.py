"""A hospital-quality dataset in the style of the HOSP benchmark data.

Public hospital quality data (provider id, hospital name, address, phone,
measure codes) is the classic public workload for CFD-based cleaning papers.
This generator produces a synthetic equivalent with the same dependency
structure so the examples and benchmarks have a second, wider relation to
exercise (more attributes, more CFDs, mixed constant/variable patterns).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..core.cfd import CFD
from ..core.parser import parse_cfd
from ..engine.relation import Relation
from ..engine.types import AttributeDef, DataType, RelationSchema

_STATES: Dict[str, List[Tuple[str, str]]] = {
    # state -> [(city, zip prefix)]
    "AL": [("BIRMINGHAM", "352"), ("DOTHAN", "363"), ("MOBILE", "366")],
    "AK": [("ANCHORAGE", "995"), ("JUNEAU", "998")],
    "AZ": [("PHOENIX", "850"), ("TUCSON", "857")],
    "CA": [("LOS ANGELES", "900"), ("SAN DIEGO", "921"), ("FRESNO", "937")],
}

_MEASURES: List[Tuple[str, str, str]] = [
    ("AMI-1", "Aspirin at arrival", "Heart Attack"),
    ("AMI-2", "Aspirin at discharge", "Heart Attack"),
    ("HF-1", "Discharge instructions", "Heart Failure"),
    ("HF-2", "LVS function evaluation", "Heart Failure"),
    ("PN-2", "Pneumococcal vaccination", "Pneumonia"),
    ("PN-3B", "Blood culture before antibiotic", "Pneumonia"),
    ("SCIP-1", "Prophylactic antibiotic within one hour", "Surgical Care"),
]

_HOSPITAL_WORDS = ["GENERAL", "MEMORIAL", "REGIONAL", "COMMUNITY", "BAPTIST", "MERCY"]


def hospital_schema() -> RelationSchema:
    """Schema of the synthetic hospital relation."""
    return RelationSchema(
        name="hospital",
        attributes=[
            AttributeDef("PROVIDER", DataType.STRING),
            AttributeDef("HOSPITAL", DataType.STRING),
            AttributeDef("CITY", DataType.STRING),
            AttributeDef("STATE", DataType.STRING),
            AttributeDef("ZIP", DataType.STRING),
            AttributeDef("PHONE", DataType.STRING),
            AttributeDef("CONDITION", DataType.STRING),
            AttributeDef("MEASURE_CODE", DataType.STRING),
            AttributeDef("MEASURE_NAME", DataType.STRING),
        ],
    )


def hospital_cfds() -> List[CFD]:
    """CFDs that hold on the clean synthetic hospital data."""
    return [
        parse_cfd("hospital: [ZIP=_] -> [STATE=_]", name="hosp1"),
        parse_cfd("hospital: [ZIP=_] -> [CITY=_]", name="hosp2"),
        parse_cfd("hospital: [PROVIDER=_] -> [HOSPITAL=_]", name="hosp3"),
        parse_cfd("hospital: [PROVIDER=_] -> [PHONE=_]", name="hosp4"),
        parse_cfd("hospital: [MEASURE_CODE=_] -> [MEASURE_NAME=_]", name="hosp5"),
        parse_cfd("hospital: [MEASURE_CODE=_] -> [CONDITION=_]", name="hosp6"),
        parse_cfd(
            "hospital: [MEASURE_CODE='AMI-1'] -> [CONDITION='Heart Attack']",
            name="hosp7",
        ),
        parse_cfd(
            "hospital: [STATE='AK', CITY=_] -> [ZIP=_]",
            name="hosp8",
        ),
    ]


def generate_hospital(size: int, seed: int = 0, providers: int = 0) -> Relation:
    """Generate ``size`` clean hospital measure records.

    Each record pairs one provider (hospital) with one quality measure; a
    provider appears in many records, so the provider-level FDs have plenty
    of witnesses.  ``providers`` defaults to roughly ``size / 6``.
    """
    rng = random.Random(seed)
    relation = Relation(hospital_schema())
    provider_count = providers or max(size // 6, 4)
    states = list(_STATES)
    provider_pool = []
    for index in range(provider_count):
        state = states[index % len(states)]
        city, zip_prefix = _STATES[state][rng.randrange(len(_STATES[state]))]
        # One canonical ZIP per (state, city) so the city-level CFDs hold on
        # clean data by construction.
        zip_code = f"{zip_prefix}01"
        provider_pool.append(
            {
                "PROVIDER": f"P{10000 + index}",
                "HOSPITAL": f"{city.split()[0]} {_HOSPITAL_WORDS[rng.randrange(len(_HOSPITAL_WORDS))]} HOSPITAL",
                "CITY": city,
                "STATE": state,
                "ZIP": zip_code,
                "PHONE": f"{rng.randrange(200, 999)}{rng.randrange(1000000, 9999999)}",
            }
        )
    for _ in range(size):
        provider = provider_pool[rng.randrange(len(provider_pool))]
        code, measure_name, condition = _MEASURES[rng.randrange(len(_MEASURES))]
        row = dict(provider)
        row.update(
            {
                "CONDITION": condition,
                "MEASURE_CODE": code,
                "MEASURE_NAME": measure_name,
            }
        )
        relation.insert(row)
    return relation
