"""Violation records and the detection report.

The error detector produces a :class:`ViolationReport`: the list of detected
violations (single-tuple and multi-tuple), the per-tuple violation count
``vio(t)`` defined in the paper, and bookkeeping that the auditor, the data
explorer and the cleanser consume (which CFDs are violated by which tuple,
which attributes are implicated, and so on).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

SINGLE = "single"
MULTI = "multi"


@dataclass(frozen=True)
class Violation:
    """One detected violation of one (normalised) CFD.

    ``kind`` is ``"single"`` for a tuple that conflicts with a constant RHS
    pattern all by itself, and ``"multi"`` for a set of tuples that jointly
    conflict on a wildcard RHS attribute.
    """

    cfd_id: str
    kind: str
    tids: Tuple[int, ...]
    rhs_attribute: str
    pattern_index: int = 0
    lhs_values: Tuple[Any, ...] = ()
    lhs_attributes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (SINGLE, MULTI):
            raise ValueError(f"unknown violation kind {self.kind!r}")
        if self.kind == SINGLE and len(self.tids) != 1:
            raise ValueError("a single-tuple violation involves exactly one tuple")
        if self.kind == MULTI and len(self.tids) < 2:
            raise ValueError("a multi-tuple violation involves at least two tuples")

    @property
    def is_single(self) -> bool:
        """Whether this is a single-tuple violation."""
        return self.kind == SINGLE

    @property
    def is_multi(self) -> bool:
        """Whether this is a multi-tuple violation."""
        return self.kind == MULTI

    def involves(self, tid: int) -> bool:
        """Whether tuple ``tid`` takes part in this violation."""
        return tid in self.tids

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "cfd": self.cfd_id,
            "kind": self.kind,
            "tids": list(self.tids),
            "rhs_attribute": self.rhs_attribute,
            "pattern_index": self.pattern_index,
            "lhs_attributes": list(self.lhs_attributes),
            "lhs_values": list(self.lhs_values),
        }


@dataclass
class ViolationReport:
    """The complete result of a detection run over one relation."""

    relation: str
    violations: List[Violation] = field(default_factory=list)
    tuple_count: int = 0
    cfd_ids: Tuple[str, ...] = ()

    # -- derived views ------------------------------------------------------------

    def vio(self) -> Dict[int, int]:
        """Per-tuple violation counts ``vio(t)`` as defined in the paper.

        ``vio(t)`` is incremented by 1 for each CFD for which ``t`` is a
        single-tuple violation, and by the cardinality of the set of tuples
        that jointly (with ``t``) violate a CFD, for each such CFD.
        """
        counts: Dict[int, int] = defaultdict(int)
        for violation in self.violations:
            if violation.is_single:
                counts[violation.tids[0]] += 1
            else:
                size = len(violation.tids)
                for tid in violation.tids:
                    counts[tid] += size - 1
        return dict(counts)

    def vio_of(self, tid: int) -> int:
        """``vio(t)`` for a single tuple (0 if the tuple is clean)."""
        return self.vio().get(tid, 0)

    def dirty_tids(self) -> Set[int]:
        """Tuple ids involved in at least one violation."""
        dirty: Set[int] = set()
        for violation in self.violations:
            dirty.update(violation.tids)
        return dirty

    def clean_tid_count(self) -> int:
        """Number of tuples not involved in any violation."""
        return self.tuple_count - len(self.dirty_tids())

    def single_violations(self) -> List[Violation]:
        """All single-tuple violations."""
        return [v for v in self.violations if v.is_single]

    def multi_violations(self) -> List[Violation]:
        """All multi-tuple violations."""
        return [v for v in self.violations if v.is_multi]

    def violations_for(self, tid: int) -> List[Violation]:
        """Violations in which tuple ``tid`` participates."""
        return [v for v in self.violations if v.involves(tid)]

    def cfds_violated_by(self, tid: int) -> List[str]:
        """Identifiers of the CFDs violated by tuple ``tid`` (deduplicated)."""
        seen: List[str] = []
        for violation in self.violations_for(tid):
            if violation.cfd_id not in seen:
                seen.append(violation.cfd_id)
        return seen

    def attributes_implicated(self, tid: int) -> Set[str]:
        """Attributes implicated in violations of tuple ``tid``.

        Both the RHS attribute and the LHS attributes of each violated CFD
        are implicated — the repair algorithm may change either side.
        """
        attrs: Set[str] = set()
        for violation in self.violations_for(tid):
            attrs.add(violation.rhs_attribute)
            attrs.update(violation.lhs_attributes)
        return attrs

    def per_cfd_counts(self) -> Dict[str, Dict[str, int]]:
        """For each CFD id: number of single / multi violations and tuples touched."""
        summary: Dict[str, Dict[str, int]] = {}
        for cfd_id in self.cfd_ids:
            summary[cfd_id] = {"single": 0, "multi": 0, "tuples": 0}
        touched: Dict[str, Set[int]] = defaultdict(set)
        for violation in self.violations:
            entry = summary.setdefault(
                violation.cfd_id, {"single": 0, "multi": 0, "tuples": 0}
            )
            entry[violation.kind] += 1
            touched[violation.cfd_id].update(violation.tids)
        for cfd_id, tids in touched.items():
            summary[cfd_id]["tuples"] = len(tids)
        return summary

    def is_clean(self) -> bool:
        """Whether no violation was detected."""
        return not self.violations

    def total_violations(self) -> int:
        """Total number of violation records."""
        return len(self.violations)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation of the full report."""
        return {
            "relation": self.relation,
            "tuple_count": self.tuple_count,
            "cfds": list(self.cfd_ids),
            "violations": [violation.to_dict() for violation in self.violations],
            "vio": {str(tid): count for tid, count in sorted(self.vio().items())},
        }

    def merged_with(self, other: "ViolationReport") -> "ViolationReport":
        """Combine two reports over the same relation (deduplicating records)."""
        seen = set()
        merged: List[Violation] = []
        for violation in list(self.violations) + list(other.violations):
            key = (
                violation.cfd_id,
                violation.kind,
                violation.tids,
                violation.rhs_attribute,
                violation.pattern_index,
            )
            if key in seen:
                continue
            seen.add(key)
            merged.append(violation)
        cfd_ids = tuple(dict.fromkeys(self.cfd_ids + other.cfd_ids))
        return ViolationReport(
            relation=self.relation,
            violations=merged,
            tuple_count=max(self.tuple_count, other.tuple_count),
            cfd_ids=cfd_ids,
        )
