"""Incremental detection of CFD violations under data updates.

The paper's data monitor "responds to updates on the data by invoking an
incremental detection module … using the incremental SQL-based detection
techniques".  The key idea of those techniques is locality: an insertion,
deletion or value modification can only create or remove violations that
involve the modified tuple, i.e. violations whose LHS group contains the
tuple's (old or new) LHS values.

The :class:`IncrementalDetector` supports two evaluation modes for the
affected-group re-checks:

* ``native`` (the default) — per-CFD group state is maintained in Python
  dictionaries; each update touches only the affected groups.  This is the
  original pure-Python path and the correctness oracle.
* ``sql_delta`` — the re-checks are compiled to *delta variants* of the
  paper's ``Q_C``/``Q_V`` detection queries and pushed down to a storage
  backend holding a resident copy of the relation: the affected tuple ids
  and LHS-value groups travel as ``?`` parameters, so the DBMS re-evaluates
  exactly the affected sub-instance (the FDB-style restriction that buys
  the incremental win).  The per-CFD pattern tableaux are materialised in
  the backend once, at construction.  The mode is *fully backend-resident*:
  the delta ``Q_C`` carries each violating tuple's LHS values, group
  members are enumerated by the covering members plan
  (:meth:`~repro.detection.sqlgen.DetectionSqlGenerator.covering_members_query`
  — index-driven, no tableau join, shared with the batch detector),
  and :meth:`IncrementalDetector.report` assembles the violation report
  from backend rows alone — zero reads against the in-memory working
  store.  The restriction shape and the chunking of large re-checks are
  dialect-branched (row-value semi-joins and a per-statement parameter
  budget on SQLite, portable OR chains on the embedded engine); see
  :mod:`repro.detection.sqlgen`.

Updates flow through a first-class :class:`~repro.backends.delta.DeltaBatch`:
single operations ship as singleton batches, and the :meth:`batch` context
manager groups a whole update batch into one coalesced changeset applied to
the mirror backend in a single transaction.

The detector also counts how many tuple examinations each native operation
performed (``tuples_examined``) and how many delta queries the ``sql_delta``
mode issued (``delta_queries``); the DET-INCR and DELTA-BATCH benchmarks
read these to show the incremental-vs-batch trade-offs.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..backends.base import StorageBackend
from ..backends.delta import DeltaBatch
from ..backends.memory import MemoryBackend
from ..core.cfd import CFD
from ..core.tableau import tableau_to_relation
from ..engine.database import Database
from ..engine.relation import Relation
from ..errors import DetectionError
from ..obs.instrument import InstrumentedBackend
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .detector import _sub_cfd, decode_backend_value
from .sqlgen import LHS_COLUMN_PREFIX, DetectionSqlGenerator, SqlQuery
from .violations import MULTI, SINGLE, Violation, ViolationReport

#: evaluation mode maintaining group state in Python (the original path)
NATIVE_MODE = "native"
#: evaluation mode pushing affected-group re-checks down as delta SQL
SQL_DELTA_MODE = "sql_delta"
#: every evaluation mode the detector accepts
INCREMENTAL_MODES = (NATIVE_MODE, SQL_DELTA_MODE)

#: process-wide sequence making each detector's resident tableau names
#: unique, so two detectors over the same relation and backend (e.g. a
#: retired monitor still held by user code and its replacement) never
#: clobber or drop each other's tableaux
_DETECTOR_SEQUENCE = count()


@dataclass
class _WorkUnit:
    """Detection state for one (parent CFD, RHS attribute) pair."""

    parent: CFD
    cfd: CFD  # single-RHS restriction of the parent
    #: tid -> pattern index of the first constant-RHS pattern it violates
    singles: Dict[int, int] = field(default_factory=dict)
    #: sql_delta mode: tid -> its LHS values (decoded engine values), so
    #: report assembly never reads the working store
    single_lhs: Dict[int, Tuple[Any, ...]] = field(default_factory=dict)
    #: native mode: pattern index -> lhs values -> {tid: rhs value}
    groups: Dict[int, Dict[Tuple[Any, ...], Dict[int, Any]]] = field(
        default_factory=lambda: defaultdict(dict)
    )
    #: sql_delta mode: lhs values -> (pattern index, member tids)
    multi: Dict[Tuple[Any, ...], Tuple[int, Tuple[int, ...]]] = field(
        default_factory=dict
    )
    #: sql_delta mode: name of the materialised tableau in the query backend
    tableau_name: Optional[str] = None

    @property
    def rhs_attribute(self) -> str:
        return self.cfd.rhs[0]

    @property
    def wildcard_rhs(self) -> bool:
        """Whether any pattern has a wildcard RHS (i.e. ``Q_V`` can match).

        Constant-RHS-only units never produce multi-tuple violations, so
        the per-batch delta ``Q_V`` round trip is skipped for them.
        """
        return any(
            self.cfd.rhs_pattern(pattern).value(self.rhs_attribute).is_wildcard
            for pattern in self.cfd.patterns
        )


@dataclass
class _Touched:
    """One tuple a pending batch touched: its tid and before/after images."""

    tid: int
    old_row: Optional[Dict[str, Any]]
    new_row: Optional[Dict[str, Any]]


class IncrementalDetector:
    """Maintains CFD violation state across inserts, deletes and updates."""

    def __init__(
        self,
        database: Database,
        relation_name: str,
        cfds: Sequence[CFD],
        mirror: Optional[StorageBackend] = None,
        mode: str = NATIVE_MODE,
        delta_plan: str = "auto",
        detect_plan: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if mode not in INCREMENTAL_MODES:
            raise DetectionError(
                f"unknown incremental mode {mode!r}; "
                f"expected one of {', '.join(INCREMENTAL_MODES)}"
            )
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.database = database
        self.relation_name = relation_name
        self.relation: Relation = database.relation(relation_name)
        #: schema snapshot used for value decode, so report assembly never
        #: has to touch the (possibly replaced) working-store relation
        self._schema = self.relation.schema
        self.cfds: List[CFD] = list(cfds)
        self.mode = mode
        #: storage backend every applied update batch is shipped to as one
        #: :class:`DeltaBatch`, so a backend-resident copy stays current
        #: without full re-syncs.  None when the working store *is* the
        #: backend (the shared-memory configuration).
        self.mirror = mirror
        #: set when a mirror delta failed after the working store mutated:
        #: the backend copy has silently diverged and needs a full re-sync
        #: (the Semandaq facade checks this flag before each detect)
        self.mirror_desynced = False
        #: number of (tuple, pattern) examinations performed by native state
        #: maintenance so far
        self.tuples_examined = 0
        #: number of delta re-check queries the sql_delta mode has issued
        self.delta_queries = 0
        #: number of DeltaBatch round trips shipped to the mirror
        self.batches_shipped = 0
        self._units: List[_WorkUnit] = []
        for cfd in self.cfds:
            if cfd.relation != relation_name:
                raise DetectionError(
                    f"CFD {cfd.identifier} targets {cfd.relation!r}, not {relation_name!r}"
                )
            cfd.validate_against(self.relation.attribute_names)
            for rhs_attribute in cfd.rhs:
                self._units.append(_WorkUnit(parent=cfd, cfd=_sub_cfd(cfd, rhs_attribute)))
        #: sql_delta mode: row count of the backend-resident copy, kept
        #: current by the update API so report assembly needs no round trip
        #: (and keeps working after the owner closed the backend)
        self._resident_rows = 0
        #: open explicit batch (None outside a ``batch()`` block)
        self._pending: Optional[DeltaBatch] = None
        self._pending_touched: List[_Touched] = []
        #: set when a sql_delta detector fell back to native mode and its
        #: Python state has not been rebuilt yet (rebuilt lazily on first
        #: use, so retiring a monitor never pays a whole-relation scan)
        self._native_stale = False
        if self.mode == SQL_DELTA_MODE:
            # In sql_delta mode the re-check queries run against this
            # backend; it must already hold a current copy of the relation.
            # With no mirror, a private shadow catalog shares the *live*
            # relation object — queries see every working-store mutation,
            # but the resident tableaux never pollute the user's database.
            if mirror is not None:
                self._query_backend: Optional[StorageBackend] = mirror
            else:
                shadow = Database()
                shadow.add_relation(self.relation)
                self._query_backend = MemoryBackend(shadow)
            if self.telemetry.active and not isinstance(
                self._query_backend, InstrumentedBackend
            ):
                self._query_backend = InstrumentedBackend(
                    self._query_backend, self.telemetry
                )
            self._generator: Optional[DetectionSqlGenerator] = DetectionSqlGenerator(
                self.relation.schema,
                dialect=self._query_backend.dialect,
                delta_plan=delta_plan,
                detect_plan=detect_plan,
                telemetry=self.telemetry,
            )
            self.telemetry.inc(
                f"detect.plan_variant.{self._generator.detect_plan}"
            )
            self._materialise_tableaux()
            self._initialise_sql()
        else:
            self._query_backend = None
            self._generator = None
            self._initialise()

    # -- native state construction ---------------------------------------------------

    def _initialise(self) -> None:
        for tid, row in self.relation.rows():
            self._add_tuple(tid, row)

    def _rebuild_native(self) -> None:
        """Recompute the native Python state from the working store."""
        for unit in self._units:
            unit.singles.clear()
            unit.single_lhs.clear()
            unit.groups = defaultdict(dict)
            unit.multi.clear()
        self._initialise()

    def _add_tuple(self, tid: int, row: Mapping[str, Any]) -> None:
        for unit in self._units:
            self._add_to_unit(unit, tid, row)

    def _remove_tuple(self, tid: int, row: Mapping[str, Any]) -> None:
        for unit in self._units:
            self._remove_from_unit(unit, tid, row)

    def _add_to_unit(self, unit: _WorkUnit, tid: int, row: Mapping[str, Any]) -> None:
        cfd = unit.cfd
        rhs_attribute = unit.rhs_attribute
        for pattern_index, pattern in enumerate(cfd.patterns):
            self.tuples_examined += 1
            if not cfd.applies_to(row, pattern):
                continue
            rhs_value = pattern.value(rhs_attribute)
            if rhs_value.is_constant:
                if not rhs_value.matches(row.get(rhs_attribute)):
                    unit.singles.setdefault(tid, pattern_index)
            else:
                if row.get(rhs_attribute) is None or not cfd.lhs:
                    continue
                key = tuple(row.get(attr) for attr in cfd.lhs)
                unit.groups[pattern_index].setdefault(key, {})[tid] = row.get(
                    rhs_attribute
                )

    def _remove_from_unit(self, unit: _WorkUnit, tid: int, row: Mapping[str, Any]) -> None:
        unit.singles.pop(tid, None)
        cfd = unit.cfd
        for pattern_index, pattern in enumerate(cfd.patterns):
            self.tuples_examined += 1
            if not cfd.lhs:
                continue
            key = tuple(row.get(attr) for attr in cfd.lhs)
            members = unit.groups.get(pattern_index, {}).get(key)
            if members is not None:
                members.pop(tid, None)
                if not members:
                    unit.groups[pattern_index].pop(key, None)

    # -- sql_delta state construction ---------------------------------------------------

    def _materialise_tableaux(self) -> None:
        """Store each unit's pattern tableau in the query backend, once.

        The batch detector materialises and drops a tableau per ``detect``
        call; the incremental detector keeps them resident so every delta
        re-check is a single parameterised query.
        """
        instance = next(_DETECTOR_SEQUENCE)
        for index, unit in enumerate(self._units):
            unit.tableau_name = (
                f"__semandaq_incr_{instance}_{self.relation_name}"
                f"_{index}_{unit.rhs_attribute}"
            )
            tableau = tableau_to_relation(unit.cfd, unit.tableau_name)
            # a reused tableau name must never serve plans compiled for a
            # previous occupant (stale-plan invalidation contract)
            self._generator.claim_tableau(unit.tableau_name, unit.cfd)
            self._query_backend.add_relation(tableau, replace=True)
            if unit.cfd.lhs:
                self._query_backend.ensure_index(self.relation_name, unit.cfd.lhs)

    def _initialise_sql(self) -> None:
        """Build the initial violation state from the full ``Q_C``/``Q_V``.

        This is the one whole-relation evaluation the sql_delta mode ever
        runs; every later update re-checks only the affected sub-instance.
        The full ``Q_C`` is generated with the ``lhs_*`` carry columns so
        even the initial singles never need a working-store read.
        """
        self._resident_rows = self._query_backend.row_count(self.relation_name)
        for unit in self._units:
            unit.singles.clear()
            unit.single_lhs.clear()
            unit.multi.clear()
            for query in self._generator.plan_single_queries(
                unit.cfd, unit.tableau_name, include_lhs=True
            ):
                self._absorb_single_rows(
                    unit, self._execute_delta(query), query.pattern_index
                )
            self._absorb_multi_queries(
                unit, self._generator.plan_multi_queries(unit.cfd, unit.tableau_name)
            )

    def _execute_delta(self, query: SqlQuery) -> List[Dict[str, Any]]:
        self.delta_queries += 1
        self.telemetry.inc("delta.queries")
        if not self.telemetry.active:
            return self._query_backend.execute(query.sql, query.parameters)
        with self.telemetry.tag_statements(query.kind):
            return self._query_backend.execute(query.sql, query.parameters)

    def _decode_value(self, attribute: str, value: Any) -> Any:
        """Decode one backend-stored value (shared with the batch detector)."""
        return decode_backend_value(self._schema, attribute, value)

    def _absorb_single_rows(
        self,
        unit: _WorkUnit,
        rows: List[Dict[str, Any]],
        pattern_override: Optional[int] = None,
    ) -> None:
        """Fold ``Q_C`` result rows into ``unit.singles`` (lowest pattern wins).

        The rows carry the tuple's LHS values (``lhs_*`` columns), which
        are decoded and kept so :meth:`report` assembles single-tuple
        violations from backend rows alone.  ``pattern_override`` labels
        rows from the specialized per-pattern statements, which carry no
        ``pattern_id`` column.
        """
        for row in rows:
            tid = row["tid"]
            if pattern_override is not None:
                pattern_index = pattern_override
            else:
                pattern_index = int(row.get("pattern_id", 0))
            if tid not in unit.singles or pattern_index < unit.singles[tid]:
                unit.singles[tid] = pattern_index
                unit.single_lhs[tid] = tuple(
                    self._decode_value(attr, row.get(LHS_COLUMN_PREFIX + attr))
                    for attr in unit.cfd.lhs
                )

    def _absorb_multi_queries(
        self, unit: _WorkUnit, queries: Sequence[SqlQuery]
    ) -> None:
        """Execute the ``Q_V`` statements and fold the results into ``unit.multi``.

        An LHS group covered by several overlapping patterns comes back
        once per matching pattern — from the legacy (LHS, pattern_id)
        grouping or from the specialized per-pattern statements; each
        group is kept once, under its lowest violating pattern index — the
        rule every detection path follows.  One-pass window statements
        deliver member rows directly; the grouped shapes enumerate
        membership with one covering-members pass over the union of their
        group keys, against the backend copy (the working store is never
        consulted).  Keys stay in the *backend's* value representation
        until the final decode, so the ``Q_V`` keys and the members keys
        hash identically.
        """
        cfd = unit.cfd
        grouped: Dict[Tuple[Any, ...], int] = {}
        members: Dict[Tuple[Any, ...], Set[int]] = {}
        if self._generator.one_pass_multi:
            for query in queries:
                pattern_index = query.pattern_index or 0
                for row in self._execute_delta(query):
                    key = tuple(row[LHS_COLUMN_PREFIX + attr] for attr in cfd.lhs)
                    if key not in grouped or pattern_index < grouped[key]:
                        grouped[key] = pattern_index
                    members.setdefault(key, set()).add(row["tid"])
        else:
            for query in queries:
                for row in self._execute_delta(query):
                    lhs_values = tuple(row[attr] for attr in cfd.lhs)
                    if query.pattern_index is not None:
                        pattern_index = query.pattern_index
                    else:
                        pattern_index = int(row.get("pattern_id", 0))
                    if (
                        lhs_values not in grouped
                        or pattern_index < grouped[lhs_values]
                    ):
                        grouped[lhs_values] = pattern_index
            if not grouped:
                return
            for plan in self._generator.covering_members_plans(
                cfd, unit.tableau_name, unit.rhs_attribute, list(grouped)
            ):
                for row in self._execute_delta(plan):
                    key = tuple(row[LHS_COLUMN_PREFIX + attr] for attr in cfd.lhs)
                    members.setdefault(key, set()).add(row["tid"])
        for key, pattern_index in grouped.items():
            tids = members.get(key, set())
            if len(tids) < 2:
                continue
            decoded = tuple(
                self._decode_value(attr, value)
                for attr, value in zip(cfd.lhs, key)
            )
            unit.multi[decoded] = (pattern_index, tuple(sorted(tids)))

    # -- delta re-checks (sql_delta mode) ---------------------------------------------

    def _recheck_affected(self, touched: Sequence[_Touched]) -> None:
        """Re-evaluate the affected sub-instance against the backend copy.

        The re-check statements are budget-chunked by the generator: the
        dialect's per-statement parameter budget bounds how many affected
        tids/groups each statement binds, however wide the CFD's LHS is.
        """
        touched_tids = list(dict.fromkeys(entry.tid for entry in touched))
        for unit in self._units:
            for tid in touched_tids:
                unit.singles.pop(tid, None)
                unit.single_lhs.pop(tid, None)
            for plan in self._generator.plan_delta_single(
                unit.cfd, unit.tableau_name, touched_tids
            ):
                self._absorb_single_rows(
                    unit, self._execute_delta(plan), plan.pattern_index
                )
            if not unit.cfd.lhs or not unit.wildcard_rhs:
                continue
            keys = self._affected_keys(unit, touched)
            if not keys:
                continue
            for key in keys:
                unit.multi.pop(key, None)
            self._absorb_multi_queries(
                unit,
                self._generator.plan_delta_multi(
                    unit.cfd, unit.tableau_name, unit.rhs_attribute, keys
                ),
            )

    def _affected_keys(
        self, unit: _WorkUnit, touched: Sequence[_Touched]
    ) -> List[Tuple[Any, ...]]:
        """LHS-value groups whose violation status an update batch may change.

        The old and the new image of every touched tuple each contribute
        their LHS values.  Keys containing NULL are skipped: a NULL LHS cell
        keeps a tuple out of every group on every detection path.
        """
        lhs = unit.cfd.lhs
        keys: Dict[Tuple[Any, ...], None] = {}
        for entry in touched:
            for row in (entry.old_row, entry.new_row):
                if row is None:
                    continue
                key = tuple(row.get(attr) for attr in lhs)
                if any(value is None for value in key):
                    continue
                keys[key] = None
        return list(keys)

    # -- update API --------------------------------------------------------------------

    def insert(self, row: Mapping[str, Any]) -> int:
        """Insert ``row`` into the relation and update detection state."""
        self._ensure_native_state()
        tid = self.relation.insert(dict(row))
        stored = self.relation.get(tid)
        if self.mode == NATIVE_MODE:
            self._add_tuple(tid, stored)
        else:
            self._resident_rows += 1
        # Record the coerced row under the same tid, keeping tuple ids
        # aligned between the working store and the backend copy.  The
        # delta ships last so a backend failure leaves relation and
        # detection state consistent with each other.
        self._record(
            _Touched(tid=tid, old_row=None, new_row=dict(stored)),
            lambda batch: batch.record_insert(tid, dict(stored)),
        )
        return tid

    def delete(self, tid: int) -> None:
        """Delete tuple ``tid`` and update detection state."""
        self._ensure_native_state()
        old_row = dict(self.relation.get(tid))
        self.relation.delete(tid)
        if self.mode == NATIVE_MODE:
            self._remove_tuple(tid, old_row)
        else:
            self._resident_rows -= 1
        self._record(
            _Touched(tid=tid, old_row=old_row, new_row=None),
            lambda batch: batch.record_delete(tid),
        )

    def update(self, tid: int, changes: Mapping[str, Any]) -> None:
        """Modify attribute values of tuple ``tid`` and update detection state."""
        self._ensure_native_state()
        old_row = dict(self.relation.get(tid))
        self.relation.update(tid, dict(changes))
        new_row = self.relation.get(tid)
        if self.mode == NATIVE_MODE:
            self._remove_tuple(tid, old_row)
            self._add_tuple(tid, new_row)
        # ship the coerced values actually stored, not the raw inputs
        stored_changes = {attr: new_row.get(attr) for attr in changes}
        self._record(
            _Touched(tid=tid, old_row=old_row, new_row=dict(new_row)),
            lambda batch: batch.record_update(tid, stored_changes),
        )

    def _record(self, touched: _Touched, record_op) -> None:
        """Fold one applied operation into the pending (or a singleton) batch."""
        if self._pending is not None:
            record_op(self._pending)
            self._pending_touched.append(touched)
            return
        batch = DeltaBatch(relation=self.relation_name)
        record_op(batch)
        self._flush(batch, [touched])

    @contextmanager
    def batch(self) -> Iterator[DeltaBatch]:
        """Group every update applied inside the block into one DeltaBatch.

        The coalesced batch ships to the mirror in a single
        ``apply_delta_batch`` round trip (one transaction on SQLite) when
        the block closes, and the sql_delta re-checks run once for the
        whole batch.  If the block raises after some updates were applied,
        the operations recorded so far still ship — the working store has
        already mutated, and the mirror must not silently lag it.
        """
        if self._pending is not None:
            raise DetectionError("an update batch is already open")
        self._pending = DeltaBatch(relation=self.relation_name)
        self._pending_touched = []
        try:
            yield self._pending
        finally:
            pending, touched = self._pending, self._pending_touched
            self._pending, self._pending_touched = None, []
            self._flush(pending, touched)

    def _flush(self, batch: DeltaBatch, touched: Sequence[_Touched]) -> None:
        """Ship one batch to the mirror, then re-check the affected groups.

        The working store and (in native mode) the detection state have
        already mutated by the time a batch ships, so a backend error (disk
        full, lock contention) means the backend copy now lags.
        ``mirror_desynced`` records that so the owner can schedule a full
        re-sync instead of silently detecting against stale data.
        """
        if not touched:
            return
        if self.mirror is not None and not batch.is_empty():
            try:
                self.mirror.apply_delta_batch(self.relation_name, batch)
            except Exception:
                self.mirror_desynced = True
                self.telemetry.inc("mirror.desynced")
                raise
            self.batches_shipped += 1
            self.telemetry.inc("delta.batches_shipped")
            self.telemetry.inc("delta.ops_recorded", batch.ops_recorded)
            self.telemetry.inc("delta.ops_shipped", batch.statement_count)
        if self.mode == SQL_DELTA_MODE:
            try:
                self._recheck_affected(touched)
            except Exception:
                # A partially-run re-check leaves the violation state torn
                # (affected entries popped but not re-absorbed).  The batch
                # itself already shipped, so a full rebuild from the backend
                # restores consistency; if even that fails, flag the desync
                # so the owner schedules a bulk re-sync + rebuild.
                try:
                    self._initialise_sql()
                except Exception:
                    self.mirror_desynced = True
                    self.telemetry.inc("mirror.desynced")
                raise

    def apply(self, operation: str, **kwargs: Any) -> Optional[int]:
        """Dispatch an update described by name: ``insert``, ``delete`` or ``update``."""
        if operation == "insert":
            return self.insert(kwargs["row"])
        if operation == "delete":
            self.delete(kwargs["tid"])
            return None
        if operation == "update":
            self.update(kwargs["tid"], kwargs["changes"])
            return None
        raise DetectionError(f"unknown operation {operation!r}")

    # -- mirror lifecycle ---------------------------------------------------------------

    def mark_resynced(self) -> None:
        """Reset after the owner bulk re-synced the mirror.

        In sql_delta mode the violation state was computed against the
        (now replaced) backend copy, so it is rebuilt from fresh full
        queries; the native state tracks the working store and needs no
        rebuild.
        """
        self.mirror_desynced = False
        if self.mode == SQL_DELTA_MODE:
            self._initialise_sql()

    def detach_mirror(self) -> None:
        """Stop mirroring updates (and, in sql_delta mode, querying) the backend.

        A detached sql_delta detector falls back to the native evaluation
        mode against its working store: the backend it compiled re-checks
        against is no longer its to query.
        """
        if self.mode == SQL_DELTA_MODE and self.mirror is not None:
            self._fall_back_to_native()
        self.mirror = None
        self.mirror_desynced = False

    def _fall_back_to_native(self) -> None:
        """Drop the resident tableaux and switch to native evaluation.

        The Python state is rebuilt *lazily* (on the next update or
        report), so retiring a detector costs nothing beyond the DROPs —
        most fallen-back detectors are never used again.
        """
        self._drop_tableaux()
        self.mode = NATIVE_MODE
        self._query_backend = None
        self._generator = None
        self._native_stale = True

    def _ensure_native_state(self) -> None:
        """Rebuild the native state if a mode fallback left it stale."""
        if self.mode == NATIVE_MODE and self._native_stale:
            self._native_stale = False
            self._rebuild_native()

    def _drop_tableaux(self) -> None:
        """Best-effort removal of the resident tableaux from the query backend."""
        for unit in self._units:
            if unit.tableau_name is None:
                continue
            if self._generator is not None:
                self._generator.invalidate_plans(unit.tableau_name)
            try:
                if self._query_backend.has_relation(unit.tableau_name):
                    self._query_backend.drop_relation(unit.tableau_name)
            except Exception:  # pragma: no cover - backend already unusable
                pass
            unit.tableau_name = None

    def close(self) -> None:
        """Drop the resident tableaux and fall back to native evaluation.

        A closed sql_delta detector stays usable — updates keep shipping to
        the mirror and detection continues against the (lazily rebuilt)
        Python state; it just no longer queries the backend.  A no-op in
        native mode.
        """
        if self.mode == SQL_DELTA_MODE and self._query_backend is not None:
            self._fall_back_to_native()

    # -- report ------------------------------------------------------------------------

    def report(self) -> ViolationReport:
        """Build the current :class:`ViolationReport` from the maintained state.

        In ``sql_delta`` mode the report is assembled entirely from state
        computed off backend rows — the singles' LHS values were carried by
        the delta ``Q_C``, group members came from the covering members
        plan, and the tuple count is the backend's — so the in-memory
        working store is never read.
        """
        self._ensure_native_state()
        backend_resident = self.mode == SQL_DELTA_MODE
        violations: List[Violation] = []
        for unit in self._units:
            for tid, pattern_index in sorted(unit.singles.items()):
                if backend_resident:
                    lhs_values = unit.single_lhs.get(tid, ())
                else:
                    row = self.relation.get(tid)
                    lhs_values = tuple(row.get(attr) for attr in unit.cfd.lhs)
                violations.append(
                    Violation(
                        cfd_id=unit.parent.identifier,
                        kind=SINGLE,
                        tids=(tid,),
                        rhs_attribute=unit.rhs_attribute,
                        pattern_index=pattern_index,
                        lhs_attributes=unit.cfd.lhs,
                        lhs_values=lhs_values,
                    )
                )
            if backend_resident:
                violations.extend(self._multi_violations_sql(unit))
            else:
                violations.extend(self._multi_violations_native(unit))
        return ViolationReport(
            relation=self.relation_name,
            violations=violations,
            tuple_count=self._resident_rows if backend_resident else len(self.relation),
            cfd_ids=tuple(cfd.identifier for cfd in self.cfds),
        )

    def _multi_violations_native(self, unit: _WorkUnit) -> List[Violation]:
        violations: List[Violation] = []
        seen_keys: Set[Tuple[Any, ...]] = set()
        for pattern_index in sorted(unit.groups):
            for key, members in unit.groups[pattern_index].items():
                if key in seen_keys:
                    continue
                if len(members) < 2:
                    continue
                distinct = {
                    value for value in members.values() if value is not None
                }
                if len(distinct) <= 1:
                    continue
                seen_keys.add(key)
                violations.append(
                    Violation(
                        cfd_id=unit.parent.identifier,
                        kind=MULTI,
                        tids=tuple(sorted(members)),
                        rhs_attribute=unit.rhs_attribute,
                        pattern_index=pattern_index,
                        lhs_attributes=unit.cfd.lhs,
                        lhs_values=key,
                    )
                )
        return violations

    def _multi_violations_sql(self, unit: _WorkUnit) -> List[Violation]:
        return [
            Violation(
                cfd_id=unit.parent.identifier,
                kind=MULTI,
                tids=tids,
                rhs_attribute=unit.rhs_attribute,
                pattern_index=pattern_index,
                lhs_attributes=unit.cfd.lhs,
                lhs_values=key,
            )
            for key, (pattern_index, tids) in unit.multi.items()
        ]

    def affected_violations(self, tid: int) -> List[Violation]:
        """Violations that currently involve tuple ``tid``."""
        return self.report().violations_for(tid)

    def reset_cost_counter(self) -> None:
        """Reset the cost counters (used by benchmarks)."""
        self.tuples_examined = 0
        self.delta_queries = 0
        self.batches_shipped = 0
