"""Incremental detection of CFD violations under data updates.

The paper's data monitor "responds to updates on the data by invoking an
incremental detection module … using the incremental SQL-based detection
techniques".  The key idea of those techniques is locality: an insertion,
deletion or value modification can only create or remove violations that
involve the modified tuple, i.e. violations whose LHS group contains the
tuple's (old or new) LHS values.  This module maintains per-CFD group state
so that each update touches only the affected groups instead of re-running
detection from scratch.

The :class:`IncrementalDetector` also counts how many tuple examinations each
operation performed (``tuples_examined``), which the DET-INCR benchmark uses
to show the incremental-vs-batch crossover.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..backends.base import StorageBackend
from ..core.cfd import CFD
from ..engine.database import Database
from ..engine.relation import Relation
from ..errors import DetectionError
from .detector import _sub_cfd
from .violations import MULTI, SINGLE, Violation, ViolationReport


@dataclass
class _WorkUnit:
    """Detection state for one (parent CFD, RHS attribute) pair."""

    parent: CFD
    cfd: CFD  # single-RHS restriction of the parent
    #: tid -> pattern index of the first constant-RHS pattern it violates
    singles: Dict[int, int] = field(default_factory=dict)
    #: pattern index -> lhs values -> {tid: rhs value}
    groups: Dict[int, Dict[Tuple[Any, ...], Dict[int, Any]]] = field(
        default_factory=lambda: defaultdict(dict)
    )

    @property
    def rhs_attribute(self) -> str:
        return self.cfd.rhs[0]


class IncrementalDetector:
    """Maintains CFD violation state across inserts, deletes and updates."""

    def __init__(
        self,
        database: Database,
        relation_name: str,
        cfds: Sequence[CFD],
        mirror: Optional[StorageBackend] = None,
    ):
        self.database = database
        self.relation_name = relation_name
        self.relation: Relation = database.relation(relation_name)
        self.cfds: List[CFD] = list(cfds)
        #: storage backend every applied update is forwarded to as a per-tid
        #: delta (insert_row/delete_row/update_row), so a backend-resident
        #: copy stays current without full re-syncs.  None when the working
        #: store *is* the backend (the shared-memory configuration).
        self.mirror = mirror
        #: set when a mirror delta failed after the working store mutated:
        #: the backend copy has silently diverged and needs a full re-sync
        #: (the Semandaq facade checks this flag before each detect)
        self.mirror_desynced = False
        #: number of (tuple, pattern) examinations performed so far
        self.tuples_examined = 0
        self._units: List[_WorkUnit] = []
        for cfd in self.cfds:
            if cfd.relation != relation_name:
                raise DetectionError(
                    f"CFD {cfd.identifier} targets {cfd.relation!r}, not {relation_name!r}"
                )
            cfd.validate_against(self.relation.attribute_names)
            for rhs_attribute in cfd.rhs:
                self._units.append(_WorkUnit(parent=cfd, cfd=_sub_cfd(cfd, rhs_attribute)))
        self._initialise()

    # -- state construction ----------------------------------------------------------

    def _initialise(self) -> None:
        for tid, row in self.relation.rows():
            self._add_tuple(tid, row)

    def _add_tuple(self, tid: int, row: Mapping[str, Any]) -> None:
        for unit in self._units:
            self._add_to_unit(unit, tid, row)

    def _remove_tuple(self, tid: int, row: Mapping[str, Any]) -> None:
        for unit in self._units:
            self._remove_from_unit(unit, tid, row)

    def _add_to_unit(self, unit: _WorkUnit, tid: int, row: Mapping[str, Any]) -> None:
        cfd = unit.cfd
        rhs_attribute = unit.rhs_attribute
        for pattern_index, pattern in enumerate(cfd.patterns):
            self.tuples_examined += 1
            if not cfd.applies_to(row, pattern):
                continue
            rhs_value = pattern.value(rhs_attribute)
            if rhs_value.is_constant:
                if not rhs_value.matches(row.get(rhs_attribute)):
                    unit.singles.setdefault(tid, pattern_index)
            else:
                if row.get(rhs_attribute) is None or not cfd.lhs:
                    continue
                key = tuple(row.get(attr) for attr in cfd.lhs)
                unit.groups[pattern_index].setdefault(key, {})[tid] = row.get(
                    rhs_attribute
                )

    def _remove_from_unit(self, unit: _WorkUnit, tid: int, row: Mapping[str, Any]) -> None:
        unit.singles.pop(tid, None)
        cfd = unit.cfd
        for pattern_index, pattern in enumerate(cfd.patterns):
            self.tuples_examined += 1
            if not cfd.lhs:
                continue
            key = tuple(row.get(attr) for attr in cfd.lhs)
            members = unit.groups.get(pattern_index, {}).get(key)
            if members is not None:
                members.pop(tid, None)
                if not members:
                    unit.groups[pattern_index].pop(key, None)

    # -- update API --------------------------------------------------------------------

    def insert(self, row: Mapping[str, Any]) -> int:
        """Insert ``row`` into the relation and update detection state."""
        tid = self.relation.insert(dict(row))
        stored = self.relation.get(tid)
        self._add_tuple(tid, stored)
        if self.mirror is not None:
            # Forward the coerced row under the same tid, keeping tuple ids
            # aligned between the working store and the backend copy.  The
            # mirror call comes last so a backend failure leaves relation
            # and detection state consistent with each other.
            self._forward_to_mirror(self.mirror.insert_row, self.relation_name, stored, tid=tid)
        return tid

    def delete(self, tid: int) -> None:
        """Delete tuple ``tid`` and update detection state."""
        old_row = self.relation.get(tid)
        self.relation.delete(tid)
        self._remove_tuple(tid, old_row)
        if self.mirror is not None:
            self._forward_to_mirror(self.mirror.delete_row, self.relation_name, tid)

    def update(self, tid: int, changes: Mapping[str, Any]) -> None:
        """Modify attribute values of tuple ``tid`` and update detection state."""
        old_row = self.relation.get(tid)
        self.relation.update(tid, dict(changes))
        new_row = self.relation.get(tid)
        self._remove_tuple(tid, old_row)
        self._add_tuple(tid, new_row)
        if self.mirror is not None:
            # ship the coerced values actually stored, not the raw inputs
            self._forward_to_mirror(
                self.mirror.update_row,
                self.relation_name,
                tid,
                {attr: new_row.get(attr) for attr in changes},
            )

    def _forward_to_mirror(self, delta_op, *args: Any, **kwargs: Any) -> None:
        """Run one mirror delta; on failure flag the divergence and re-raise.

        The working store and detection state have already mutated by the
        time a delta ships, so a backend error (disk full, lock contention)
        means the backend copy now lags.  ``mirror_desynced`` records that
        so the owner can schedule a full re-sync instead of silently
        detecting against stale data.
        """
        try:
            delta_op(*args, **kwargs)
        except Exception:
            self.mirror_desynced = True
            raise

    def apply(self, operation: str, **kwargs: Any) -> Optional[int]:
        """Dispatch an update described by name: ``insert``, ``delete`` or ``update``."""
        if operation == "insert":
            return self.insert(kwargs["row"])
        if operation == "delete":
            self.delete(kwargs["tid"])
            return None
        if operation == "update":
            self.update(kwargs["tid"], kwargs["changes"])
            return None
        raise DetectionError(f"unknown operation {operation!r}")

    # -- report ------------------------------------------------------------------------

    def report(self) -> ViolationReport:
        """Build the current :class:`ViolationReport` from the maintained state."""
        violations: List[Violation] = []
        for unit in self._units:
            for tid, pattern_index in sorted(unit.singles.items()):
                row = self.relation.get(tid)
                violations.append(
                    Violation(
                        cfd_id=unit.parent.identifier,
                        kind=SINGLE,
                        tids=(tid,),
                        rhs_attribute=unit.rhs_attribute,
                        pattern_index=pattern_index,
                        lhs_attributes=unit.cfd.lhs,
                        lhs_values=tuple(row.get(attr) for attr in unit.cfd.lhs),
                    )
                )
            seen_keys: Set[Tuple[Any, ...]] = set()
            for pattern_index in sorted(unit.groups):
                for key, members in unit.groups[pattern_index].items():
                    if key in seen_keys:
                        continue
                    if len(members) < 2:
                        continue
                    distinct = {
                        value for value in members.values() if value is not None
                    }
                    if len(distinct) <= 1:
                        continue
                    seen_keys.add(key)
                    violations.append(
                        Violation(
                            cfd_id=unit.parent.identifier,
                            kind=MULTI,
                            tids=tuple(sorted(members)),
                            rhs_attribute=unit.rhs_attribute,
                            pattern_index=pattern_index,
                            lhs_attributes=unit.cfd.lhs,
                            lhs_values=key,
                        )
                    )
        return ViolationReport(
            relation=self.relation_name,
            violations=violations,
            tuple_count=len(self.relation),
            cfd_ids=tuple(cfd.identifier for cfd in self.cfds),
        )

    def affected_violations(self, tid: int) -> List[Violation]:
        """Violations that currently involve tuple ``tid``."""
        return self.report().violations_for(tid)

    def reset_cost_counter(self) -> None:
        """Reset the ``tuples_examined`` counter (used by benchmarks)."""
        self.tuples_examined = 0
