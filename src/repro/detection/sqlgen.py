"""Generation of SQL detection queries from CFDs.

Following the SQL-based technique of the paper's companion article (Fan et
al., TODS 2008), each (merged) CFD ``phi = (R: X -> A, Tp)`` is compiled into
two SQL queries that run against the data relation ``R`` joined with the
relational encoding of the pattern tableau ``Tp``:

* ``Q_C`` (single-tuple violations): finds tuples that match the LHS pattern
  of some pattern tuple whose RHS is a constant, but carry a different RHS
  value;
* ``Q_V`` (multi-tuple violations): groups the tuples matching the LHS
  pattern of some pattern tuple whose RHS is the wildcard ``_`` by their LHS
  values and keeps the groups with more than one distinct RHS value.

Wildcards are encoded as the literal ``'_'`` inside the tableau relation, so
the matching predicate for an LHS attribute ``X`` is
``(tab.X = '_' OR tab.X = t.X)``.  For non-string attributes the data side is
rendered as a string through the backend's
:class:`~repro.backends.dialect.SqlDialect` (``CONCAT(...)`` on the embedded
engine, ``CAST(... AS TEXT)`` on SQLite), so the comparison happens on the
string encoding used by the tableau.  The generator is dialect-aware: the
same :class:`DetectionQueries` run unmodified on every registered backend.

On dialects that support query parameters, inline literal values (the
wildcard token) travel out-of-band as ``?`` parameters — SQL strings never
embed data values there.  The in-memory dialect keeps the legacy inline
quoting (:func:`_quote`), which is the only remaining user of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..backends.dialect import MEMORY_DIALECT, SqlDialect
from ..core.cfd import CFD
from ..core.pattern import WILDCARD_TOKEN
from ..core.tableau import PATTERN_ID_COLUMN
from ..engine.types import DataType, RelationSchema

#: alias used for the data relation in generated queries
DATA_ALIAS = "t"
#: alias used for the tableau relation in generated queries
TABLEAU_ALIAS = "tab"


def _quote(value: str) -> str:
    """Inline-quote a literal for the in-memory dialect (no parameter channel)."""
    return "'" + str(value).replace("'", "''") + "'"


@dataclass(frozen=True)
class SqlQuery:
    """One generated query: SQL text plus its bound parameter values.

    ``parameters`` is empty on dialects without parameter support (values
    are inlined) and for queries whose placeholders are bound by the caller
    at execution time (the group-members query).  ``rhs_attribute`` names
    the RHS attribute a ``Q_V`` query detects disagreements on (``None``
    for the other query kinds).
    """

    sql: str
    parameters: Tuple[Any, ...] = ()
    rhs_attribute: Optional[str] = None

    def __str__(self) -> str:
        return self.sql

    def __contains__(self, fragment: str) -> bool:
        return fragment in self.sql


@dataclass(frozen=True)
class DetectionQueries:
    """The generated SQL for one CFD: tableau name plus the queries.

    A merged CFD can carry wildcard patterns on several RHS attributes;
    ``multi_sqls`` holds one ``Q_V`` per such attribute (each query's
    ``rhs_attribute`` says which one it covers).
    """

    cfd_id: str
    tableau_name: str
    single_sql: Optional[SqlQuery]
    multi_sqls: Tuple[SqlQuery, ...]
    group_members_sql: Optional[SqlQuery]

    @property
    def multi_sql(self) -> Optional[SqlQuery]:
        """The first ``Q_V`` query (kept for single-RHS callers)."""
        return self.multi_sqls[0] if self.multi_sqls else None

    def all_sql(self) -> List[str]:
        """Every generated query's SQL text, for logging/inspection."""
        return [
            query.sql
            for query in (self.single_sql,) + self.multi_sqls
            if query
        ]


class DetectionSqlGenerator:
    """Compiles CFDs into detection SQL against a given data relation schema.

    ``dialect`` selects the SQL flavour; it defaults to the embedded
    engine's dialect so existing callers keep their behaviour.
    """

    def __init__(self, schema: RelationSchema, dialect: Optional[SqlDialect] = None):
        self.schema = schema
        self.dialect = dialect or MEMORY_DIALECT

    # -- helpers ----------------------------------------------------------------

    def _data_column(self, attribute: str) -> str:
        """Render the data-side column as the tableau's string encoding."""
        dtype = self.schema.attribute(attribute).dtype
        return self.dialect.string_expr(f"{DATA_ALIAS}.{attribute}", dtype)

    def _wildcard(self, params: List[Any]) -> str:
        """Render the wildcard-token literal: a ``?`` parameter when supported."""
        if self.dialect.supports_parameters:
            params.append(WILDCARD_TOKEN)
            return "?"
        return _quote(WILDCARD_TOKEN)

    def _match_predicate(self, attribute: str, params: List[Any]) -> str:
        """The per-attribute LHS matching predicate against the tableau."""
        tab_column = f"{TABLEAU_ALIAS}.{attribute}"
        data_column = self._data_column(attribute)
        return (
            f"({tab_column} = {self._wildcard(params)} OR {tab_column} = {data_column})"
        )

    def _lhs_conditions(self, cfd: CFD, params: List[Any]) -> List[str]:
        conditions: List[str] = []
        for attribute in cfd.lhs:
            conditions.append(f"{DATA_ALIAS}.{attribute} IS NOT NULL")
            conditions.append(self._match_predicate(attribute, params))
        return conditions

    # -- query generation ---------------------------------------------------------

    def single_tuple_query(self, cfd: CFD, tableau_name: str) -> Optional[SqlQuery]:
        """``Q_C``: detect tuples violating a constant RHS pattern on their own.

        Returns ``None`` when no pattern tuple of the CFD has a constant RHS.
        """
        return self._single_query(cfd, tableau_name)

    def single_tuple_query_delta(
        self, cfd: CFD, tableau_name: str, tid_count: int
    ) -> Optional[SqlQuery]:
        """Delta ``Q_C``: re-check only the ``tid_count`` affected tuples.

        The incremental detector's backend-resident mode runs this after a
        :class:`~repro.backends.delta.DeltaBatch` ships: only the tuples the
        batch touched can have gained or lost a single-tuple violation, so
        the query appends a tid restriction with one ``?`` placeholder per
        affected tid.  The caller binds ``query.parameters`` followed by the
        tids themselves (the delta placeholders come last).
        """
        if tid_count < 1:
            raise ValueError("tid_count must be at least 1")
        return self._single_query(cfd, tableau_name, delta_tid_count=tid_count)

    def _single_query(
        self,
        cfd: CFD,
        tableau_name: str,
        delta_tid_count: Optional[int] = None,
    ) -> Optional[SqlQuery]:
        rhs_constant_exists = any(
            cfd.rhs_pattern(pattern).value(attr).is_constant
            for pattern in cfd.patterns
            for attr in cfd.rhs
        )
        if not rhs_constant_exists:
            return None
        params: List[Any] = []
        conditions = self._lhs_conditions(cfd, params)
        rhs_parts: List[str] = []
        for attribute in cfd.rhs:
            tab_column = f"{TABLEAU_ALIAS}.{attribute}"
            data_column = self._data_column(attribute)
            rhs_parts.append(
                f"({tab_column} <> {self._wildcard(params)} AND "
                f"({data_column} <> {tab_column} OR {DATA_ALIAS}.{attribute} IS NULL))"
            )
        conditions.append("(" + " OR ".join(rhs_parts) + ")")
        if delta_tid_count is not None:
            # The caller-bound tid placeholders come last, *after* every
            # generator-bound wildcard placeholder, so binding order is
            # always ``query.parameters`` followed by the affected tids.
            conditions.append(
                "("
                + " OR ".join(f"{DATA_ALIAS}._tid = ?" for _ in range(delta_tid_count))
                + ")"
            )
        where = " AND ".join(conditions)
        select_columns = [
            f"{DATA_ALIAS}._tid AS tid",
            f"{TABLEAU_ALIAS}.{PATTERN_ID_COLUMN} AS pattern_id",
        ]
        for attribute in cfd.rhs:
            select_columns.append(f"{TABLEAU_ALIAS}.{attribute} AS expected_{attribute}")
        sql = (
            f"SELECT {', '.join(select_columns)}\n"
            f"FROM {cfd.relation} {DATA_ALIAS}, {tableau_name} {TABLEAU_ALIAS}\n"
            f"WHERE {where}"
        )
        return SqlQuery(sql, tuple(params))

    def _wildcard_rhs_attributes(self, cfd: CFD) -> List[str]:
        """RHS attributes carrying the wildcard in at least one pattern."""
        return [
            attr
            for attr in cfd.rhs
            if any(
                cfd.rhs_pattern(pattern).value(attr).is_wildcard
                for pattern in cfd.patterns
            )
        ]

    def multi_tuple_queries(self, cfd: CFD, tableau_name: str) -> List[SqlQuery]:
        """All ``Q_V`` queries of ``cfd``: one per wildcard RHS attribute.

        A merged CFD whose tableau has wildcard patterns on several RHS
        attributes needs one grouping query per such attribute — a single
        query over the first one would silently miss disagreements on the
        others.  Empty when the CFD has no wildcard RHS position or an
        empty LHS.
        """
        if not cfd.lhs:
            return []
        return [
            self._multi_tuple_query_for(cfd, tableau_name, attr)
            for attr in self._wildcard_rhs_attributes(cfd)
        ]

    def multi_tuple_query(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: Optional[str] = None,
    ) -> Optional[SqlQuery]:
        """``Q_V``: find LHS groups with >1 distinct value on a wildcard RHS.

        Covers ``rhs_attribute`` (default: the first wildcard RHS
        attribute).  Returns ``None`` when the CFD has no wildcard RHS
        position or an empty LHS; use :meth:`multi_tuple_queries` to cover
        every wildcard RHS attribute of a merged CFD.
        """
        if not cfd.lhs:
            return None
        wildcard_rhs = self._wildcard_rhs_attributes(cfd)
        if not wildcard_rhs:
            return None
        if rhs_attribute is None:
            rhs_attribute = wildcard_rhs[0]
        elif rhs_attribute not in wildcard_rhs:
            return None
        return self._multi_tuple_query_for(cfd, tableau_name, rhs_attribute)

    def multi_tuple_query_delta(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: str,
        group_count: int,
    ) -> SqlQuery:
        """Delta ``Q_V``: re-check only the ``group_count`` affected LHS groups.

        After a :class:`~repro.backends.delta.DeltaBatch` ships, only groups
        whose LHS values match a touched tuple's old or new LHS values can
        have changed violation status.  The query appends one
        ``(t.X1 = ? AND t.X2 = ? ...)`` disjunct per affected group; the
        caller binds ``query.parameters`` followed by the group's LHS values
        flattened in ``cfd.lhs`` order (the delta placeholders come last).
        """
        if not cfd.lhs:
            raise ValueError("delta Q_V needs a non-empty LHS")
        if group_count < 1:
            raise ValueError("group_count must be at least 1")
        return self._multi_tuple_query_for(
            cfd, tableau_name, rhs_attribute, delta_group_count=group_count
        )

    def _multi_tuple_query_for(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: str,
        delta_group_count: Optional[int] = None,
    ) -> SqlQuery:
        params: List[Any] = []
        conditions = self._lhs_conditions(cfd, params)
        conditions.append(
            f"{TABLEAU_ALIAS}.{rhs_attribute} = {self._wildcard(params)}"
        )
        conditions.append(f"{DATA_ALIAS}.{rhs_attribute} IS NOT NULL")
        if delta_group_count is not None:
            group_predicate = " AND ".join(
                f"{DATA_ALIAS}.{attr} = ?" for attr in cfd.lhs
            )
            conditions.append(
                "("
                + " OR ".join(f"({group_predicate})" for _ in range(delta_group_count))
                + ")"
            )
        group_columns = [f"{DATA_ALIAS}.{attr}" for attr in cfd.lhs]
        group_columns.append(f"{TABLEAU_ALIAS}.{PATTERN_ID_COLUMN}")
        select_columns = [
            f"{DATA_ALIAS}.{attr} AS {attr}" for attr in cfd.lhs
        ]
        select_columns.append(f"{TABLEAU_ALIAS}.{PATTERN_ID_COLUMN} AS pattern_id")
        select_columns.append(
            f"COUNT(DISTINCT {self._data_column(rhs_attribute)}) AS distinct_rhs"
        )
        select_columns.append(f"COUNT(*) AS group_size")
        sql = (
            f"SELECT {', '.join(select_columns)}\n"
            f"FROM {cfd.relation} {DATA_ALIAS}, {tableau_name} {TABLEAU_ALIAS}\n"
            f"WHERE {' AND '.join(conditions)}\n"
            f"GROUP BY {', '.join(group_columns)}\n"
            f"HAVING COUNT(DISTINCT {self._data_column(rhs_attribute)}) > 1"
        )
        return SqlQuery(sql, tuple(params), rhs_attribute=rhs_attribute)

    def group_members_query(self, cfd: CFD) -> Optional[SqlQuery]:
        """Parameterised query returning the tuples of one violating LHS group.

        The data monitor and the explorer use it to enumerate the members of
        a multi-tuple violation; the ``?`` placeholders are bound by the
        caller to the LHS values (in order) at execution time, so
        ``parameters`` is empty here.
        """
        if not cfd.lhs:
            return None
        conditions = [f"{DATA_ALIAS}.{attr} = ?" for attr in cfd.lhs]
        select_columns = [f"{DATA_ALIAS}._tid AS tid"] + [
            f"{DATA_ALIAS}.{attr} AS {attr}" for attr in cfd.rhs
        ]
        sql = (
            f"SELECT {', '.join(select_columns)}\n"
            f"FROM {cfd.relation} {DATA_ALIAS}\n"
            f"WHERE {' AND '.join(conditions)}"
        )
        return SqlQuery(sql)

    def generate(self, cfd: CFD, tableau_name: str) -> DetectionQueries:
        """Generate all detection SQL for one (merged or normalised) CFD."""
        return DetectionQueries(
            cfd_id=cfd.identifier,
            tableau_name=tableau_name,
            single_sql=self.single_tuple_query(cfd, tableau_name),
            multi_sqls=tuple(self.multi_tuple_queries(cfd, tableau_name)),
            group_members_sql=self.group_members_query(cfd),
        )


def tableau_relation_name(cfd: CFD, index: int) -> str:
    """A unique, SQL-safe name for the materialised tableau of ``cfd``."""
    return f"__semandaq_tableau_{index}"
