"""Generation of SQL detection queries from CFDs.

Following the SQL-based technique of the paper's companion article (Fan et
al., TODS 2008), each (merged) CFD ``phi = (R: X -> A, Tp)`` is compiled into
two SQL queries that run against the data relation ``R`` joined with the
relational encoding of the pattern tableau ``Tp``:

* ``Q_C`` (single-tuple violations): finds tuples that match the LHS pattern
  of some pattern tuple whose RHS is a constant, but carry a different RHS
  value;
* ``Q_V`` (multi-tuple violations): groups the tuples matching the LHS
  pattern of some pattern tuple whose RHS is the wildcard ``_`` by their LHS
  values and keeps the groups with more than one distinct RHS value.

Wildcards are encoded as SQL NULL inside the tableau relation (a constant
whose value is literally ``'_'`` therefore cannot be misread as one), so
the matching predicate for an LHS attribute ``X`` is
``(tab.X IS NULL OR tab.X = t.X)``.  For non-string attributes the data
side is rendered as a string through the backend's
:class:`~repro.backends.dialect.SqlDialect` (``CONCAT(...)`` on the embedded
engine, ``CAST(... AS TEXT)`` on SQLite), so the comparison happens on the
string encoding used by the tableau.  The generator is dialect-aware: the
same :class:`DetectionQueries` run unmodified on every registered backend.

Beyond the legacy tableau-joined queries the generator compiles two further
*detection plan families*, selected by ``detect_plan``:

* ``sargable`` — each tableau pattern row becomes its own statement whose
  constant LHS positions render as parameter-bound equalities
  (``t.A = ?``), riding the auto-built CFD-LHS index the way the covering
  members plan already does; wildcard-only patterns collapse into a single
  grouped query (per-pattern statements with identical SQL are emitted
  once, labelled with the lowest pattern index).  Statement kinds:
  ``q_c_sargable`` / ``q_v_sargable``.
* ``window`` — ``Q_C`` keeps the sargable specialization, but ``Q_V``
  becomes a *one-pass* plan that returns the violating groups **and**
  their member rows in a single statement, eliminating the
  detect→covering-members round trip.  On dialects with true DISTINCT
  window aggregates it is ``COUNT(DISTINCT rhs) OVER (PARTITION BY
  lhs...)``; SQLite (which rejects DISTINCT in window functions at every
  version) gets the JOIN-on-aggregate rewrite.  Statement kind:
  ``q_window``.

``detect_plan="auto"`` resolves to ``window`` where the dialect can
evaluate it (SQLite 3.25+) and falls back to ``legacy`` elsewhere (the
embedded engine, old SQLite); an explicit ``window`` request on an
incapable dialect falls back the same way.  ``sargable`` runs on every
dialect.  The resolved variant is part of every prepared-plan cache key,
so flipping ``detect_plan`` mid-session can never serve a stale shape.

On dialects that support query parameters, inline literal values (pattern
constants in the specialized plans) travel out-of-band as ``?``
parameters — SQL strings never embed data values there.  The in-memory
dialect keeps the legacy inline quoting (:func:`_quote`).

Delta variants of the queries (the ``delta_plans_*`` family) restrict
re-evaluation to the tuples / LHS-value groups an update batch touched.
The *shape* of that restriction is dialect-branched:

* affected tids and single-attribute group keys always travel as a flat
  ``IN (?, ?, ...)`` list (both engines parse it, and it is one expression
  node regardless of length);
* multi-attribute group keys use a row-value semi-join —
  ``(t.X1, t.X2) IN (VALUES (?, ?), ...)`` — on dialects that support row
  values (SQLite 3.15+), which lets the engine drive the probe through the
  CFD-LHS index; other dialects (the embedded engine) keep the portable
  OR-of-conjunctions form, rendered through the dialect's NULL-safe
  equality so a bound NULL can never silently drop a disjunct.

Chunking is driven by the dialect's *parameter budget*
(:attr:`~repro.backends.dialect.SqlDialect.max_parameters`): each emitted
statement binds at most that many values, however wide the CFD's LHS is.
The portable OR form is additionally capped at
:attr:`~repro.backends.dialect.SqlDialect.max_or_terms` disjuncts, because
both engines bound their expression-tree depth.

Two plan-quality mechanisms sit on top of the query builders:

* a *prepared-plan cache* — every built query is memoised per generator,
  keyed by (CFD, tableau, RHS attribute, chunk shape), so the per-chunk
  delta statements the batch and incremental detectors re-issue are
  rendered once.  :meth:`DetectionSqlGenerator.invalidate_plans` drops the
  plans tied to one materialised tableau; the detectors call it whenever
  they drop or replace a ``__semandaq_*`` tableau so a re-registered CFD
  can never reuse a stale plan;
* a *covering members plan* (:meth:`covering_members_query`) — member
  enumeration for violating LHS groups without the tableau join: the
  group restriction already fixes the LHS values, and pattern-LHS
  applicability is a function of those values alone, so the query reduces
  to the restriction plus the non-NULL RHS guard.  Its predicates are
  plain equalities on the LHS attributes, which lets SQLite drive the
  probe straight off the auto-built CFD-LHS index (``_tid`` rides along
  in every index entry) instead of scanning through the non-sargable
  wildcard-match predicate of the tableau-joined form.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..backends.dialect import MEMORY_DIALECT, SqlDialect
from ..core.cfd import CFD
from ..core.tableau import PATTERN_ID_COLUMN
from ..engine.types import DataType, RelationSchema
from ..errors import DetectionError
from ..obs.telemetry import NULL_TELEMETRY, Telemetry

#: alias used for the data relation in generated queries
DATA_ALIAS = "t"
#: alias used for the tableau relation in generated queries
TABLEAU_ALIAS = "tab"

#: delta-plan policies: ``auto`` lets the dialect pick the restriction
#: shape, ``portable`` forces the OR-of-conjunctions form everywhere
DELTA_PLANS = ("auto", "portable")

#: detection plan families: ``auto`` picks per dialect capability,
#: ``legacy`` keeps the tableau-joined queries, ``sargable`` specializes
#: per pattern row with index-friendly constant equalities, ``window``
#: adds the one-pass group+members ``Q_V``
DETECT_PLANS = ("auto", "legacy", "sargable", "window")

#: environment switch pre-selecting the detection plan family (used by CI
#: to force the legacy shape on a modern library); an explicit
#: ``detect_plan`` argument always wins over it
DETECT_PLAN_ENV = "SEMANDAQ_DETECT_PLAN"

#: column-alias prefix for the LHS values a delta ``Q_C`` carries so the
#: caller can assemble violation reports without touching the data store
LHS_COLUMN_PREFIX = "lhs_"


def default_detect_plan() -> str:
    """The detection plan family used when the caller does not pick one.

    ``SEMANDAQ_DETECT_PLAN`` (when set to a known family) overrides the
    ``auto`` default, so a CI leg can pin every detector in a process to
    one plan shape without threading configuration through each test.
    """
    value = os.environ.get(DETECT_PLAN_ENV, "").strip().lower()
    if value in DETECT_PLANS:
        return value
    return "auto"


def resolve_detect_plan(requested: str, dialect: SqlDialect) -> str:
    """Resolve a requested plan family against the dialect's capabilities.

    ``legacy`` and ``sargable`` run everywhere.  ``window`` (and ``auto``,
    which prefers it) needs window functions or DISTINCT window
    aggregates; on a dialect with neither — the embedded engine, SQLite
    before 3.25 — both fall back cleanly to ``legacy`` so the five-path
    parity guarantees hold on every combination.
    """
    if requested not in DETECT_PLANS:
        raise DetectionError(
            f"unknown detect_plan {requested!r}; "
            f"expected one of {', '.join(DETECT_PLANS)}"
        )
    if requested in ("legacy", "sargable"):
        return requested
    if dialect.supports_window_functions or dialect.supports_count_distinct_over:
        return "window"
    return "legacy"


def _quote(value: str) -> str:
    """Inline-quote a literal for the in-memory dialect (no parameter channel)."""
    return "'" + str(value).replace("'", "''") + "'"


@dataclass(frozen=True)
class SqlQuery:
    """One generated query: SQL text plus its bound parameter values.

    ``parameters`` is empty on dialects without parameter support (values
    are inlined) and for queries whose placeholders are bound by the caller
    at execution time (the group-members query).  ``rhs_attribute`` names
    the RHS attribute a ``Q_V`` query detects disagreements on (``None``
    for the other query kinds).  ``kind`` is the statement-kind tag the
    telemetry layer buckets executions under (``q_c``, ``q_v``,
    ``q_c_sargable``, ``q_window``, ``delta_single``, ``covering_members``,
    ...); detectors announce it to the instrumented backend via
    :meth:`~repro.obs.telemetry.Telemetry.tag_statements`.
    ``pattern_index`` is set on the per-pattern specialized plans (the
    sargable and window families), whose statements carry no
    ``pattern_id`` column — the pattern is implicit in the statement.
    """

    sql: str
    parameters: Tuple[Any, ...] = ()
    rhs_attribute: Optional[str] = None
    kind: Optional[str] = None
    pattern_index: Optional[int] = None

    def __str__(self) -> str:
        return self.sql

    def __contains__(self, fragment: str) -> bool:
        return fragment in self.sql


@dataclass(frozen=True)
class DetectionQueries:
    """The generated SQL for one CFD: tableau name plus the queries.

    A merged CFD can carry wildcard patterns on several RHS attributes;
    ``multi_sqls`` holds one ``Q_V`` per such attribute (each query's
    ``rhs_attribute`` says which one it covers).
    """

    cfd_id: str
    tableau_name: str
    single_sql: Optional[SqlQuery]
    multi_sqls: Tuple[SqlQuery, ...]
    group_members_sql: Optional[SqlQuery]

    @property
    def multi_sql(self) -> Optional[SqlQuery]:
        """The first ``Q_V`` query (kept for single-RHS callers)."""
        return self.multi_sqls[0] if self.multi_sqls else None

    def all_sql(self) -> List[str]:
        """Every generated query's SQL text, for logging/inspection."""
        return [
            query.sql
            for query in (self.single_sql,) + self.multi_sqls
            if query
        ]


class DetectionSqlGenerator:
    """Compiles CFDs into detection SQL against a given data relation schema.

    ``dialect`` selects the SQL flavour; it defaults to the embedded
    engine's dialect so existing callers keep their behaviour.
    ``delta_plan`` selects the affected-group restriction shape of the
    delta queries: ``"auto"`` (default) branches on the dialect's
    capabilities, ``"portable"`` forces the OR-of-conjunctions form even
    where row values are available (the debugging / fallback policy).
    ``detect_plan`` selects the detection plan family (see
    :data:`DETECT_PLANS`); ``None`` means :func:`default_detect_plan`
    (the ``SEMANDAQ_DETECT_PLAN`` environment switch or ``auto``).
    """

    def __init__(
        self,
        schema: RelationSchema,
        dialect: Optional[SqlDialect] = None,
        delta_plan: str = "auto",
        telemetry: Optional["Telemetry"] = None,
        detect_plan: Optional[str] = None,
    ):
        if delta_plan not in DELTA_PLANS:
            raise DetectionError(
                f"unknown delta_plan {delta_plan!r}; "
                f"expected one of {', '.join(DELTA_PLANS)}"
            )
        self.schema = schema
        self.dialect = dialect or MEMORY_DIALECT
        self.delta_plan = delta_plan
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: the requested plan family and its dialect-resolved variant;
        #: :meth:`set_detect_plan` re-resolves both
        self.requested_detect_plan = (
            default_detect_plan() if detect_plan is None else detect_plan
        )
        self.detect_plan = resolve_detect_plan(
            self.requested_detect_plan, self.dialect
        )
        #: prepared-plan cache: (kind, cfd, tableau, rhs, chunk shape) -> query.
        #: SqlQuery is frozen, so cached plans are safe to share; entries
        #: scoped to a tableau are dropped by :meth:`invalidate_plans`.
        self._plan_cache: Dict[Tuple[Any, ...], Optional[SqlQuery]] = {}
        #: tableau name -> the CFD it was last materialised for (see
        #: :meth:`claim_tableau`)
        self._tableau_owners: Dict[str, CFD] = {}
        #: guards the cache, owner map and hit/miss counters: serving-layer
        #: worker threads share one generator per relation, and a lost
        #: update on the dicts (or a build raced with an invalidation)
        #: would serve a plan for a tableau another CFD now occupies.
        #: Re-entrant because ``claim_tableau`` calls ``invalidate_plans``.
        self._cache_lock = threading.RLock()
        #: cache telemetry (benchmarks and tests read these)
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # -- prepared-plan cache -----------------------------------------------------

    def set_detect_plan(self, detect_plan: str) -> None:
        """Switch the plan family mid-session.

        The resolved variant is appended to every cache key, so plans
        compiled under the previous family are simply never matched again —
        a flip can serve a stale shape on no code path.
        """
        self.requested_detect_plan = detect_plan
        self.detect_plan = resolve_detect_plan(detect_plan, self.dialect)

    def _cached_plan(self, key: Tuple[Any, ...], build) -> Optional[SqlQuery]:
        """Memoise one built query under ``key`` (None results included).

        ``key[2]`` is always the tableau name the plan is scoped to (or
        ``None`` for tableau-independent plans), which is what
        :meth:`invalidate_plans` sweeps on.  The resolved plan variant is
        appended to every key, so two families can never share an entry
        and the hit/miss counters account per variant
        (``plan_cache.hits.<variant>``).
        """
        key = key + (self.detect_plan,)
        with self._cache_lock:
            if key in self._plan_cache:
                self.plan_cache_hits += 1
                self.telemetry.inc("plan_cache.hits")
                self.telemetry.inc(f"plan_cache.hits.{self.detect_plan}")
                return self._plan_cache[key]
            self.plan_cache_misses += 1
            self.telemetry.inc("plan_cache.misses")
            self.telemetry.inc(f"plan_cache.misses.{self.detect_plan}")
            plan = build()
            self._plan_cache[key] = plan
            return plan

    def invalidate_plans(self, tableau_name: Optional[str] = None) -> None:
        """Drop cached plans scoped to ``tableau_name`` (or all of them).

        The detectors call this whenever they drop or re-materialise
        (``replace=True``) a ``__semandaq_*`` tableau: a tableau name can
        be reused by a different CFD — e.g. the batch detector's
        positional names, or a re-registered CFD under the same name — and
        a plan compiled for the previous occupant (including a cached
        "no ``Q_C`` exists" ``None``) must not survive the swap.
        """
        with self._cache_lock:
            if tableau_name is None:
                if self._plan_cache:
                    self.telemetry.inc(
                        "plan_cache.invalidations", len(self._plan_cache)
                    )
                self._plan_cache.clear()
                self._tableau_owners.clear()
                return
            stale = [key for key in self._plan_cache if key[2] == tableau_name]
            for key in stale:
                del self._plan_cache[key]
            if stale:
                self.telemetry.inc("plan_cache.invalidations", len(stale))
            self._tableau_owners.pop(tableau_name, None)

    def claim_tableau(self, tableau_name: str, cfd: CFD) -> None:
        """Record that ``tableau_name`` is being (re-)materialised for ``cfd``.

        Call before ``add_relation(tableau, replace=True)``.  When the name
        last hosted a *different* CFD — the batch detector's positional
        names get reused across ``detect`` calls, and a re-registered CFD
        can reclaim its old name — every plan scoped to the name is
        invalidated.  Re-materialising the *same* CFD keeps its plans: the
        tableau content is a pure function of the CFD, so the cached SQL
        stays valid and repeated detections reuse it.
        """
        with self._cache_lock:
            owner = self._tableau_owners.get(tableau_name)
            if owner is not None and owner == cfd:
                return
            self.invalidate_plans(tableau_name)
            self._tableau_owners[tableau_name] = cfd

    def plan_cache_size(self) -> int:
        """Number of cached prepared plans (for tests and benchmarks)."""
        with self._cache_lock:
            return len(self._plan_cache)

    # -- helpers ----------------------------------------------------------------

    def _data_column(self, attribute: str) -> str:
        """Render the data-side column as the tableau's string encoding."""
        dtype = self.schema.attribute(attribute).dtype
        return self.dialect.string_expr(f"{DATA_ALIAS}.{attribute}", dtype)

    def _bind_literal(self, value: str, params: List[Any]) -> str:
        """Render a string literal: a ``?`` parameter when supported."""
        if self.dialect.supports_parameters:
            params.append(value)
            return "?"
        return _quote(value)

    def _match_predicate(self, attribute: str) -> str:
        """The per-attribute LHS matching predicate against the tableau.

        NULL is the wildcard encoding, so a tableau cell matches when it is
        NULL (wildcard) or equals the data value's string encoding; a
        constant whose value is literally ``'_'`` compares like any other.
        """
        tab_column = f"{TABLEAU_ALIAS}.{attribute}"
        data_column = self._data_column(attribute)
        return f"({tab_column} IS NULL OR {tab_column} = {data_column})"

    def _lhs_conditions(self, cfd: CFD) -> List[str]:
        conditions: List[str] = []
        for attribute in cfd.lhs:
            conditions.append(f"{DATA_ALIAS}.{attribute} IS NOT NULL")
            conditions.append(self._match_predicate(attribute))
        return conditions

    # -- query generation ---------------------------------------------------------

    def single_tuple_query(
        self, cfd: CFD, tableau_name: str, include_lhs: bool = False
    ) -> Optional[SqlQuery]:
        """``Q_C``: detect tuples violating a constant RHS pattern on their own.

        Returns ``None`` when no pattern tuple of the CFD has a constant
        RHS.  ``include_lhs`` additionally selects the tuple's LHS values
        (``lhs_*`` columns), which lets both detectors assemble reports
        from backend rows alone.
        """
        return self._cached_plan(
            ("single", cfd, tableau_name, None, 0, include_lhs),
            lambda: self._single_query(cfd, tableau_name, include_lhs=include_lhs),
        )

    def single_tuple_query_delta(
        self, cfd: CFD, tableau_name: str, tid_count: int
    ) -> Optional[SqlQuery]:
        """Delta ``Q_C``: re-check only the ``tid_count`` affected tuples.

        The incremental detector's backend-resident mode runs this after a
        :class:`~repro.backends.delta.DeltaBatch` ships: only the tuples the
        batch touched can have gained or lost a single-tuple violation, so
        the query appends a tid restriction with one ``?`` placeholder per
        affected tid.  The caller binds ``query.parameters`` followed by the
        tids themselves (the delta placeholders come last).
        """
        if tid_count < 1:
            raise ValueError("tid_count must be at least 1")
        return self._cached_plan(
            ("single_delta", cfd, tableau_name, None, tid_count, True),
            lambda: self._single_query(cfd, tableau_name, delta_tid_count=tid_count),
        )

    def _single_query(
        self,
        cfd: CFD,
        tableau_name: str,
        delta_tid_count: Optional[int] = None,
        include_lhs: bool = False,
    ) -> Optional[SqlQuery]:
        rhs_constant_exists = any(
            cfd.rhs_pattern(pattern).value(attr).is_constant
            for pattern in cfd.patterns
            for attr in cfd.rhs
        )
        if not rhs_constant_exists:
            return None
        params: List[Any] = []
        conditions = self._lhs_conditions(cfd)
        rhs_parts: List[str] = []
        for attribute in cfd.rhs:
            tab_column = f"{TABLEAU_ALIAS}.{attribute}"
            data_column = self._data_column(attribute)
            # a non-NULL tableau cell is a constant RHS (NULL encodes the
            # wildcard); the tuple violates it when its value differs or
            # is NULL
            rhs_parts.append(
                f"({tab_column} IS NOT NULL AND "
                f"({data_column} <> {tab_column} OR {DATA_ALIAS}.{attribute} IS NULL))"
            )
        conditions.append("(" + " OR ".join(rhs_parts) + ")")
        if delta_tid_count is not None:
            # The caller-bound tid placeholders come last, *after* every
            # generator-bound wildcard placeholder, so binding order is
            # always ``query.parameters`` followed by the affected tids.
            # A flat IN list is one expression node on both engines, so tid
            # chunks are bounded by the parameter budget alone.
            placeholders = ", ".join("?" for _ in range(delta_tid_count))
            conditions.append(f"{DATA_ALIAS}._tid IN ({placeholders})")
        where = " AND ".join(conditions)
        select_columns = [
            f"{DATA_ALIAS}._tid AS tid",
            f"{TABLEAU_ALIAS}.{PATTERN_ID_COLUMN} AS pattern_id",
        ]
        if delta_tid_count is not None or include_lhs:
            # The delta form also carries the tuple's LHS values, so the
            # incremental detector can assemble violation reports entirely
            # from backend rows (no working-store reads).
            for attribute in cfd.lhs:
                select_columns.append(
                    f"{DATA_ALIAS}.{attribute} AS {LHS_COLUMN_PREFIX}{attribute}"
                )
        for attribute in cfd.rhs:
            select_columns.append(f"{TABLEAU_ALIAS}.{attribute} AS expected_{attribute}")
        sql = (
            f"SELECT {', '.join(select_columns)}\n"
            f"FROM {cfd.relation} {DATA_ALIAS}, {tableau_name} {TABLEAU_ALIAS}\n"
            f"WHERE {where}"
        )
        kind = "q_c" if delta_tid_count is None else "delta_single"
        return SqlQuery(sql, tuple(params), kind=kind)

    def wildcard_rhs_attributes(self, cfd: CFD) -> List[str]:
        """RHS attributes carrying the wildcard in at least one pattern."""
        return [
            attr
            for attr in cfd.rhs
            if any(
                cfd.rhs_pattern(pattern).value(attr).is_wildcard
                for pattern in cfd.patterns
            )
        ]

    def multi_tuple_queries(self, cfd: CFD, tableau_name: str) -> List[SqlQuery]:
        """All ``Q_V`` queries of ``cfd``: one per wildcard RHS attribute.

        A merged CFD whose tableau has wildcard patterns on several RHS
        attributes needs one grouping query per such attribute — a single
        query over the first one would silently miss disagreements on the
        others.  Empty when the CFD has no wildcard RHS position or an
        empty LHS.
        """
        if not cfd.lhs:
            return []
        return [
            self._cached_plan(
                ("multi", cfd, tableau_name, attr, 0),
                lambda attr=attr: self._multi_tuple_query_for(cfd, tableau_name, attr),
            )
            for attr in self.wildcard_rhs_attributes(cfd)
        ]

    def multi_tuple_query(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: Optional[str] = None,
    ) -> Optional[SqlQuery]:
        """``Q_V``: find LHS groups with >1 distinct value on a wildcard RHS.

        Covers ``rhs_attribute`` (default: the first wildcard RHS
        attribute).  Returns ``None`` when the CFD has no wildcard RHS
        position or an empty LHS; use :meth:`multi_tuple_queries` to cover
        every wildcard RHS attribute of a merged CFD.
        """
        if not cfd.lhs:
            return None
        wildcard_rhs = self.wildcard_rhs_attributes(cfd)
        if not wildcard_rhs:
            return None
        if rhs_attribute is None:
            rhs_attribute = wildcard_rhs[0]
        elif rhs_attribute not in wildcard_rhs:
            return None
        return self._cached_plan(
            ("multi", cfd, tableau_name, rhs_attribute, 0),
            lambda: self._multi_tuple_query_for(cfd, tableau_name, rhs_attribute),
        )

    def multi_tuple_query_delta(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: str,
        group_count: int,
    ) -> SqlQuery:
        """Delta ``Q_V``: re-check only the ``group_count`` affected LHS groups.

        After a :class:`~repro.backends.delta.DeltaBatch` ships, only groups
        whose LHS values match a touched tuple's old or new LHS values can
        have changed violation status.  The query appends a group
        restriction (see :meth:`uses_row_values` for its dialect-branched
        shape); the caller binds ``query.parameters`` followed by the
        groups' LHS values flattened with :meth:`flatten_group_keys` (the
        delta placeholders come last; the portable NULL-safe form repeats
        each value).  Prefer :meth:`delta_plans_multi`, which also chunks
        by the dialect's parameter budget and returns bound queries.
        """
        if not cfd.lhs:
            raise ValueError("delta Q_V needs a non-empty LHS")
        if group_count < 1:
            raise ValueError("group_count must be at least 1")
        return self._cached_plan(
            ("multi_delta", cfd, tableau_name, rhs_attribute, group_count),
            lambda: self._multi_tuple_query_for(
                cfd, tableau_name, rhs_attribute, delta_group_count=group_count
            ),
        )

    def uses_row_values(self, cfd: CFD) -> bool:
        """Whether ``cfd``'s affected-group restriction is a row-value semi-join.

        True only for a multi-attribute LHS on a dialect with row-value
        support under the ``auto`` plan policy; single-attribute LHS keys
        always use the flat ``IN`` list, and the ``portable`` policy forces
        the OR-of-conjunctions form everywhere.
        """
        return (
            len(cfd.lhs) > 1
            and self.delta_plan == "auto"
            and self.dialect.supports_row_values
        )

    def _group_restriction(self, cfd: CFD, group_count: int) -> str:
        """The affected-group restriction over ``group_count`` LHS-value groups.

        All placeholders are caller-bound (the groups' LHS values flattened
        in ``cfd.lhs`` order).  NULL never appears among the bound values —
        a tuple with a NULL LHS cell belongs to no group on any detection
        path — but the portable OR form still renders its equalities
        through the dialect's NULL-safe comparison, so a stray NULL matches
        the way the native detector's ``None == None`` does instead of
        silently deactivating a disjunct.
        """
        lhs = cfd.lhs
        if len(lhs) == 1:
            placeholders = ", ".join("?" for _ in range(group_count))
            return f"{DATA_ALIAS}.{lhs[0]} IN ({placeholders})"
        if self.uses_row_values(cfd):
            row = ", ".join(f"{DATA_ALIAS}.{attr}" for attr in lhs)
            value_row = "(" + ", ".join("?" for _ in lhs) + ")"
            values = ", ".join(value_row for _ in range(group_count))
            return f"({row}) IN (VALUES {values})"
        conjunction = " AND ".join(
            self.dialect.null_safe_eq(f"{DATA_ALIAS}.{attr}", "?") for attr in lhs
        )
        return (
            "(" + " OR ".join(f"({conjunction})" for _ in range(group_count)) + ")"
        )

    def _multi_tuple_query_for(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: str,
        delta_group_count: Optional[int] = None,
    ) -> SqlQuery:
        params: List[Any] = []
        conditions = self._lhs_conditions(cfd)
        # a NULL tableau cell on the RHS attribute is the wildcard — the
        # pattern rows Q_V groups under
        conditions.append(f"{TABLEAU_ALIAS}.{rhs_attribute} IS NULL")
        conditions.append(f"{DATA_ALIAS}.{rhs_attribute} IS NOT NULL")
        if delta_group_count is not None:
            conditions.append(self._group_restriction(cfd, delta_group_count))
        group_columns = [f"{DATA_ALIAS}.{attr}" for attr in cfd.lhs]
        group_columns.append(f"{TABLEAU_ALIAS}.{PATTERN_ID_COLUMN}")
        select_columns = [
            f"{DATA_ALIAS}.{attr} AS {attr}" for attr in cfd.lhs
        ]
        select_columns.append(f"{TABLEAU_ALIAS}.{PATTERN_ID_COLUMN} AS pattern_id")
        select_columns.append(
            f"COUNT(DISTINCT {self._data_column(rhs_attribute)}) AS distinct_rhs"
        )
        select_columns.append(f"COUNT(*) AS group_size")
        sql = (
            f"SELECT {', '.join(select_columns)}\n"
            f"FROM {cfd.relation} {DATA_ALIAS}, {tableau_name} {TABLEAU_ALIAS}\n"
            f"WHERE {' AND '.join(conditions)}\n"
            f"GROUP BY {', '.join(group_columns)}\n"
            f"HAVING COUNT(DISTINCT {self._data_column(rhs_attribute)}) > 1"
        )
        kind = "q_v" if delta_group_count is None else "delta_multi"
        return SqlQuery(sql, tuple(params), rhs_attribute=rhs_attribute, kind=kind)

    # -- specialized plan families (sargable / window) -----------------------------

    @property
    def one_pass_multi(self) -> bool:
        """Whether the resolved family's ``Q_V`` returns member rows directly.

        True for the ``window`` family, whose one-pass statements make the
        covering-members round trip unnecessary: callers bucket the
        ``(tid, lhs_*)`` rows per group key instead of enumerating members
        in a second query wave.
        """
        return self.detect_plan == "window"

    def _constant_single_patterns(self, cfd: CFD) -> List[int]:
        """Pattern indices carrying at least one constant RHS position."""
        return [
            index
            for index, pattern in enumerate(cfd.patterns)
            if any(
                cfd.rhs_pattern(pattern).value(attr).is_constant
                for attr in cfd.rhs
            )
        ]

    def _wildcard_multi_patterns(self, cfd: CFD, rhs_attribute: str) -> List[int]:
        """Pattern indices whose value on ``rhs_attribute`` is the wildcard."""
        return [
            index
            for index, pattern in enumerate(cfd.patterns)
            if cfd.rhs_pattern(pattern).value(rhs_attribute).is_wildcard
        ]

    def _pattern_lhs_conditions(
        self, cfd: CFD, pattern_index: int, params: List[Any]
    ) -> List[str]:
        """Per-pattern LHS conditions with sargable constant equalities.

        A constant position renders as ``<string-encoding> = ?`` binding
        the constant's tableau encoding — for string attributes that is a
        bare ``t.X = ?`` the auto-built CFD-LHS index answers directly
        (the trick the covering members plan proved).  Equality implies
        non-NULL, so the explicit guard is kept only for wildcard
        positions, which any non-NULL value matches.
        """
        pattern = cfd.patterns[pattern_index]
        conditions: List[str] = []
        for attribute in cfd.lhs:
            value = pattern.value(attribute)
            if value.is_constant:
                conditions.append(
                    f"{self._data_column(attribute)} = "
                    f"{self._bind_literal(str(value.constant), params)}"
                )
            else:
                conditions.append(f"{DATA_ALIAS}.{attribute} IS NOT NULL")
        return conditions

    def _sargable_single_for(
        self,
        cfd: CFD,
        pattern_index: int,
        delta_tid_count: Optional[int] = None,
    ) -> SqlQuery:
        """Per-pattern sargable ``Q_C``: no tableau join, constants bound.

        The pattern is implicit in the statement (``pattern_index`` rides
        on the returned :class:`SqlQuery`), so the select list is just
        ``tid`` plus the ``lhs_*`` carry columns.  The delta form appends
        the caller-bound tid restriction after the constant binds.
        """
        pattern = cfd.patterns[pattern_index]
        rhs = cfd.rhs_pattern(pattern)
        params: List[Any] = []
        conditions = self._pattern_lhs_conditions(cfd, pattern_index, params)
        rhs_parts: List[str] = []
        for attribute in cfd.rhs:
            value = rhs.value(attribute)
            if not value.is_constant:
                continue
            expected = self._bind_literal(str(value.constant), params)
            rhs_parts.append(
                f"({self._data_column(attribute)} <> {expected} "
                f"OR {DATA_ALIAS}.{attribute} IS NULL)"
            )
        conditions.append("(" + " OR ".join(rhs_parts) + ")")
        if delta_tid_count is not None:
            placeholders = ", ".join("?" for _ in range(delta_tid_count))
            conditions.append(f"{DATA_ALIAS}._tid IN ({placeholders})")
        select_columns = [f"{DATA_ALIAS}._tid AS tid"] + [
            f"{DATA_ALIAS}.{attr} AS {LHS_COLUMN_PREFIX}{attr}" for attr in cfd.lhs
        ]
        sql = (
            f"SELECT {', '.join(select_columns)}\n"
            f"FROM {cfd.relation} {DATA_ALIAS}\n"
            f"WHERE {' AND '.join(conditions)}"
        )
        return SqlQuery(
            sql, tuple(params), kind="q_c_sargable", pattern_index=pattern_index
        )

    def _sargable_multi_for(
        self,
        cfd: CFD,
        rhs_attribute: str,
        pattern_index: int,
        delta_group_count: Optional[int] = None,
    ) -> SqlQuery:
        """Per-pattern sargable ``Q_V``: grouped over the data relation alone.

        Same row shape as the legacy ``Q_V`` minus the ``pattern_id``
        column (implicit in the statement); member enumeration still goes
        through the covering members plan.
        """
        params: List[Any] = []
        conditions = self._pattern_lhs_conditions(cfd, pattern_index, params)
        conditions.append(f"{DATA_ALIAS}.{rhs_attribute} IS NOT NULL")
        if delta_group_count is not None:
            conditions.append(self._group_restriction(cfd, delta_group_count))
        distinct = f"COUNT(DISTINCT {self._data_column(rhs_attribute)})"
        select_columns = [f"{DATA_ALIAS}.{attr} AS {attr}" for attr in cfd.lhs]
        select_columns.append(f"{distinct} AS distinct_rhs")
        select_columns.append("COUNT(*) AS group_size")
        group_columns = [f"{DATA_ALIAS}.{attr}" for attr in cfd.lhs]
        sql = (
            f"SELECT {', '.join(select_columns)}\n"
            f"FROM {cfd.relation} {DATA_ALIAS}\n"
            f"WHERE {' AND '.join(conditions)}\n"
            f"GROUP BY {', '.join(group_columns)}\n"
            f"HAVING {distinct} > 1"
        )
        return SqlQuery(
            sql,
            tuple(params),
            rhs_attribute=rhs_attribute,
            kind="q_v_sargable",
            pattern_index=pattern_index,
        )

    def _window_multi_for(
        self,
        cfd: CFD,
        rhs_attribute: str,
        pattern_index: int,
        delta_group_count: Optional[int] = None,
    ) -> SqlQuery:
        """Per-pattern one-pass ``Q_V``: violating groups *and* members.

        Rows come back as ``(tid, lhs_*)`` — one per member of a violating
        group — so the detect→covering-members round trip disappears.  On
        a dialect with true DISTINCT window aggregates the statement is a
        single scan filtered on ``COUNT(DISTINCT rhs) OVER (PARTITION BY
        lhs...)``; SQLite rejects DISTINCT in window functions, so it gets
        the JOIN-on-aggregate rewrite: the grouped ``HAVING`` subquery
        finds the violating keys and the self-join pulls their members
        (LHS equality to a violating key implies the pattern's constants
        and non-NULL LHS by construction — the covering-members argument).
        """
        params: List[Any] = []
        inner_conditions = self._pattern_lhs_conditions(cfd, pattern_index, params)
        inner_conditions.append(f"{DATA_ALIAS}.{rhs_attribute} IS NOT NULL")
        if delta_group_count is not None:
            inner_conditions.append(self._group_restriction(cfd, delta_group_count))
        distinct = f"COUNT(DISTINCT {self._data_column(rhs_attribute)})"
        member_columns = [f"{DATA_ALIAS}._tid AS tid"] + [
            f"{DATA_ALIAS}.{attr} AS {LHS_COLUMN_PREFIX}{attr}" for attr in cfd.lhs
        ]
        if self.dialect.supports_count_distinct_over:
            partition = ", ".join(f"{DATA_ALIAS}.{attr}" for attr in cfd.lhs)
            inner_select = member_columns + [
                f"{distinct} OVER (PARTITION BY {partition}) AS distinct_rhs"
            ]
            outer_columns = ["tid"] + [
                f"{LHS_COLUMN_PREFIX}{attr}" for attr in cfd.lhs
            ]
            sql = (
                f"SELECT {', '.join(outer_columns)}\n"
                f"FROM (SELECT {', '.join(inner_select)}\n"
                f"FROM {cfd.relation} {DATA_ALIAS}\n"
                f"WHERE {' AND '.join(inner_conditions)}) w\n"
                f"WHERE w.distinct_rhs > 1"
            )
        else:
            group_select = [f"{DATA_ALIAS}.{attr} AS {attr}" for attr in cfd.lhs]
            group_columns = [f"{DATA_ALIAS}.{attr}" for attr in cfd.lhs]
            join_on = " AND ".join(
                f"{DATA_ALIAS}.{attr} = g.{attr}" for attr in cfd.lhs
            )
            sql = (
                f"SELECT {', '.join(member_columns)}\n"
                f"FROM {cfd.relation} {DATA_ALIAS} JOIN (\n"
                f"SELECT {', '.join(group_select)}\n"
                f"FROM {cfd.relation} {DATA_ALIAS}\n"
                f"WHERE {' AND '.join(inner_conditions)}\n"
                f"GROUP BY {', '.join(group_columns)}\n"
                f"HAVING {distinct} > 1\n"
                f") g ON {join_on}\n"
                f"WHERE {DATA_ALIAS}.{rhs_attribute} IS NOT NULL"
            )
        return SqlQuery(
            sql,
            tuple(params),
            rhs_attribute=rhs_attribute,
            kind="q_window",
            pattern_index=pattern_index,
        )

    def plan_single_queries(
        self, cfd: CFD, tableau_name: str, include_lhs: bool = True
    ) -> List[SqlQuery]:
        """The ``Q_C`` statements of the resolved plan family.

        ``legacy``: the single tableau-joined query.  ``sargable`` and
        ``window``: one statement per constant-RHS pattern row; pattern
        rows that render to an identical statement (wildcard-only LHS with
        the same expected RHS, or patterns made identical by the sub-CFD
        restriction) are emitted once, labelled with the lowest pattern
        index — the rows they'd return are identical, and the lowest index
        is what every detection path reports.
        """
        if self.detect_plan == "legacy":
            query = self.single_tuple_query(cfd, tableau_name, include_lhs=include_lhs)
            return [query] if query is not None else []
        queries: List[SqlQuery] = []
        seen = set()
        for index in self._constant_single_patterns(cfd):
            query = self._cached_plan(
                ("single_sarg", cfd, tableau_name, index, 0),
                lambda index=index: self._sargable_single_for(cfd, index),
            )
            signature = (query.sql, query.parameters)
            if signature in seen:
                continue
            seen.add(signature)
            queries.append(query)
        return queries

    def plan_multi_queries(self, cfd: CFD, tableau_name: str) -> List[SqlQuery]:
        """The ``Q_V`` statements of the resolved plan family.

        One statement per (wildcard RHS attribute × pattern row) for the
        specialized families — deduplicated the same way as
        :meth:`plan_single_queries`; wildcard-only patterns thereby keep a
        single grouped query per RHS attribute.  For the ``window`` family
        the statements are one-pass (see :attr:`one_pass_multi`).
        """
        if self.detect_plan == "legacy":
            return list(self.multi_tuple_queries(cfd, tableau_name))
        if not cfd.lhs:
            return []
        queries: List[SqlQuery] = []
        for rhs_attribute in self.wildcard_rhs_attributes(cfd):
            seen = set()
            for index in self._wildcard_multi_patterns(cfd, rhs_attribute):
                if self.one_pass_multi:
                    query = self._cached_plan(
                        ("multi_window", cfd, tableau_name, (rhs_attribute, index), 0),
                        lambda index=index, rhs=rhs_attribute: self._window_multi_for(
                            cfd, rhs, index
                        ),
                    )
                else:
                    query = self._cached_plan(
                        ("multi_sarg", cfd, tableau_name, (rhs_attribute, index), 0),
                        lambda index=index, rhs=rhs_attribute: self._sargable_multi_for(
                            cfd, rhs, index
                        ),
                    )
                signature = (query.sql, query.parameters)
                if signature in seen:
                    continue
                seen.add(signature)
                queries.append(query)
        return queries

    def plan_delta_single(
        self, cfd: CFD, tableau_name: str, tids: Sequence[int]
    ) -> List[SqlQuery]:
        """Fully-bound restricted ``Q_C`` statements of the resolved family.

        The legacy family delegates to :meth:`delta_plans_single`; the
        specialized families chunk the tid restriction per pattern
        statement under the same parameter budget.
        """
        if self.detect_plan == "legacy":
            return self.delta_plans_single(cfd, tableau_name, tids)
        if not tids:
            return []
        plans: List[SqlQuery] = []
        seen = set()
        for index in self._constant_single_patterns(cfd):
            probe = self._cached_plan(
                ("single_sarg_delta", cfd, tableau_name, index, 1),
                lambda index=index: self._sargable_single_for(
                    cfd, index, delta_tid_count=1
                ),
            )
            signature = (probe.sql, probe.parameters)
            if signature in seen:
                continue
            seen.add(signature)
            size = self._chunk_size(len(probe.parameters), 1, or_form=False)
            for chunk in self._chunked(list(tids), size):
                chunk = self._padded(chunk, size)
                query = self._cached_plan(
                    ("single_sarg_delta", cfd, tableau_name, index, len(chunk)),
                    lambda index=index, count=len(chunk): self._sargable_single_for(
                        cfd, index, delta_tid_count=count
                    ),
                )
                plans.append(
                    SqlQuery(
                        query.sql,
                        tuple(query.parameters) + tuple(chunk),
                        kind=query.kind,
                        pattern_index=query.pattern_index,
                    )
                )
        return plans

    def plan_delta_multi(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: str,
        keys: Sequence[Tuple[Any, ...]],
    ) -> List[SqlQuery]:
        """Fully-bound restricted ``Q_V`` statements of the resolved family.

        The legacy family delegates to :meth:`delta_plans_multi`; the
        specialized families chunk the group restriction per pattern
        statement (the window form restricts its grouped subquery, so the
        one-pass member rows cover exactly the affected groups).
        """
        if self.detect_plan == "legacy":
            return self.delta_plans_multi(cfd, tableau_name, rhs_attribute, keys)
        if not keys or not cfd.lhs:
            return []
        if self.one_pass_multi:
            cache_kind = "multi_window_delta"
            builder = self._window_multi_for
        else:
            cache_kind = "multi_sarg_delta"
            builder = self._sargable_multi_for
        plans: List[SqlQuery] = []
        seen = set()
        for index in self._wildcard_multi_patterns(cfd, rhs_attribute):
            probe = self._cached_plan(
                (cache_kind, cfd, tableau_name, (rhs_attribute, index), 1),
                lambda index=index: builder(
                    cfd, rhs_attribute, index, delta_group_count=1
                ),
            )
            signature = (probe.sql, probe.parameters)
            if signature in seen:
                continue
            seen.add(signature)
            size = self._chunk_size(
                len(probe.parameters),
                len(cfd.lhs) * self._key_binds(cfd),
                or_form=not self._flat_restriction(cfd),
            )
            for chunk in self._chunked(list(keys), size):
                chunk = self._padded(chunk, size)
                query = self._cached_plan(
                    (cache_kind, cfd, tableau_name, (rhs_attribute, index), len(chunk)),
                    lambda index=index, count=len(chunk): builder(
                        cfd, rhs_attribute, index, delta_group_count=count
                    ),
                )
                flattened = self.flatten_group_keys(cfd, chunk)
                plans.append(
                    SqlQuery(
                        query.sql,
                        tuple(query.parameters) + flattened,
                        rhs_attribute=rhs_attribute,
                        kind=query.kind,
                        pattern_index=query.pattern_index,
                    )
                )
        return plans

    def group_members_query(self, cfd: CFD) -> Optional[SqlQuery]:
        """Parameterised query returning the tuples of one violating LHS group.

        The data monitor and the explorer use it to enumerate the members of
        a multi-tuple violation; the ``?`` placeholders are bound by the
        caller to the LHS values (in order) at execution time, so
        ``parameters`` is empty here.
        """
        if not cfd.lhs:
            return None
        conditions = [f"{DATA_ALIAS}.{attr} = ?" for attr in cfd.lhs]
        select_columns = [f"{DATA_ALIAS}._tid AS tid"] + [
            f"{DATA_ALIAS}.{attr} AS {attr}" for attr in cfd.rhs
        ]
        sql = (
            f"SELECT {', '.join(select_columns)}\n"
            f"FROM {cfd.relation} {DATA_ALIAS}\n"
            f"WHERE {' AND '.join(conditions)}"
        )
        return SqlQuery(sql, kind="group_members")

    def group_members_query_delta(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: str,
        group_count: int,
    ) -> SqlQuery:
        """Tableau-joined member enumeration for affected violating groups.

        Where :meth:`group_members_query` filters on the LHS values alone
        and leaves pattern applicability to the caller (a working-store
        scan), this form joins the materialised tableau so membership —
        LHS non-NULL, pattern-constant match, non-NULL RHS — is decided by
        the backend: ``SELECT`` the member tids plus their LHS values for
        every group in the restriction, against one pattern row.

        The caller binds ``query.parameters`` followed by the pattern
        index, then the groups' LHS values flattened in ``cfd.lhs`` order.
        """
        if not cfd.lhs:
            raise ValueError("the group-members query needs a non-empty LHS")
        if group_count < 1:
            raise ValueError("group_count must be at least 1")

        def build() -> SqlQuery:
            params: List[Any] = []
            conditions = self._lhs_conditions(cfd)
            conditions.append(f"{DATA_ALIAS}.{rhs_attribute} IS NOT NULL")
            conditions.append(f"{TABLEAU_ALIAS}.{PATTERN_ID_COLUMN} = ?")
            conditions.append(self._group_restriction(cfd, group_count))
            select_columns = [f"{DATA_ALIAS}._tid AS tid"] + [
                f"{DATA_ALIAS}.{attr} AS {LHS_COLUMN_PREFIX}{attr}" for attr in cfd.lhs
            ]
            sql = (
                f"SELECT {', '.join(select_columns)}\n"
                f"FROM {cfd.relation} {DATA_ALIAS}, {tableau_name} {TABLEAU_ALIAS}\n"
                f"WHERE {' AND '.join(conditions)}"
            )
            return SqlQuery(
                sql, tuple(params), rhs_attribute=rhs_attribute, kind="delta_members"
            )

        return self._cached_plan(
            ("members", cfd, tableau_name, rhs_attribute, group_count), build
        )

    def covering_members_query(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: str,
        group_count: int,
    ) -> SqlQuery:
        """Index-only member enumeration for violating LHS groups.

        The tableau join of :meth:`group_members_query_delta` is redundant
        once the group restriction is in place: a group key carries no
        NULLs (the grouping queries guard every LHS attribute with ``IS
        NOT NULL``), and whether a pattern's LHS constants match is a
        function of the LHS values alone — so every tuple whose LHS equals
        a violating key is applicable by construction.  Membership reduces
        to the group restriction plus the non-NULL RHS guard, with plain
        (typed, parameter-bound) equalities on the LHS attributes that
        SQLite answers straight off the auto-built CFD-LHS index:
        ``_tid`` travels in every index entry and the selected columns are
        exactly ``_tid`` + LHS.  The pattern index is resolved by the
        caller (it only labels the violation), so one enumeration covers
        every pattern.

        ``tableau_name`` does not appear in the SQL; it scopes the cached
        plan to the CFD's materialised tableau for
        :meth:`invalidate_plans`.  All placeholders are caller-bound (the
        groups' LHS values flattened with :meth:`flatten_group_keys`).
        """
        if not cfd.lhs:
            raise ValueError("the covering members query needs a non-empty LHS")
        if group_count < 1:
            raise ValueError("group_count must be at least 1")

        def build() -> SqlQuery:
            conditions = [
                self._group_restriction(cfd, group_count),
                f"{DATA_ALIAS}.{rhs_attribute} IS NOT NULL",
            ]
            select_columns = [f"{DATA_ALIAS}._tid AS tid"] + [
                f"{DATA_ALIAS}.{attr} AS {LHS_COLUMN_PREFIX}{attr}" for attr in cfd.lhs
            ]
            sql = (
                f"SELECT {', '.join(select_columns)}\n"
                f"FROM {cfd.relation} {DATA_ALIAS}\n"
                f"WHERE {' AND '.join(conditions)}"
            )
            return SqlQuery(
                sql, (), rhs_attribute=rhs_attribute, kind="covering_members"
            )

        return self._cached_plan(
            ("covering", cfd, tableau_name, rhs_attribute, group_count), build
        )

    def tid_lhs_query(self, cfd: CFD, tid_count: int) -> SqlQuery:
        """The LHS values of ``tid_count`` tuples, NULL-LHS tuples excluded.

        ``detect_for_tuples`` uses this to derive the affected LHS-value
        groups of a restricted detection without reading the working
        store: rows come back as ``(tid, lhs_*)``, and tuples carrying a
        NULL LHS cell are filtered by the engine (they belong to no group
        on any detection path).  All placeholders are caller-bound (the
        tids); the plan is tableau-independent, so it survives tableau
        re-materialisation.
        """
        if not cfd.lhs:
            raise ValueError("the tid-LHS query needs a non-empty LHS")
        if tid_count < 1:
            raise ValueError("tid_count must be at least 1")

        def build() -> SqlQuery:
            conditions = [f"{DATA_ALIAS}.{attr} IS NOT NULL" for attr in cfd.lhs]
            placeholders = ", ".join("?" for _ in range(tid_count))
            conditions.append(f"{DATA_ALIAS}._tid IN ({placeholders})")
            select_columns = [f"{DATA_ALIAS}._tid AS tid"] + [
                f"{DATA_ALIAS}.{attr} AS {LHS_COLUMN_PREFIX}{attr}" for attr in cfd.lhs
            ]
            sql = (
                f"SELECT {', '.join(select_columns)}\n"
                f"FROM {cfd.relation} {DATA_ALIAS}\n"
                f"WHERE {' AND '.join(conditions)}"
            )
            return SqlQuery(sql, kind="lhs_values")

        return self._cached_plan(("tid_lhs", cfd, None, None, tid_count), build)

    # -- repair-source aggregates ---------------------------------------------------

    def value_freq_query(self, attribute: str) -> SqlQuery:
        """Frequency histogram of one column's non-NULL values.

        The backend-resident repair source uses this to replace the
        repairer's ``_column_frequencies`` scan: one ``GROUP BY`` aggregate
        per attribute, returning ``(value, freq, first_tid)`` rows.
        ``first_tid`` (``MIN(_tid)``) lets the caller order ties exactly
        the way the native ``Counter`` does — first encounter over the
        sorted-tid row iteration — so candidate ranking stays
        oracle-identical.  The plan is tableau-independent and binds
        nothing.
        """
        if attribute not in self.schema.attribute_names:
            raise DetectionError(
                f"unknown attribute {attribute!r} in relation {self.schema.name!r}"
            )

        def build() -> SqlQuery:
            column = f"{DATA_ALIAS}.{attribute}"
            sql = (
                f"SELECT {column} AS value, COUNT(*) AS freq, "
                f"MIN({DATA_ALIAS}._tid) AS first_tid\n"
                f"FROM {self.schema.name} {DATA_ALIAS}\n"
                f"WHERE {column} IS NOT NULL\n"
                f"GROUP BY {column}"
            )
            return SqlQuery(sql, kind="value_freq")

        return self._cached_plan(("value_freq", attribute, None, None, 0), build)

    def group_stats_query(
        self, cfd: CFD, rhs_attribute: str, group_count: int
    ) -> SqlQuery:
        """Aggregate membership statistics for ``group_count`` LHS groups.

        One row per LHS group that has at least one member — LHS matching
        the restriction, RHS non-NULL — carrying ``member_count`` and the
        ``distinct_rhs`` count on the string encoding ``Q_V`` groups by.
        The backend-resident repair source runs this as a cheap pre-filter
        before enumerating members: keys that come back empty (typically
        fresh-value keys no stored tuple carries) never pay a member
        enumeration, and keys whose members are all fetched already can be
        recognised by count alone.  Like :meth:`covering_members_query`
        the predicate is sargable (plain LHS equalities + the RHS guard);
        the plan is tableau-independent and all placeholders are
        caller-bound (:meth:`flatten_group_keys`).
        """
        if not cfd.lhs:
            raise ValueError("the group-stats query needs a non-empty LHS")
        if group_count < 1:
            raise ValueError("group_count must be at least 1")

        def build() -> SqlQuery:
            conditions = [
                self._group_restriction(cfd, group_count),
                f"{DATA_ALIAS}.{rhs_attribute} IS NOT NULL",
            ]
            select_columns = [
                f"{DATA_ALIAS}.{attr} AS {LHS_COLUMN_PREFIX}{attr}" for attr in cfd.lhs
            ]
            select_columns.append("COUNT(*) AS member_count")
            select_columns.append(
                f"COUNT(DISTINCT {self._data_column(rhs_attribute)}) AS distinct_rhs"
            )
            group_columns = [f"{DATA_ALIAS}.{attr}" for attr in cfd.lhs]
            sql = (
                f"SELECT {', '.join(select_columns)}\n"
                f"FROM {cfd.relation} {DATA_ALIAS}\n"
                f"WHERE {' AND '.join(conditions)}\n"
                f"GROUP BY {', '.join(group_columns)}"
            )
            return SqlQuery(sql, (), rhs_attribute=rhs_attribute, kind="group_stats")

        return self._cached_plan(
            ("group_stats", cfd, None, rhs_attribute, group_count), build
        )

    def row_fetch_query(self, tid_count: int) -> SqlQuery:
        """Full rows of ``tid_count`` tuples, as ``(tid, <attributes...>)``.

        The backend-resident repair source materialises its partial working
        relation through this plan: only the violating tuples (and later
        the members of groups a repair step touched) ever cross the backend
        boundary.  A flat tid ``IN`` list, caller-bound; tableau-independent.
        """
        if tid_count < 1:
            raise ValueError("tid_count must be at least 1")

        def build() -> SqlQuery:
            placeholders = ", ".join("?" for _ in range(tid_count))
            select_columns = [f"{DATA_ALIAS}._tid AS tid"] + [
                f"{DATA_ALIAS}.{attr} AS {attr}"
                for attr in self.schema.attribute_names
            ]
            sql = (
                f"SELECT {', '.join(select_columns)}\n"
                f"FROM {self.schema.name} {DATA_ALIAS}\n"
                f"WHERE {DATA_ALIAS}._tid IN ({placeholders})"
            )
            return SqlQuery(sql, kind="row_fetch")

        return self._cached_plan(("row_fetch", None, None, None, tid_count), build)

    # -- tuple-source aggregates (majority_value / attr_freq / page_fetch) ----------

    def majority_value_query(
        self, cfd: CFD, rhs_attribute: str, group_count: int
    ) -> SqlQuery:
        """Per-LHS-group RHS value histogram for ``group_count`` groups.

        One row per (group, RHS value) pair — ``(lhs_*, value, freq)`` —
        including the NULL bucket (the explorer's drill-down shows it;
        agreeing-majority consumers drop it client-side, mirroring the
        detection semantics where a NULL RHS participates in no
        disagreement).  This is the aggregate that lets the repair closure
        and the auditor answer "which value does this group's backend
        majority agree on?" without enumerating members.  Sargable like
        :meth:`group_stats_query`; tableau-independent; all placeholders
        caller-bound (:meth:`flatten_group_keys`).
        """
        if not cfd.lhs:
            raise ValueError("the majority-value query needs a non-empty LHS")
        if group_count < 1:
            raise ValueError("group_count must be at least 1")

        def build() -> SqlQuery:
            conditions = [self._group_restriction(cfd, group_count)]
            select_columns = [
                f"{DATA_ALIAS}.{attr} AS {LHS_COLUMN_PREFIX}{attr}" for attr in cfd.lhs
            ]
            select_columns.append(f"{DATA_ALIAS}.{rhs_attribute} AS value")
            select_columns.append("COUNT(*) AS freq")
            group_columns = [f"{DATA_ALIAS}.{attr}" for attr in cfd.lhs]
            group_columns.append(f"{DATA_ALIAS}.{rhs_attribute}")
            sql = (
                f"SELECT {', '.join(select_columns)}\n"
                f"FROM {cfd.relation} {DATA_ALIAS}\n"
                f"WHERE {' AND '.join(conditions)}\n"
                f"GROUP BY {', '.join(group_columns)}"
            )
            return SqlQuery(
                sql, (), rhs_attribute=rhs_attribute, kind="majority_value"
            )

        return self._cached_plan(
            ("majority_value", cfd, None, rhs_attribute, group_count), build
        )

    def attr_freq_query(self, cfd: CFD, pattern_index: int) -> SqlQuery:
        """LHS-value histogram over one pattern's applicable tuples.

        One row per LHS-value group with at least one applicable member —
        ``(lhs_*, freq)`` — where applicability is the pattern's sargable
        LHS conditions (constants bound, wildcards guarded non-NULL).  The
        resident explorer's drill-down derives its group listing from this
        instead of scanning the relation; the resident auditor's
        applicability counts share the statement kind.
        """
        if not cfd.lhs:
            raise ValueError("the attr-freq query needs a non-empty LHS")

        def build() -> SqlQuery:
            params: List[Any] = []
            conditions = self._pattern_lhs_conditions(cfd, pattern_index, params)
            select_columns = [
                f"{DATA_ALIAS}.{attr} AS {LHS_COLUMN_PREFIX}{attr}" for attr in cfd.lhs
            ]
            select_columns.append("COUNT(*) AS freq")
            group_columns = [f"{DATA_ALIAS}.{attr}" for attr in cfd.lhs]
            sql = (
                f"SELECT {', '.join(select_columns)}\n"
                f"FROM {cfd.relation} {DATA_ALIAS}\n"
                f"WHERE {' AND '.join(conditions)}\n"
                f"GROUP BY {', '.join(group_columns)}"
            )
            return SqlQuery(
                sql, tuple(params), kind="attr_freq", pattern_index=pattern_index
            )

        return self._cached_plan(
            ("attr_freq", cfd, None, None, pattern_index), build
        )

    def applicable_count_query(self, subs: Tuple[CFD, ...]) -> SqlQuery:
        """Count of tuples some normalised sub-CFD's pattern applies to.

        ``subs`` are single-pattern sub-CFDs (:meth:`CFD.normalize`); the
        predicate ORs their sargable LHS conditions, and the OR never
        duplicates a tuple, so a plain ``COUNT(*)`` is exact within one
        statement.  The resident auditor's VERIFIED counting runs on this —
        the clean side of the classification needs only *how many* stored
        tuples a constant-RHS pattern covers, never which ones.  Chunking
        across statements loses the cross-chunk de-duplication; use
        :meth:`applicable_sub_chunks` and fall back to
        :meth:`applicable_tids_query` when the subs do not fit one
        statement.
        """
        if not subs:
            raise ValueError("the applicable-count query needs at least one sub-CFD")

        def build() -> SqlQuery:
            return self._applicable_query(subs, count_only=True)

        return self._cached_plan(
            ("applicable_count", subs, None, None, 0), build
        )

    def applicable_tids_query(self, subs: Tuple[CFD, ...]) -> SqlQuery:
        """Tids of the tuples some sub-CFD's pattern applies to.

        The multi-chunk fallback of :meth:`applicable_count_query`: when
        the subs exceed one statement's OR/parameter budget, the caller
        runs this per chunk and unions the tids client-side.
        """
        if not subs:
            raise ValueError("the applicable-tids query needs at least one sub-CFD")

        def build() -> SqlQuery:
            return self._applicable_query(subs, count_only=False)

        return self._cached_plan(
            ("applicable_tids", subs, None, None, 0), build
        )

    def _applicable_query(self, subs: Tuple[CFD, ...], count_only: bool) -> SqlQuery:
        params: List[Any] = []
        disjuncts: List[str] = []
        for sub in subs:
            conditions = self._pattern_lhs_conditions(sub, 0, params)
            disjuncts.append("(" + " AND ".join(conditions) + ")")
        where = " OR ".join(disjuncts)
        if count_only:
            select = "COUNT(*) AS freq"
        else:
            select = f"{DATA_ALIAS}._tid AS tid"
        sql = (
            f"SELECT {select}\n"
            f"FROM {self.schema.name} {DATA_ALIAS}\n"
            f"WHERE {where}"
        )
        return SqlQuery(sql, tuple(params), kind="attr_freq")

    def applicable_sub_chunks(
        self, subs: Sequence[CFD]
    ) -> List[Tuple[CFD, ...]]:
        """Greedy chunking of sub-CFDs under the OR/parameter budgets.

        Each chunk fits one applicable-count/tids statement: at most
        :attr:`~repro.backends.dialect.SqlDialect.max_or_terms` disjuncts
        and the parameter budget's worth of bound pattern constants.
        """
        chunks: List[Tuple[CFD, ...]] = []
        current: List[CFD] = []
        current_params = 0
        budget = self.dialect.max_parameters
        for sub in subs:
            pattern = sub.patterns[0]
            sub_params = sum(
                1 for attr in sub.lhs if pattern.value(attr).is_constant
            ) if self.dialect.supports_parameters else 0
            over_params = budget is not None and current_params + sub_params > budget
            over_terms = len(current) >= self.dialect.max_or_terms
            if current and (over_params or over_terms):
                chunks.append(tuple(current))
                current, current_params = [], 0
            current.append(sub)
            current_params += sub_params
        if current:
            chunks.append(tuple(current))
        return chunks

    def page_fetch_query(
        self,
        cfd: Optional[CFD] = None,
        rhs_attribute: Optional[str] = None,
        rhs_filter: Optional[str] = None,
        page_size: int = 50,
    ) -> SqlQuery:
        """Keyset-paged full-row scan: ``(tid, <attributes...>)``.

        Pages ride the primary key — ``_tid > ?`` plus ``ORDER BY _tid``
        and an inlined ``LIMIT`` — so each page is O(page) however deep the
        caller has navigated.  ``cfd`` restricts the scan to one LHS group
        (:meth:`_group_restriction` over a single key); ``rhs_filter``
        narrows further to one RHS value (``"eq"``, binding the value) or
        to the NULL bucket (``"null"``).  Binding order: the group key
        flattened with :meth:`flatten_group_keys`, then the RHS value for
        the ``"eq"`` filter, then the after-tid cursor.  Without ``cfd``
        the scan is unrestricted (the adaptive repair fallback pages the
        whole relation through this instead of shipping it via
        ``to_relation``).
        """
        if page_size < 1:
            raise ValueError("page_size must be at least 1")
        if rhs_filter not in (None, "eq", "null"):
            raise ValueError(f"unknown rhs_filter {rhs_filter!r}")
        if rhs_filter is not None and rhs_attribute is None:
            raise ValueError("rhs_filter needs an rhs_attribute")

        def build() -> SqlQuery:
            conditions: List[str] = []
            if cfd is not None:
                conditions.append(self._group_restriction(cfd, 1))
            if rhs_filter == "eq":
                conditions.append(f"{DATA_ALIAS}.{rhs_attribute} = ?")
            elif rhs_filter == "null":
                conditions.append(f"{DATA_ALIAS}.{rhs_attribute} IS NULL")
            conditions.append(f"{DATA_ALIAS}._tid > ?")
            select_columns = [f"{DATA_ALIAS}._tid AS tid"] + [
                f"{DATA_ALIAS}.{attr} AS {attr}"
                for attr in self.schema.attribute_names
            ]
            sql = (
                f"SELECT {', '.join(select_columns)}\n"
                f"FROM {self.schema.name} {DATA_ALIAS}\n"
                f"WHERE {' AND '.join(conditions)}\n"
                f"ORDER BY {DATA_ALIAS}._tid\n"
                f"LIMIT {page_size}"
            )
            return SqlQuery(sql, kind="page_fetch")

        return self._cached_plan(
            ("page_fetch", cfd, None, (rhs_attribute, rhs_filter), page_size), build
        )

    # -- budget-chunked delta plans ------------------------------------------------

    def _chunk_size(self, base_params: int, per_item: int, or_form: bool) -> Optional[int]:
        """Items one delta statement may carry under the dialect's budgets.

        ``None`` means unbounded (no parameter cap and a flat restriction
        shape).  The parameter budget reserves ``base_params`` slots for
        the generator-bound placeholders of the query body; a budget too
        small to fit even one item raises (emitting a statement that is
        known to blow the engine's variable cap would only defer the
        failure to an opaque execution error).
        """
        bounds: List[int] = []
        if self.dialect.max_parameters is not None:
            budget = self.dialect.max_parameters - base_params
            per_chunk = budget // max(1, per_item)
            if per_chunk < 1:
                raise DetectionError(
                    f"the {self.dialect.name!r} dialect's parameter budget "
                    f"({self.dialect.max_parameters}) cannot fit one delta item: "
                    f"the query body binds {base_params} values and each item "
                    f"needs {per_item} more"
                )
            bounds.append(per_chunk)
        if or_form:
            bounds.append(self.dialect.max_or_terms)
        return min(bounds) if bounds else None

    def _chunked(self, items: Sequence[Any], size: Optional[int]) -> Iterable[Sequence[Any]]:
        if size is None or size >= len(items):
            yield items
            return
        for start in range(0, len(items), size):
            yield items[start : start + size]

    def _padded(self, chunk: Sequence[Any], cap: Optional[int]) -> List[Any]:
        """Pad a restriction chunk to a power-of-two length (up to ``cap``).

        Every restriction shape is a pure predicate (``IN`` lists, row-value
        semi-joins, OR chains), so repeating the last item changes nothing
        semantically — but it quantises the per-statement item count, which
        bounds the prepared-plan cache to O(log budget) entries per (kind,
        CFD) instead of one entry per distinct restriction size, and lets
        the backend's own statement cache hit on the recurring shapes.
        """
        target = 1
        while target < len(chunk):
            target <<= 1
        if cap is not None:
            target = min(target, cap)
        padded = list(chunk)
        if target > len(padded):
            padded.extend(padded[-1] for _ in range(target - len(padded)))
        return padded

    def delta_plans_single(
        self, cfd: CFD, tableau_name: str, tids: Sequence[int]
    ) -> List[SqlQuery]:
        """Fully-bound delta ``Q_C`` statements covering every tid in ``tids``.

        Chunked by the dialect's parameter budget; empty when ``tids`` is
        empty or the CFD has no constant-RHS pattern (no ``Q_C`` exists).
        """
        if not tids:
            return []
        probe = self.single_tuple_query_delta(cfd, tableau_name, 1)
        if probe is None:
            return []
        size = self._chunk_size(len(probe.parameters), 1, or_form=False)
        plans: List[SqlQuery] = []
        for chunk in self._chunked(list(tids), size):
            chunk = self._padded(chunk, size)
            query = self.single_tuple_query_delta(cfd, tableau_name, len(chunk))
            plans.append(
                SqlQuery(
                    query.sql,
                    tuple(query.parameters) + tuple(chunk),
                    kind=query.kind,
                )
            )
        return plans

    def delta_plans_multi(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: str,
        keys: Sequence[Tuple[Any, ...]],
    ) -> List[SqlQuery]:
        """Fully-bound delta ``Q_V`` statements covering every group in ``keys``.

        Each key is one group's LHS values in ``cfd.lhs`` order; chunking
        follows the parameter budget (and, for the portable OR form, the
        dialect's expression-depth cap).
        """
        if not keys:
            return []
        probe = self.multi_tuple_query_delta(cfd, tableau_name, rhs_attribute, 1)
        size = self._chunk_size(
            len(probe.parameters),
            len(cfd.lhs) * self._key_binds(cfd),
            or_form=not self._flat_restriction(cfd),
        )
        plans: List[SqlQuery] = []
        for chunk in self._chunked(list(keys), size):
            chunk = self._padded(chunk, size)
            query = self.multi_tuple_query_delta(
                cfd, tableau_name, rhs_attribute, len(chunk)
            )
            flattened = self.flatten_group_keys(cfd, chunk)
            plans.append(SqlQuery(query.sql, tuple(query.parameters) + flattened,
                                  rhs_attribute=rhs_attribute, kind=query.kind))
        return plans

    def delta_plans_members(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: str,
        pattern_index: int,
        keys: Sequence[Tuple[Any, ...]],
    ) -> List[SqlQuery]:
        """Fully-bound group-member enumerations for groups under one pattern.

        Each statement covers a budget-sized chunk of ``keys`` against the
        tableau row ``pattern_index``; rows come back as ``(tid, lhs_*)``.
        """
        if not keys:
            return []
        probe = self.group_members_query_delta(cfd, tableau_name, rhs_attribute, 1)
        size = self._chunk_size(
            len(probe.parameters) + 1,  # +1: the pattern-index placeholder
            len(cfd.lhs) * self._key_binds(cfd),
            or_form=not self._flat_restriction(cfd),
        )
        plans: List[SqlQuery] = []
        for chunk in self._chunked(list(keys), size):
            chunk = self._padded(chunk, size)
            query = self.group_members_query_delta(
                cfd, tableau_name, rhs_attribute, len(chunk)
            )
            flattened = self.flatten_group_keys(cfd, chunk)
            plans.append(
                SqlQuery(
                    query.sql,
                    tuple(query.parameters) + (pattern_index,) + flattened,
                    rhs_attribute=rhs_attribute,
                    kind=query.kind,
                )
            )
        return plans

    def covering_members_plans(
        self,
        cfd: CFD,
        tableau_name: str,
        rhs_attribute: str,
        keys: Sequence[Tuple[Any, ...]],
    ) -> List[SqlQuery]:
        """Fully-bound covering member enumerations for every group in ``keys``.

        The pattern-independent, index-driven counterpart of
        :meth:`delta_plans_members`: each statement covers a budget-sized
        chunk of ``keys``; rows come back as ``(tid, lhs_*)`` and the
        caller buckets them per group key.
        """
        if not keys:
            return []
        size = self._chunk_size(
            0,  # the covering query binds nothing besides the keys
            len(cfd.lhs) * self._key_binds(cfd),
            or_form=not self._flat_restriction(cfd),
        )
        plans: List[SqlQuery] = []
        for chunk in self._chunked(list(keys), size):
            chunk = self._padded(chunk, size)
            query = self.covering_members_query(
                cfd, tableau_name, rhs_attribute, len(chunk)
            )
            plans.append(
                SqlQuery(
                    query.sql,
                    self.flatten_group_keys(cfd, chunk),
                    rhs_attribute=rhs_attribute,
                    kind=query.kind,
                )
            )
        return plans

    def lhs_values_plans(
        self, cfd: CFD, tids: Sequence[int]
    ) -> List[SqlQuery]:
        """Fully-bound tid-LHS lookups covering every tid in ``tids``.

        Chunked by the dialect's parameter budget (a flat tid ``IN`` list
        is one expression node on both engines); empty when ``tids`` is
        empty or the CFD has no LHS.
        """
        if not tids or not cfd.lhs:
            return []
        size = self._chunk_size(0, 1, or_form=False)
        plans: List[SqlQuery] = []
        for chunk in self._chunked(list(tids), size):
            chunk = self._padded(chunk, size)
            query = self.tid_lhs_query(cfd, len(chunk))
            plans.append(SqlQuery(query.sql, tuple(chunk), kind=query.kind))
        return plans

    def group_stats_plans(
        self,
        cfd: CFD,
        rhs_attribute: str,
        keys: Sequence[Tuple[Any, ...]],
    ) -> List[SqlQuery]:
        """Fully-bound group-stats aggregates covering every group in ``keys``.

        Chunked like the other group restrictions (parameter budget, and
        the expression-depth cap for the portable OR form); empty when
        ``keys`` is empty.
        """
        if not keys:
            return []
        size = self._chunk_size(
            0,  # the stats query binds nothing besides the keys
            len(cfd.lhs) * self._key_binds(cfd),
            or_form=not self._flat_restriction(cfd),
        )
        plans: List[SqlQuery] = []
        for chunk in self._chunked(list(keys), size):
            chunk = self._padded(chunk, size)
            query = self.group_stats_query(cfd, rhs_attribute, len(chunk))
            plans.append(
                SqlQuery(
                    query.sql,
                    self.flatten_group_keys(cfd, chunk),
                    rhs_attribute=rhs_attribute,
                    kind=query.kind,
                )
            )
        return plans

    def majority_value_plans(
        self,
        cfd: CFD,
        rhs_attribute: str,
        keys: Sequence[Tuple[Any, ...]],
    ) -> List[SqlQuery]:
        """Fully-bound majority-value aggregates covering every group in ``keys``.

        Chunked like the other group restrictions (parameter budget, and
        the expression-depth cap for the portable OR form); empty when
        ``keys`` is empty.
        """
        if not keys:
            return []
        size = self._chunk_size(
            0,  # the majority-value query binds nothing besides the keys
            len(cfd.lhs) * self._key_binds(cfd),
            or_form=not self._flat_restriction(cfd),
        )
        plans: List[SqlQuery] = []
        for chunk in self._chunked(list(keys), size):
            chunk = self._padded(chunk, size)
            query = self.majority_value_query(cfd, rhs_attribute, len(chunk))
            plans.append(
                SqlQuery(
                    query.sql,
                    self.flatten_group_keys(cfd, chunk),
                    rhs_attribute=rhs_attribute,
                    kind=query.kind,
                )
            )
        return plans

    def row_fetch_plans(self, tids: Sequence[int]) -> List[SqlQuery]:
        """Fully-bound row fetches covering every tid in ``tids``.

        Chunked by the dialect's parameter budget (a flat tid ``IN`` list
        is one expression node on both engines); empty when ``tids`` is
        empty.  Padding repeats the last tid, so callers must de-duplicate
        returned rows by ``tid``.
        """
        if not tids:
            return []
        size = self._chunk_size(0, 1, or_form=False)
        plans: List[SqlQuery] = []
        for chunk in self._chunked(list(tids), size):
            chunk = self._padded(chunk, size)
            query = self.row_fetch_query(len(chunk))
            plans.append(SqlQuery(query.sql, tuple(chunk), kind=query.kind))
        return plans

    def _flat_restriction(self, cfd: CFD) -> bool:
        """Whether the group restriction is a single expression node.

        True for the IN-list (single-attribute LHS) and row-value forms;
        false for the portable OR chain, which must also respect the
        dialect's expression-depth cap.
        """
        return len(cfd.lhs) == 1 or self.uses_row_values(cfd)

    def _key_binds(self, cfd: CFD) -> int:
        """Placeholder occurrences per bound LHS value in the restriction.

        The flat forms mention each value once; the portable OR chain goes
        through the dialect's NULL-safe equality, whose expansion may
        repeat the placeholder (:attr:`SqlDialect.null_safe_eq_binds`).
        """
        if self._flat_restriction(cfd):
            return 1
        return self.dialect.null_safe_eq_binds

    def flatten_group_keys(
        self, cfd: CFD, keys: Sequence[Tuple[Any, ...]]
    ) -> Tuple[Any, ...]:
        """Bind-ready flattening of group keys for the restriction's shape."""
        binds = self._key_binds(cfd)
        return tuple(
            value for key in keys for value in key for _ in range(binds)
        )

    def generate(self, cfd: CFD, tableau_name: str) -> DetectionQueries:
        """Generate all detection SQL for one (merged or normalised) CFD."""
        return DetectionQueries(
            cfd_id=cfd.identifier,
            tableau_name=tableau_name,
            single_sql=self.single_tuple_query(cfd, tableau_name),
            multi_sqls=tuple(self.multi_tuple_queries(cfd, tableau_name)),
            group_members_sql=self.group_members_query(cfd),
        )


def tableau_relation_name(cfd: CFD, index: int) -> str:
    """A unique, SQL-safe name for the materialised tableau of ``cfd``."""
    return f"__semandaq_tableau_{index}"
