"""The error detector: batch detection of CFD violations.

The detector compiles each CFD into SQL (see
:mod:`repro.detection.sqlgen`), materialises the pattern tableau as a
relation in the storage backend, runs the generated queries through the
backend — the paper's pushdown to the underlying DBMS — and assembles a
:class:`~repro.detection.violations.ViolationReport`.  A native (pure
Python) detection path that bypasses SQL is kept both as a correctness
oracle and for the SQL-vs-native ablation benchmark.

The SQL path is *fully backend-resident*: ``Q_C`` carries each violating
tuple's LHS values (``lhs_*`` columns), group members are enumerated by
the covering members plan
(:meth:`~repro.detection.sqlgen.DetectionSqlGenerator.covering_members_query`),
and schema and row count come from the backend's catalog ops — ``detect``
and ``detect_for_tuples`` perform **zero reads against the in-memory
working store**, so batch detection runs against a remote server without
shipping the relation back.  Backend values are decoded per schema dtype
(:func:`decode_backend_value`) so reports stay identical across backends.

``detect_for_tuples`` pushes the tuple restriction down as well: the
PR 4-style delta plans re-check only the named tids (flat, dialect-chunked
``IN`` lists) and the LHS-value groups they belong to, instead of running
a full detection and filtering the report afterwards.

The detector accepts either a :class:`~repro.engine.database.Database`
(wrapped in a :class:`~repro.backends.memory.MemoryBackend`, preserving the
seed API) or any :class:`~repro.backends.base.StorageBackend`; detection SQL
is generated in the backend's dialect through one cached generator per
relation, whose prepared-plan cache persists across ``detect`` calls.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..backends.base import StorageBackend
from ..backends.memory import MemoryBackend
from ..core.cfd import CFD
from ..core.satisfaction import (
    multi_tuple_violation_groups,
    single_tuple_violations,
)
from ..core.tableau import tableau_to_relation
from ..engine.database import Database
from ..engine.relation import Relation
from ..engine.types import DataType, RelationSchema
from ..errors import DetectionError
from ..obs.instrument import InstrumentedBackend
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .sqlgen import (
    LHS_COLUMN_PREFIX,
    DetectionSqlGenerator,
    SqlQuery,
    default_detect_plan,
    tableau_relation_name,
)
from .violations import MULTI, SINGLE, Violation, ViolationReport


def decode_backend_value(schema: RelationSchema, attribute: str, value: Any) -> Any:
    """Decode one backend-stored value into its engine representation.

    SQLite hands back stored representations (0/1 for booleans); the
    working store holds engine values — hash-equal, but reports must show
    the latter.  Every other type round-trips unchanged, so this is an
    identity on the memory backend.  Shared by the batch detector and the
    incremental detector's ``sql_delta`` mode.
    """
    if value is None:
        return None
    if schema.attribute(attribute).dtype is DataType.BOOLEAN:
        return bool(value)
    return value


def _sub_cfd(cfd: CFD, rhs_attribute: str) -> CFD:
    """Restrict ``cfd`` to a single RHS attribute, keeping the full tableau."""
    if cfd.rhs == (rhs_attribute,):
        return cfd
    attrs = cfd.lhs + (rhs_attribute,)
    patterns = tuple(pattern.restrict(attrs) for pattern in cfd.patterns)
    return CFD(
        relation=cfd.relation,
        lhs=cfd.lhs,
        rhs=(rhs_attribute,),
        patterns=patterns,
        name=cfd.name,
    )


class ErrorDetector:
    """Detects single-tuple and multi-tuple CFD violations in a relation."""

    def __init__(
        self,
        database: Union[Database, StorageBackend],
        use_sql: bool = True,
        telemetry: Optional[Telemetry] = None,
        detect_plan: Optional[str] = None,
    ):
        #: telemetry context statements and spans are recorded under; the
        #: shared disabled default costs one attribute check per call site
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if isinstance(database, StorageBackend):
            self.backend = database
        else:
            self.backend = MemoryBackend(database)
        if self.telemetry.active and not isinstance(
            self.backend, InstrumentedBackend
        ):
            self.backend = InstrumentedBackend(self.backend, self.telemetry)
        #: the wrapped in-memory database, when the backend exposes one
        self.database = getattr(self.backend, "database", None)
        self.use_sql = use_sql
        #: requested detection plan family (``None`` = environment/auto);
        #: each generator resolves it against its dialect's capabilities
        self.detect_plan = detect_plan
        #: SQL statements issued by the last ``detect`` call (for inspection).
        self.last_sql: List[str] = []
        #: one generator (and prepared-plan cache) per detected relation
        self._generators: Dict[str, DetectionSqlGenerator] = {}

    # -- public API --------------------------------------------------------------

    def detect(self, relation_name: str, cfds: Sequence[CFD]) -> ViolationReport:
        """Run detection of every CFD in ``cfds`` over ``relation_name``."""
        with self.telemetry.span(
            "detect", relation=relation_name, cfds=len(cfds)
        ):
            return self._detect(relation_name, cfds)

    def _detect(self, relation_name: str, cfds: Sequence[CFD]) -> ViolationReport:
        self.last_sql = []
        if self.use_sql:
            schema, tuple_count = self._sql_preamble(relation_name, cfds)
            generator = self._generator_for(relation_name, schema)
            self.telemetry.inc(f"detect.plan_variant.{generator.detect_plan}")
            relation: Optional[Relation] = None
        else:
            relation = self.backend.to_relation(relation_name)
            schema = relation.schema
            tuple_count = len(relation)
            self._validate(relation_name, cfds, schema)

        violations: List[Violation] = []
        for index, cfd in enumerate(cfds):
            for rhs_attribute in cfd.rhs:
                sub = _sub_cfd(cfd, rhs_attribute)
                if self.use_sql:
                    violations.extend(
                        self._detect_sql(relation_name, schema, cfd, sub, index)
                    )
                else:
                    violations.extend(self._detect_native(relation, cfd, sub))
        return self._report(relation_name, cfds, violations, tuple_count)

    def detect_for_tuples(
        self, relation_name: str, cfds: Sequence[CFD], tids: Iterable[int]
    ) -> ViolationReport:
        """Detect violations restricted to those involving any tuple in ``tids``.

        Used by the explorer's "why is this tuple dirty" view and by the
        cleansing-review workflow.  On the SQL path the restriction is
        pushed down: the delta ``Q_C``/``Q_V`` plans re-check only the
        named tids and the LHS-value groups they belong to (flat tid ``IN``
        lists and dialect-branched group restrictions, chunked by the
        parameter budget), with the same report a full detection filtered
        to ``tids`` would produce.  The native path keeps the
        filter-after-detect evaluation as the oracle.
        """
        with self.telemetry.span(
            "detect_for_tuples", relation=relation_name, cfds=len(cfds)
        ):
            return self._detect_for_tuples(relation_name, cfds, tids)

    def _detect_for_tuples(
        self, relation_name: str, cfds: Sequence[CFD], tids: Iterable[int]
    ) -> ViolationReport:
        wanted = set(tids)
        if not self.use_sql:
            report = self.detect(relation_name, cfds)
            filtered = [
                violation
                for violation in report.violations
                if wanted & set(violation.tids)
            ]
            return ViolationReport(
                relation=relation_name,
                violations=filtered,
                tuple_count=report.tuple_count,
                cfd_ids=report.cfd_ids,
            )
        schema, tuple_count = self._sql_preamble(relation_name, cfds)
        violations: List[Violation] = []
        restrict = sorted(wanted)
        if restrict:
            generator = self._generator_for(relation_name, schema)
            self.telemetry.inc(f"detect.plan_variant.{generator.detect_plan}")
            for index, cfd in enumerate(cfds):
                # the affected LHS-value groups depend on the (parent)
                # LHS alone, so one backend lookup serves every RHS
                # attribute of a merged CFD
                restrict_keys: Optional[List[Tuple[Any, ...]]] = None
                for rhs_attribute in cfd.rhs:
                    sub = _sub_cfd(cfd, rhs_attribute)
                    needs_keys = bool(
                        sub.lhs
                    ) and generator.wildcard_rhs_attributes(sub)
                    if needs_keys and restrict_keys is None:
                        restrict_keys = self._restricted_group_keys(
                            generator, cfd, restrict
                        )
                    violations.extend(
                        self._detect_sql(
                            relation_name,
                            schema,
                            cfd,
                            sub,
                            index,
                            restrict_tids=restrict,
                            restrict_keys=restrict_keys if needs_keys else [],
                        )
                    )
        return self._report(relation_name, cfds, violations, tuple_count)

    # -- SQL-based path ------------------------------------------------------------

    def _sql_preamble(
        self, relation_name: str, cfds: Sequence[CFD]
    ) -> Tuple[RelationSchema, int]:
        """Shared entry of the backend-resident paths.

        Resets the SQL log and reads schema + row count through catalog
        ops — the queries run where the data lives and report assembly
        reads backend rows only, so the working store is never touched.
        """
        self.last_sql = []
        schema = self.backend.schema(relation_name)
        tuple_count = self.backend.row_count(relation_name)
        self._validate(relation_name, cfds, schema)
        return schema, tuple_count

    def _report(
        self,
        relation_name: str,
        cfds: Sequence[CFD],
        violations: List[Violation],
        tuple_count: int,
    ) -> ViolationReport:
        return ViolationReport(
            relation=relation_name,
            violations=violations,
            tuple_count=tuple_count,
            cfd_ids=tuple(cfd.identifier for cfd in cfds),
        )

    def _validate(
        self, relation_name: str, cfds: Sequence[CFD], schema: RelationSchema
    ) -> None:
        for cfd in cfds:
            if cfd.relation != relation_name:
                raise DetectionError(
                    f"CFD {cfd.identifier} targets relation {cfd.relation!r}, "
                    f"not {relation_name!r}"
                )
            cfd.validate_against(schema.attribute_names)

    def _generator_for(
        self, relation_name: str, schema: RelationSchema
    ) -> DetectionSqlGenerator:
        """The cached per-relation generator (rebuilt on schema change).

        Keeping the generator across ``detect`` calls is what makes its
        prepared-plan cache effective: repeated detections over the same
        CFDs reuse the rendered ``Q_C``/``Q_V``/members statements.
        """
        requested = (
            self.detect_plan if self.detect_plan is not None else default_detect_plan()
        )
        generator = self._generators.get(relation_name)
        if generator is None or generator.schema != schema:
            generator = DetectionSqlGenerator(
                schema,
                dialect=self.backend.dialect,
                telemetry=self.telemetry,
                detect_plan=requested,
            )
            self._generators[relation_name] = generator
        elif generator.requested_detect_plan != requested:
            # detect_plan flipped mid-session: re-resolve in place — the
            # variant-keyed plan cache guarantees no stale shape is served
            generator.set_detect_plan(requested)
        return generator

    def _detect_sql(
        self,
        relation_name: str,
        schema: RelationSchema,
        parent: CFD,
        cfd: CFD,
        cfd_index: int,
        restrict_tids: Optional[Sequence[int]] = None,
        restrict_keys: Optional[Sequence[Tuple[Any, ...]]] = None,
    ) -> List[Violation]:
        generator = self._generator_for(relation_name, schema)
        tableau_name = tableau_relation_name(cfd, cfd_index) + f"_{cfd.rhs[0]}"
        tableau = tableau_to_relation(cfd, tableau_name)
        if cfd.lhs:
            self.backend.ensure_index(relation_name, cfd.lhs)
        # The positional tableau name may have hosted a different CFD in a
        # previous detect call; claiming it drops that occupant's plans
        # while keeping this CFD's own plans warm across repeated detects.
        generator.claim_tableau(tableau_name, cfd)
        self.backend.add_relation(tableau, replace=True)
        try:
            if restrict_tids is None:
                single_queries = generator.plan_single_queries(
                    cfd, tableau_name, include_lhs=True
                )
                multi_queries = generator.plan_multi_queries(cfd, tableau_name)
                wanted: Optional[Set[int]] = None
            else:
                single_queries = generator.plan_delta_single(
                    cfd, tableau_name, restrict_tids
                )
                multi_queries = generator.plan_delta_multi(
                    cfd, tableau_name, cfd.rhs[0], list(restrict_keys or [])
                )
                wanted = set(restrict_tids)
            violations: List[Violation] = []
            violations.extend(
                self._assemble_singles(parent, cfd, schema, single_queries)
            )
            violations.extend(
                self._assemble_multis(
                    generator, parent, cfd, schema, tableau_name, multi_queries, wanted
                )
            )
            return violations
        finally:
            # The tableau is dropped but the plans stay cached: they remain
            # valid for this exact CFD, and the next claim_tableau sweeps
            # them if a different CFD takes the name.
            self.backend.drop_relation(tableau_name)

    def _execute(self, query: SqlQuery) -> List[Dict[str, Any]]:
        self.last_sql.append(query.sql)
        if not self.telemetry.active:
            return self.backend.execute(query.sql, query.parameters)
        # announce the generator's statement kind so the instrumented
        # backend buckets the execution under it (q_c, delta_multi, ...)
        with self.telemetry.tag_statements(query.kind):
            return self.backend.execute(query.sql, query.parameters)

    def _restricted_group_keys(
        self,
        generator: DetectionSqlGenerator,
        cfd: CFD,
        tids: Sequence[int],
    ) -> List[Tuple[Any, ...]]:
        """The LHS-value groups the restricted tuples belong to.

        Fetched from the backend (NULL-LHS tuples excluded by the engine),
        so the restricted ``Q_V`` re-checks exactly the groups a full
        detection would have reported these tuples under.
        """
        keys: Dict[Tuple[Any, ...], None] = {}
        for plan in generator.lhs_values_plans(cfd, tids):
            for row in self._execute(plan):
                key = tuple(row[LHS_COLUMN_PREFIX + attr] for attr in cfd.lhs)
                keys[key] = None
        return list(keys)

    def _assemble_singles(
        self,
        parent: CFD,
        cfd: CFD,
        schema: RelationSchema,
        queries: Sequence[SqlQuery],
    ) -> List[Violation]:
        rhs_attribute = cfd.rhs[0]
        # With overlapping pattern tuples the same tid can violate several
        # patterns; result order is engine-dependent, so pick the lowest
        # pattern index — the rule the native and incremental paths follow.
        # The rows carry the tuple's LHS values (lhs_* columns), so no
        # working-store read is needed to label the violation.
        chosen: Dict[int, Tuple[int, Tuple[Any, ...]]] = {}
        for query in queries:
            for row in self._execute(query):
                tid = row["tid"]
                # per-pattern specialized statements carry their pattern on
                # the query; the legacy tableau join carries it per row
                if query.pattern_index is not None:
                    pattern_index = query.pattern_index
                else:
                    pattern_index = int(row.get("pattern_id", 0))
                if tid not in chosen or pattern_index < chosen[tid][0]:
                    lhs_raw = tuple(
                        row.get(LHS_COLUMN_PREFIX + attr) for attr in cfd.lhs
                    )
                    chosen[tid] = (pattern_index, lhs_raw)
        violations: List[Violation] = []
        for tid in sorted(chosen):
            pattern_index, lhs_raw = chosen[tid]
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=SINGLE,
                    tids=(tid,),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=tuple(
                        decode_backend_value(schema, attr, value)
                        for attr, value in zip(cfd.lhs, lhs_raw)
                    ),
                )
            )
        return violations

    def _assemble_multis(
        self,
        generator: DetectionSqlGenerator,
        parent: CFD,
        cfd: CFD,
        schema: RelationSchema,
        tableau_name: str,
        queries: Sequence[SqlQuery],
        wanted: Optional[Set[int]] = None,
    ) -> List[Violation]:
        rhs_attribute = cfd.rhs[0]
        # The query groups by (LHS values, pattern_id), so an LHS group
        # covered by several overlapping pattern tuples comes back once per
        # matching pattern.  Report each group exactly once, under its
        # lowest violating pattern index — the same rule the native and
        # incremental paths apply.  Keys stay in the backend's value
        # representation until the final decode, so the members plans bind
        # exactly what the engine compares against.
        grouped: Dict[Tuple[Any, ...], int] = {}
        members: Dict[Tuple[Any, ...], Set[int]] = {}
        if generator.one_pass_multi:
            # window family: the statements return member rows directly —
            # bucket them per group key; the member set is a property of
            # the key alone, so overlapping patterns just re-deliver it
            for query in queries:
                pattern_index = query.pattern_index or 0
                for row in self._execute(query):
                    key = tuple(row[LHS_COLUMN_PREFIX + attr] for attr in cfd.lhs)
                    if key not in grouped or pattern_index < grouped[key]:
                        grouped[key] = pattern_index
                    members.setdefault(key, set()).add(row["tid"])
        else:
            for query in queries:
                for row in self._execute(query):
                    lhs_values = tuple(row[attr] for attr in cfd.lhs)
                    if query.pattern_index is not None:
                        pattern_index = query.pattern_index
                    else:
                        pattern_index = int(row.get("pattern_id", 0))
                    if (
                        lhs_values not in grouped
                        or pattern_index < grouped[lhs_values]
                    ):
                        grouped[lhs_values] = pattern_index
            if not grouped:
                return []
            for plan in generator.covering_members_plans(
                cfd, tableau_name, rhs_attribute, list(grouped)
            ):
                for row in self._execute(plan):
                    key = tuple(row[LHS_COLUMN_PREFIX + attr] for attr in cfd.lhs)
                    members.setdefault(key, set()).add(row["tid"])
        violations: List[Violation] = []
        for lhs_values, pattern_index in grouped.items():
            tids = sorted(members.get(lhs_values, []))
            if len(tids) < 2:
                continue
            if wanted is not None and not (wanted & set(tids)):
                # restricted detection: the group shares LHS values with a
                # named tuple, but that tuple is not a member (e.g. NULL
                # RHS) — a full detect + filter would not report it
                continue
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=MULTI,
                    tids=tuple(tids),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=tuple(
                        decode_backend_value(schema, attr, value)
                        for attr, value in zip(cfd.lhs, lhs_values)
                    ),
                )
            )
        return violations

    # -- native (non-SQL) path --------------------------------------------------------

    def _detect_native(
        self, relation: Relation, parent: CFD, cfd: CFD
    ) -> List[Violation]:
        rhs_attribute = cfd.rhs[0]
        violations: List[Violation] = []
        seen_single: Set[int] = set()
        for tid, pattern_index in single_tuple_violations(relation, cfd):
            if tid in seen_single:
                continue
            seen_single.add(tid)
            data_row = relation.get(tid)
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=SINGLE,
                    tids=(tid,),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=tuple(data_row.get(attr) for attr in cfd.lhs),
                )
            )
        seen_groups: Set[Tuple[Any, ...]] = set()
        for pattern_index, lhs_values, tids in multi_tuple_violation_groups(relation, cfd):
            if lhs_values in seen_groups:
                continue
            seen_groups.add(lhs_values)
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=MULTI,
                    tids=tuple(tids),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=lhs_values,
                )
            )
        return violations
