"""The error detector: batch detection of CFD violations.

The detector compiles each CFD into SQL (see
:mod:`repro.detection.sqlgen`), materialises the pattern tableau as a
relation in the storage backend, runs the generated queries through the
backend — the paper's pushdown to the underlying DBMS — and assembles a
:class:`~repro.detection.violations.ViolationReport`.  A native (pure
Python) detection path that bypasses SQL is kept both as a correctness
oracle and for the SQL-vs-native ablation benchmark.

The detector accepts either a :class:`~repro.engine.database.Database`
(wrapped in a :class:`~repro.backends.memory.MemoryBackend`, preserving the
seed API) or any :class:`~repro.backends.base.StorageBackend`; detection SQL
is generated in the backend's dialect, and CFD LHS indexes are created on
the backend before the grouping queries run.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..backends.base import StorageBackend
from ..backends.memory import MemoryBackend
from ..core.cfd import CFD
from ..core.pattern import PatternTuple
from ..core.satisfaction import (
    multi_tuple_violation_groups,
    single_tuple_violations,
)
from ..core.tableau import tableau_to_relation
from ..engine.database import Database
from ..engine.relation import Relation
from ..errors import DetectionError
from .sqlgen import DetectionSqlGenerator, SqlQuery, tableau_relation_name
from .violations import MULTI, SINGLE, Violation, ViolationReport


def _sub_cfd(cfd: CFD, rhs_attribute: str) -> CFD:
    """Restrict ``cfd`` to a single RHS attribute, keeping the full tableau."""
    if cfd.rhs == (rhs_attribute,):
        return cfd
    attrs = cfd.lhs + (rhs_attribute,)
    patterns = tuple(pattern.restrict(attrs) for pattern in cfd.patterns)
    return CFD(
        relation=cfd.relation,
        lhs=cfd.lhs,
        rhs=(rhs_attribute,),
        patterns=patterns,
        name=cfd.name,
    )


def group_member_tids(
    relation: Relation,
    cfd: CFD,
    pattern: PatternTuple,
    lhs_values: Tuple[Any, ...],
    rhs_attribute: str,
) -> List[int]:
    """Tids of the tuples belonging to one violating LHS group.

    Shared by the batch SQL detector and the incremental detector's
    ``sql_delta`` mode: the grouping queries identify *which* groups
    violate; membership (pattern applicability, non-NULL RHS) is enumerated
    here against the in-memory relation's hash index.
    """
    candidate_tids = relation.lookup(list(cfd.lhs), list(lhs_values))
    members: List[int] = []
    for tid in candidate_tids:
        row = relation.get(tid)
        if not cfd.applies_to(row, pattern):
            continue
        if row.get(rhs_attribute) is None:
            continue
        members.append(tid)
    return sorted(members)


class ErrorDetector:
    """Detects single-tuple and multi-tuple CFD violations in a relation."""

    def __init__(
        self, database: Union[Database, StorageBackend], use_sql: bool = True
    ):
        if isinstance(database, StorageBackend):
            self.backend = database
        else:
            self.backend = MemoryBackend(database)
        #: the wrapped in-memory database, when the backend exposes one
        self.database = getattr(self.backend, "database", None)
        self.use_sql = use_sql
        #: SQL statements issued by the last ``detect`` call (for inspection).
        self.last_sql: List[str] = []

    # -- public API --------------------------------------------------------------

    def detect(self, relation_name: str, cfds: Sequence[CFD]) -> ViolationReport:
        """Run detection of every CFD in ``cfds`` over ``relation_name``."""
        relation = self.backend.to_relation(relation_name)
        self.last_sql = []
        for cfd in cfds:
            if cfd.relation != relation_name:
                raise DetectionError(
                    f"CFD {cfd.identifier} targets relation {cfd.relation!r}, "
                    f"not {relation_name!r}"
                )
            cfd.validate_against(relation.attribute_names)

        violations: List[Violation] = []
        for index, cfd in enumerate(cfds):
            for rhs_attribute in cfd.rhs:
                sub = _sub_cfd(cfd, rhs_attribute)
                if self.use_sql:
                    violations.extend(self._detect_sql(relation, cfd, sub, index))
                else:
                    violations.extend(self._detect_native(relation, cfd, sub))
        return ViolationReport(
            relation=relation_name,
            violations=violations,
            tuple_count=len(relation),
            cfd_ids=tuple(cfd.identifier for cfd in cfds),
        )

    def detect_for_tuples(
        self, relation_name: str, cfds: Sequence[CFD], tids: Iterable[int]
    ) -> ViolationReport:
        """Detect violations restricted to those involving any tuple in ``tids``.

        Used by the explorer's "why is this tuple dirty" view and by the
        cleansing-review workflow.
        """
        report = self.detect(relation_name, cfds)
        wanted = set(tids)
        filtered = [
            violation
            for violation in report.violations
            if wanted & set(violation.tids)
        ]
        return ViolationReport(
            relation=relation_name,
            violations=filtered,
            tuple_count=report.tuple_count,
            cfd_ids=report.cfd_ids,
        )

    # -- SQL-based path ------------------------------------------------------------

    def _detect_sql(
        self, relation: Relation, parent: CFD, cfd: CFD, cfd_index: int
    ) -> List[Violation]:
        generator = DetectionSqlGenerator(relation.schema, dialect=self.backend.dialect)
        tableau_name = tableau_relation_name(cfd, cfd_index) + f"_{cfd.rhs[0]}"
        tableau = tableau_to_relation(cfd, tableau_name)
        if cfd.lhs:
            self.backend.ensure_index(relation.name, cfd.lhs)
        self.backend.add_relation(tableau, replace=True)
        try:
            queries = generator.generate(cfd, tableau_name)
            violations: List[Violation] = []
            violations.extend(
                self._run_single_query(relation, parent, cfd, queries.single_sql)
            )
            for multi_query in queries.multi_sqls:
                violations.extend(
                    self._run_multi_query(relation, parent, cfd, multi_query)
                )
            return violations
        finally:
            self.backend.drop_relation(tableau_name)

    def _run_single_query(
        self,
        relation: Relation,
        parent: CFD,
        cfd: CFD,
        query: Optional[SqlQuery],
    ) -> List[Violation]:
        if query is None:
            return []
        self.last_sql.append(query.sql)
        rows = self.backend.execute(query.sql, query.parameters)
        rhs_attribute = cfd.rhs[0]
        # With overlapping pattern tuples the same tid can violate several
        # patterns; result order is engine-dependent, so pick the lowest
        # pattern index — the rule the native and incremental paths follow.
        chosen: Dict[int, int] = {}
        for row in rows:
            tid = row["tid"]
            pattern_index = int(row.get("pattern_id", 0))
            if tid not in chosen or pattern_index < chosen[tid]:
                chosen[tid] = pattern_index
        violations: List[Violation] = []
        for tid in sorted(chosen):
            data_row = relation.get(tid)
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=SINGLE,
                    tids=(tid,),
                    rhs_attribute=rhs_attribute,
                    pattern_index=chosen[tid],
                    lhs_attributes=cfd.lhs,
                    lhs_values=tuple(data_row.get(attr) for attr in cfd.lhs),
                )
            )
        return violations

    def _run_multi_query(
        self,
        relation: Relation,
        parent: CFD,
        cfd: CFD,
        query: Optional[SqlQuery],
    ) -> List[Violation]:
        if query is None:
            return []
        self.last_sql.append(query.sql)
        rows = self.backend.execute(query.sql, query.parameters)
        rhs_attribute = query.rhs_attribute or cfd.rhs[0]
        # The query groups by (LHS values, pattern_id), so an LHS group
        # covered by several overlapping pattern tuples comes back once per
        # matching pattern.  Report each group exactly once, under its
        # lowest violating pattern index — the same rule the native and
        # incremental paths apply — instead of whichever pattern the
        # engine-dependent result order yields first.
        grouped: Dict[Tuple[Any, ...], int] = {}
        for row in rows:
            lhs_values = tuple(row[attr] for attr in cfd.lhs)
            pattern_index = int(row.get("pattern_id", 0))
            if lhs_values not in grouped or pattern_index < grouped[lhs_values]:
                grouped[lhs_values] = pattern_index
        violations: List[Violation] = []
        for lhs_values, pattern_index in grouped.items():
            pattern = cfd.patterns[pattern_index]
            tids = self._group_member_tids(
                relation, cfd, pattern, lhs_values, rhs_attribute
            )
            if len(tids) < 2:
                continue
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=MULTI,
                    tids=tuple(tids),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=lhs_values,
                )
            )
        return violations

    def _group_member_tids(
        self,
        relation: Relation,
        cfd: CFD,
        pattern: PatternTuple,
        lhs_values: Tuple[Any, ...],
        rhs_attribute: Optional[str] = None,
    ) -> List[int]:
        return group_member_tids(
            relation, cfd, pattern, lhs_values, rhs_attribute or cfd.rhs[0]
        )

    # -- native (non-SQL) path --------------------------------------------------------

    def _detect_native(
        self, relation: Relation, parent: CFD, cfd: CFD
    ) -> List[Violation]:
        rhs_attribute = cfd.rhs[0]
        violations: List[Violation] = []
        seen_single: Set[int] = set()
        for tid, pattern_index in single_tuple_violations(relation, cfd):
            if tid in seen_single:
                continue
            seen_single.add(tid)
            data_row = relation.get(tid)
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=SINGLE,
                    tids=(tid,),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=tuple(data_row.get(attr) for attr in cfd.lhs),
                )
            )
        seen_groups: Set[Tuple[Any, ...]] = set()
        for pattern_index, lhs_values, tids in multi_tuple_violation_groups(relation, cfd):
            if lhs_values in seen_groups:
                continue
            seen_groups.add(lhs_values)
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=MULTI,
                    tids=tuple(tids),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=lhs_values,
                )
            )
        return violations
