"""The error detector: batch detection of CFD violations.

The detector compiles each CFD into SQL (see
:mod:`repro.detection.sqlgen`), materialises the pattern tableau as a
relation in the storage backend, runs the generated queries through the
backend — the paper's pushdown to the underlying DBMS — and assembles a
:class:`~repro.detection.violations.ViolationReport`.  A native (pure
Python) detection path that bypasses SQL is kept both as a correctness
oracle and for the SQL-vs-native ablation benchmark.

The SQL path is *fully backend-resident*: ``Q_C`` carries each violating
tuple's LHS values (``lhs_*`` columns), group members are enumerated by
the covering members plan
(:meth:`~repro.detection.sqlgen.DetectionSqlGenerator.covering_members_query`),
and schema and row count come from the backend's catalog ops — ``detect``
and ``detect_for_tuples`` perform **zero reads against the in-memory
working store**, so batch detection runs against a remote server without
shipping the relation back.  Backend values are decoded per schema dtype
(:func:`decode_backend_value`) so reports stay identical across backends.

``detect_for_tuples`` pushes the tuple restriction down as well: the
PR 4-style delta plans re-check only the named tids (flat, dialect-chunked
``IN`` lists) and the LHS-value groups they belong to, instead of running
a full detection and filtering the report afterwards.

The detector accepts either a :class:`~repro.engine.database.Database`
(wrapped in a :class:`~repro.backends.memory.MemoryBackend`, preserving the
seed API) or any :class:`~repro.backends.base.StorageBackend`; detection SQL
is generated in the backend's dialect through one cached generator per
relation, whose prepared-plan cache persists across ``detect`` calls.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..backends.base import StorageBackend
from ..backends.memory import MemoryBackend
from ..core.cfd import CFD
from ..core.satisfaction import (
    multi_tuple_violation_groups,
    single_tuple_violations,
)
from ..core.tableau import tableau_to_relation
from ..engine.database import Database
from ..engine.relation import Relation
from ..engine.types import DataType, RelationSchema
from ..errors import DetectionError
from ..obs.instrument import InstrumentedBackend
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .sqlgen import (
    LHS_COLUMN_PREFIX,
    DetectionSqlGenerator,
    SqlQuery,
    default_detect_plan,
    tableau_relation_name,
)
from .violations import MULTI, SINGLE, Violation, ViolationReport


def decode_backend_value(schema: RelationSchema, attribute: str, value: Any) -> Any:
    """Decode one backend-stored value into its engine representation.

    SQLite hands back stored representations (0/1 for booleans); the
    working store holds engine values — hash-equal, but reports must show
    the latter.  Every other type round-trips unchanged, so this is an
    identity on the memory backend.  Shared by the batch detector and the
    incremental detector's ``sql_delta`` mode.
    """
    if value is None:
        return None
    if schema.attribute(attribute).dtype is DataType.BOOLEAN:
        return bool(value)
    return value


def _sub_cfd(cfd: CFD, rhs_attribute: str) -> CFD:
    """Restrict ``cfd`` to a single RHS attribute, keeping the full tableau."""
    if cfd.rhs == (rhs_attribute,):
        return cfd
    attrs = cfd.lhs + (rhs_attribute,)
    patterns = tuple(pattern.restrict(attrs) for pattern in cfd.patterns)
    return CFD(
        relation=cfd.relation,
        lhs=cfd.lhs,
        rhs=(rhs_attribute,),
        patterns=patterns,
        name=cfd.name,
    )


class ErrorDetector:
    """Detects single-tuple and multi-tuple CFD violations in a relation.

    The detector is safe to share across serving-layer worker threads:
    the per-relation generator map and its prepared-plan caches are
    lock-guarded, ``last_sql`` is per-thread, and detection tableaux are
    handed out through reference-counted leases.  A tableau's content is
    a pure function of its CFD, so concurrent detections of the same CFD
    share one materialisation (the lease refcount keeps the drop until
    the last reader finishes); a detection needing the same positional
    name for a *different* CFD waits for the current occupant's leases to
    drain.  Leases are always acquired in sorted name order, so two
    threads holding overlapping tableau sets can never deadlock.  The
    query phase of each detection runs inside
    ``backend.read_connection(snapshot=True)``, so a report reflects one
    consistent snapshot of the store even while a writer streams delta
    batches — tuple count included, because the row count is read inside
    the snapshot too.
    """

    def __init__(
        self,
        database: Union[Database, StorageBackend],
        use_sql: bool = True,
        telemetry: Optional[Telemetry] = None,
        detect_plan: Optional[str] = None,
    ):
        #: telemetry context statements and spans are recorded under; the
        #: shared disabled default costs one attribute check per call site
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if isinstance(database, StorageBackend):
            self.backend = database
        else:
            self.backend = MemoryBackend(database)
        if self.telemetry.active and not isinstance(
            self.backend, InstrumentedBackend
        ):
            self.backend = InstrumentedBackend(self.backend, self.telemetry)
        #: the wrapped in-memory database, when the backend exposes one
        self.database = getattr(self.backend, "database", None)
        self.use_sql = use_sql
        #: requested detection plan family (``None`` = environment/auto);
        #: each generator resolves it against its dialect's capabilities
        self.detect_plan = detect_plan
        #: per-thread state (``last_sql``): a worker's statement log must
        #: not interleave with another thread's concurrent detection
        self._local = threading.local()
        #: one generator (and prepared-plan cache) per detected relation
        self._generators: Dict[str, DetectionSqlGenerator] = {}
        self._generators_lock = threading.Lock()
        #: tableau name -> [owning CFD, lease refcount]; guarded by the
        #: condition below, which is also what a thread waits on when a
        #: different CFD currently occupies the name it needs
        self._tableau_leases: Dict[str, List[Any]] = {}
        self._tableau_cond = threading.Condition()

    @property
    def last_sql(self) -> List[str]:
        """SQL statements issued by this thread's last ``detect`` call."""
        log = getattr(self._local, "last_sql", None)
        if log is None:
            log = self._local.last_sql = []
        return log

    @last_sql.setter
    def last_sql(self, value: List[str]) -> None:
        self._local.last_sql = list(value)

    # -- public API --------------------------------------------------------------

    def detect(self, relation_name: str, cfds: Sequence[CFD]) -> ViolationReport:
        """Run detection of every CFD in ``cfds`` over ``relation_name``."""
        with self.telemetry.span(
            "detect", relation=relation_name, cfds=len(cfds)
        ):
            return self._detect(relation_name, cfds)

    def _detect(self, relation_name: str, cfds: Sequence[CFD]) -> ViolationReport:
        self.last_sql = []
        if not self.use_sql:
            relation = self.backend.to_relation(relation_name)
            schema = relation.schema
            tuple_count = len(relation)
            self._validate(relation_name, cfds, schema)
            violations: List[Violation] = []
            for cfd in cfds:
                for rhs_attribute in cfd.rhs:
                    sub = _sub_cfd(cfd, rhs_attribute)
                    violations.extend(self._detect_native(relation, cfd, sub))
            return self._report(relation_name, cfds, violations, tuple_count)

        schema = self._sql_preamble(relation_name, cfds)
        generator = self._generator_for(relation_name, schema)
        self.telemetry.inc(f"detect.plan_variant.{generator.detect_plan}")
        units = self._detection_units(cfds)
        violations = []
        with self._leased_tableaux(generator, relation_name, units):
            with self.backend.read_connection(snapshot=True):
                tuple_count = self.backend.row_count(relation_name)
                for unit in units:
                    _, cfd, sub, tableau_name = unit
                    violations.extend(
                        self._detect_sql(generator, schema, cfd, sub, tableau_name)
                    )
        return self._report(relation_name, cfds, violations, tuple_count)

    def detect_for_tuples(
        self, relation_name: str, cfds: Sequence[CFD], tids: Iterable[int]
    ) -> ViolationReport:
        """Detect violations restricted to those involving any tuple in ``tids``.

        Used by the explorer's "why is this tuple dirty" view and by the
        cleansing-review workflow.  On the SQL path the restriction is
        pushed down: the delta ``Q_C``/``Q_V`` plans re-check only the
        named tids and the LHS-value groups they belong to (flat tid ``IN``
        lists and dialect-branched group restrictions, chunked by the
        parameter budget), with the same report a full detection filtered
        to ``tids`` would produce.  The native path keeps the
        filter-after-detect evaluation as the oracle.
        """
        with self.telemetry.span(
            "detect_for_tuples", relation=relation_name, cfds=len(cfds)
        ):
            return self._detect_for_tuples(relation_name, cfds, tids)

    def _detect_for_tuples(
        self, relation_name: str, cfds: Sequence[CFD], tids: Iterable[int]
    ) -> ViolationReport:
        wanted = set(tids)
        if not self.use_sql:
            report = self.detect(relation_name, cfds)
            filtered = [
                violation
                for violation in report.violations
                if wanted & set(violation.tids)
            ]
            return ViolationReport(
                relation=relation_name,
                violations=filtered,
                tuple_count=report.tuple_count,
                cfd_ids=report.cfd_ids,
            )
        schema = self._sql_preamble(relation_name, cfds)
        violations: List[Violation] = []
        restrict = sorted(wanted)
        if not restrict:
            return self._report(
                relation_name, cfds, violations,
                self.backend.row_count(relation_name),
            )
        generator = self._generator_for(relation_name, schema)
        self.telemetry.inc(f"detect.plan_variant.{generator.detect_plan}")
        units = self._detection_units(cfds)
        with self._leased_tableaux(generator, relation_name, units):
            with self.backend.read_connection(snapshot=True):
                tuple_count = self.backend.row_count(relation_name)
                # the affected LHS-value groups depend on the (parent)
                # LHS alone, so one backend lookup serves every RHS
                # attribute of a merged CFD
                group_keys: Dict[int, List[Tuple[Any, ...]]] = {}
                for unit in units:
                    index, cfd, sub, tableau_name = unit
                    needs_keys = bool(
                        sub.lhs
                    ) and generator.wildcard_rhs_attributes(sub)
                    if needs_keys and index not in group_keys:
                        group_keys[index] = self._restricted_group_keys(
                            generator, cfd, restrict
                        )
                    violations.extend(
                        self._detect_sql(
                            generator,
                            schema,
                            cfd,
                            sub,
                            tableau_name,
                            restrict_tids=restrict,
                            restrict_keys=group_keys[index] if needs_keys else [],
                        )
                    )
        return self._report(relation_name, cfds, violations, tuple_count)

    # -- SQL-based path ------------------------------------------------------------

    def _sql_preamble(
        self, relation_name: str, cfds: Sequence[CFD]
    ) -> RelationSchema:
        """Shared entry of the backend-resident paths.

        Resets the SQL log and reads the schema through catalog ops — the
        queries run where the data lives and report assembly reads backend
        rows only, so the working store is never touched.  The row count
        is *not* read here: callers read it inside their read snapshot so
        the reported ``tuple_count`` is consistent with the violations
        even under a concurrent writer.
        """
        self.last_sql = []
        schema = self.backend.schema(relation_name)
        self._validate(relation_name, cfds, schema)
        return schema

    def _detection_units(
        self, cfds: Sequence[CFD]
    ) -> List[Tuple[int, CFD, CFD, str]]:
        """One ``(index, parent, sub-CFD, tableau name)`` per RHS attribute."""
        units: List[Tuple[int, CFD, CFD, str]] = []
        for index, cfd in enumerate(cfds):
            for rhs_attribute in cfd.rhs:
                sub = _sub_cfd(cfd, rhs_attribute)
                tableau_name = (
                    tableau_relation_name(sub, index) + f"_{sub.rhs[0]}"
                )
                units.append((index, cfd, sub, tableau_name))
        return units

    @contextmanager
    def _leased_tableaux(
        self,
        generator: DetectionSqlGenerator,
        relation_name: str,
        units: Sequence[Tuple[int, CFD, CFD, str]],
    ) -> Iterator[None]:
        """Hold tableau leases (and LHS indexes) for every detection unit.

        All writes the SQL path needs — index creation and tableau
        materialisation — happen here, *before* the caller opens its read
        snapshot, so the snapshot sees every tableau.  Leases are
        acquired in sorted tableau-name order: a thread only ever waits
        on names greater than every name it already holds, which rules
        out lease-wait cycles between concurrent detections.
        """
        for _, _, sub, _ in units:
            if sub.lhs:
                self.backend.ensure_index(relation_name, sub.lhs)
        acquired: List[str] = []
        try:
            for _, _, sub, tableau_name in sorted(
                units, key=lambda unit: unit[3]
            ):
                self._acquire_tableau(generator, tableau_name, sub)
                acquired.append(tableau_name)
            yield
        finally:
            for tableau_name in acquired:
                self._release_tableau(tableau_name)

    def _acquire_tableau(
        self, generator: DetectionSqlGenerator, tableau_name: str, cfd: CFD
    ) -> None:
        """Take one lease on ``tableau_name`` materialised for ``cfd``.

        The first lease claims the name (sweeping plans a previous
        occupant left behind) and materialises the tableau; later leases
        for the *same* CFD share that materialisation — the tableau's
        content is a pure function of the CFD, so sharing is safe and
        keeps concurrent detections of one CFD from re-writing each
        other's tableau mid-query.  A lease for a *different* CFD waits
        until the current occupant's leases drain, then rematerialises
        the name for itself.

        The materialisation is *cached*: when the last lease drains the
        tableau table stays in the backend, keyed by its owning CFD, so
        repeated detections over an unchanged CFD set are pure reads —
        no per-detect writer work to serialise concurrent serving on.
        """
        with self._tableau_cond:
            while True:
                entry = self._tableau_leases.get(tableau_name)
                if entry is None or (entry[0] == cfd and entry[1] == 0):
                    # unclaimed name, or a cached materialisation left by
                    # a previous detection of this same CFD
                    if entry is None:
                        generator.claim_tableau(tableau_name, cfd)
                        self.backend.add_relation(
                            tableau_to_relation(cfd, tableau_name), replace=True
                        )
                    self._tableau_leases[tableau_name] = [cfd, 1]
                    return
                if entry[0] == cfd:
                    entry[1] += 1
                    return
                if entry[1] == 0:
                    # cached for a different CFD and idle: take the name over
                    generator.claim_tableau(tableau_name, cfd)
                    self.backend.add_relation(
                        tableau_to_relation(cfd, tableau_name), replace=True
                    )
                    self._tableau_leases[tableau_name] = [cfd, 1]
                    return
                self._tableau_cond.wait()

    def _release_tableau(self, tableau_name: str) -> None:
        """Return one lease, leaving the materialisation cached.

        The entry survives at refcount zero: the tableau table and its
        compiled plans remain valid for the owning CFD, so the next
        detection of the same CFD skips the writer entirely.  A waiter
        for a different CFD is woken to take the idle name over
        (rematerialising it for its own CFD).
        """
        with self._tableau_cond:
            entry = self._tableau_leases[tableau_name]
            entry[1] -= 1
            if entry[1] == 0:
                self._tableau_cond.notify_all()

    def release_cached_tableaux(self) -> None:
        """Drop every cached tableau no detection currently holds a lease on.

        The serving cache (see :meth:`_acquire_tableau`) keeps tableau
        tables resident between detections; call this to return the
        backend to its pre-detection relation set — the facade does so on
        ``close()``.  Tableaux still leased by in-flight detections are
        left alone; they simply stay cached when those leases drain.
        """
        with self._tableau_cond:
            for tableau_name in list(self._tableau_leases):
                if self._tableau_leases[tableau_name][1] == 0:
                    del self._tableau_leases[tableau_name]
                    self.backend.drop_relation(tableau_name)

    def _report(
        self,
        relation_name: str,
        cfds: Sequence[CFD],
        violations: List[Violation],
        tuple_count: int,
    ) -> ViolationReport:
        return ViolationReport(
            relation=relation_name,
            violations=violations,
            tuple_count=tuple_count,
            cfd_ids=tuple(cfd.identifier for cfd in cfds),
        )

    def _validate(
        self, relation_name: str, cfds: Sequence[CFD], schema: RelationSchema
    ) -> None:
        for cfd in cfds:
            if cfd.relation != relation_name:
                raise DetectionError(
                    f"CFD {cfd.identifier} targets relation {cfd.relation!r}, "
                    f"not {relation_name!r}"
                )
            cfd.validate_against(schema.attribute_names)

    def _generator_for(
        self, relation_name: str, schema: RelationSchema
    ) -> DetectionSqlGenerator:
        """The cached per-relation generator (rebuilt on schema change).

        Keeping the generator across ``detect`` calls is what makes its
        prepared-plan cache effective: repeated detections over the same
        CFDs reuse the rendered ``Q_C``/``Q_V``/members statements.
        """
        requested = (
            self.detect_plan if self.detect_plan is not None else default_detect_plan()
        )
        with self._generators_lock:
            generator = self._generators.get(relation_name)
            if generator is None or generator.schema != schema:
                generator = DetectionSqlGenerator(
                    schema,
                    dialect=self.backend.dialect,
                    telemetry=self.telemetry,
                    detect_plan=requested,
                )
                self._generators[relation_name] = generator
            elif generator.requested_detect_plan != requested:
                # detect_plan flipped mid-session: re-resolve in place — the
                # variant-keyed plan cache guarantees no stale shape is served
                generator.set_detect_plan(requested)
            return generator

    def _detect_sql(
        self,
        generator: DetectionSqlGenerator,
        schema: RelationSchema,
        parent: CFD,
        cfd: CFD,
        tableau_name: str,
        restrict_tids: Optional[Sequence[int]] = None,
        restrict_keys: Optional[Sequence[Tuple[Any, ...]]] = None,
    ) -> List[Violation]:
        """Run one detection unit's queries and assemble its violations.

        Query-only: the caller holds a tableau lease for ``tableau_name``
        (see :meth:`_leased_tableaux`) and typically a read snapshot, so
        nothing here writes to the backend.
        """
        if restrict_tids is None:
            single_queries = generator.plan_single_queries(
                cfd, tableau_name, include_lhs=True
            )
            multi_queries = generator.plan_multi_queries(cfd, tableau_name)
            wanted: Optional[Set[int]] = None
        else:
            single_queries = generator.plan_delta_single(
                cfd, tableau_name, restrict_tids
            )
            multi_queries = generator.plan_delta_multi(
                cfd, tableau_name, cfd.rhs[0], list(restrict_keys or [])
            )
            wanted = set(restrict_tids)
        violations: List[Violation] = []
        violations.extend(
            self._assemble_singles(parent, cfd, schema, single_queries)
        )
        violations.extend(
            self._assemble_multis(
                generator, parent, cfd, schema, tableau_name, multi_queries, wanted
            )
        )
        return violations

    def _execute(self, query: SqlQuery) -> List[Dict[str, Any]]:
        self.last_sql.append(query.sql)
        if not self.telemetry.active:
            return self.backend.execute(query.sql, query.parameters)
        # announce the generator's statement kind so the instrumented
        # backend buckets the execution under it (q_c, delta_multi, ...)
        with self.telemetry.tag_statements(query.kind):
            return self.backend.execute(query.sql, query.parameters)

    def _restricted_group_keys(
        self,
        generator: DetectionSqlGenerator,
        cfd: CFD,
        tids: Sequence[int],
    ) -> List[Tuple[Any, ...]]:
        """The LHS-value groups the restricted tuples belong to.

        Fetched from the backend (NULL-LHS tuples excluded by the engine),
        so the restricted ``Q_V`` re-checks exactly the groups a full
        detection would have reported these tuples under.
        """
        keys: Dict[Tuple[Any, ...], None] = {}
        for plan in generator.lhs_values_plans(cfd, tids):
            for row in self._execute(plan):
                key = tuple(row[LHS_COLUMN_PREFIX + attr] for attr in cfd.lhs)
                keys[key] = None
        return list(keys)

    def _assemble_singles(
        self,
        parent: CFD,
        cfd: CFD,
        schema: RelationSchema,
        queries: Sequence[SqlQuery],
    ) -> List[Violation]:
        rhs_attribute = cfd.rhs[0]
        # With overlapping pattern tuples the same tid can violate several
        # patterns; result order is engine-dependent, so pick the lowest
        # pattern index — the rule the native and incremental paths follow.
        # The rows carry the tuple's LHS values (lhs_* columns), so no
        # working-store read is needed to label the violation.
        chosen: Dict[int, Tuple[int, Tuple[Any, ...]]] = {}
        for query in queries:
            for row in self._execute(query):
                tid = row["tid"]
                # per-pattern specialized statements carry their pattern on
                # the query; the legacy tableau join carries it per row
                if query.pattern_index is not None:
                    pattern_index = query.pattern_index
                else:
                    pattern_index = int(row.get("pattern_id", 0))
                if tid not in chosen or pattern_index < chosen[tid][0]:
                    lhs_raw = tuple(
                        row.get(LHS_COLUMN_PREFIX + attr) for attr in cfd.lhs
                    )
                    chosen[tid] = (pattern_index, lhs_raw)
        violations: List[Violation] = []
        for tid in sorted(chosen):
            pattern_index, lhs_raw = chosen[tid]
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=SINGLE,
                    tids=(tid,),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=tuple(
                        decode_backend_value(schema, attr, value)
                        for attr, value in zip(cfd.lhs, lhs_raw)
                    ),
                )
            )
        return violations

    def _assemble_multis(
        self,
        generator: DetectionSqlGenerator,
        parent: CFD,
        cfd: CFD,
        schema: RelationSchema,
        tableau_name: str,
        queries: Sequence[SqlQuery],
        wanted: Optional[Set[int]] = None,
    ) -> List[Violation]:
        rhs_attribute = cfd.rhs[0]
        # The query groups by (LHS values, pattern_id), so an LHS group
        # covered by several overlapping pattern tuples comes back once per
        # matching pattern.  Report each group exactly once, under its
        # lowest violating pattern index — the same rule the native and
        # incremental paths apply.  Keys stay in the backend's value
        # representation until the final decode, so the members plans bind
        # exactly what the engine compares against.
        grouped: Dict[Tuple[Any, ...], int] = {}
        members: Dict[Tuple[Any, ...], Set[int]] = {}
        key_columns = [LHS_COLUMN_PREFIX + attr for attr in cfd.lhs]
        if generator.one_pass_multi:
            # window family: the statements return member rows directly —
            # bucket them per group key; the member set is a property of
            # the key alone, so overlapping patterns just re-deliver it.
            # This is the serving hot loop (one iteration per member row),
            # so the group key is built from precomputed column names and
            # the bucket is fetched with a single dict probe.
            members_get = members.get
            for query in queries:
                pattern_index = query.pattern_index or 0
                for row in self._execute(query):
                    key = tuple([row[column] for column in key_columns])
                    bucket = members_get(key)
                    if bucket is None:
                        members[key] = bucket = set()
                        grouped[key] = pattern_index
                    elif pattern_index < grouped[key]:
                        grouped[key] = pattern_index
                    bucket.add(row["tid"])
        else:
            for query in queries:
                for row in self._execute(query):
                    lhs_values = tuple(row[attr] for attr in cfd.lhs)
                    if query.pattern_index is not None:
                        pattern_index = query.pattern_index
                    else:
                        pattern_index = int(row.get("pattern_id", 0))
                    if (
                        lhs_values not in grouped
                        or pattern_index < grouped[lhs_values]
                    ):
                        grouped[lhs_values] = pattern_index
            if not grouped:
                return []
            for plan in generator.covering_members_plans(
                cfd, tableau_name, rhs_attribute, list(grouped)
            ):
                for row in self._execute(plan):
                    key = tuple([row[column] for column in key_columns])
                    members.setdefault(key, set()).add(row["tid"])
        violations: List[Violation] = []
        for lhs_values, pattern_index in grouped.items():
            tids = sorted(members.get(lhs_values, []))
            if len(tids) < 2:
                continue
            if wanted is not None and not (wanted & set(tids)):
                # restricted detection: the group shares LHS values with a
                # named tuple, but that tuple is not a member (e.g. NULL
                # RHS) — a full detect + filter would not report it
                continue
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=MULTI,
                    tids=tuple(tids),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=tuple(
                        decode_backend_value(schema, attr, value)
                        for attr, value in zip(cfd.lhs, lhs_values)
                    ),
                )
            )
        return violations

    # -- native (non-SQL) path --------------------------------------------------------

    def _detect_native(
        self, relation: Relation, parent: CFD, cfd: CFD
    ) -> List[Violation]:
        rhs_attribute = cfd.rhs[0]
        violations: List[Violation] = []
        seen_single: Set[int] = set()
        for tid, pattern_index in single_tuple_violations(relation, cfd):
            if tid in seen_single:
                continue
            seen_single.add(tid)
            data_row = relation.get(tid)
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=SINGLE,
                    tids=(tid,),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=tuple(data_row.get(attr) for attr in cfd.lhs),
                )
            )
        seen_groups: Set[Tuple[Any, ...]] = set()
        for pattern_index, lhs_values, tids in multi_tuple_violation_groups(relation, cfd):
            if lhs_values in seen_groups:
                continue
            seen_groups.add(lhs_values)
            violations.append(
                Violation(
                    cfd_id=parent.identifier,
                    kind=MULTI,
                    tids=tuple(tids),
                    rhs_attribute=rhs_attribute,
                    pattern_index=pattern_index,
                    lhs_attributes=cfd.lhs,
                    lhs_values=lhs_values,
                )
            )
        return violations
