"""Error detection: CFD-to-SQL compilation, batch and incremental detection."""

from .detector import ErrorDetector
from .incremental import IncrementalDetector
from .sqlgen import DetectionQueries, DetectionSqlGenerator
from .violations import MULTI, SINGLE, Violation, ViolationReport

__all__ = [
    "ErrorDetector",
    "IncrementalDetector",
    "DetectionQueries",
    "DetectionSqlGenerator",
    "Violation",
    "ViolationReport",
    "SINGLE",
    "MULTI",
]
