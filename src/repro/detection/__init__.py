"""Error detection: CFD-to-SQL compilation, batch and incremental detection."""

from .detector import ErrorDetector
from .incremental import IncrementalDetector
from .sqlgen import (
    DETECT_PLANS,
    DetectionQueries,
    DetectionSqlGenerator,
    default_detect_plan,
    resolve_detect_plan,
)
from .violations import MULTI, SINGLE, Violation, ViolationReport

__all__ = [
    "ErrorDetector",
    "IncrementalDetector",
    "DetectionQueries",
    "DetectionSqlGenerator",
    "DETECT_PLANS",
    "default_detect_plan",
    "resolve_detect_plan",
    "Violation",
    "ViolationReport",
    "SINGLE",
    "MULTI",
]
