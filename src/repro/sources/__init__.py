"""Shared tuple sources: the read-access half of the backend pushdown.

PR 7 taught the *repair* pipeline to plan over a partial, backend-resident
view of the data.  This package extracts the read-access half of that
machinery into a layer every consumer shares: a :class:`TupleSource`
answers the relational read questions — row fetches, per-attribute value
frequencies, per-group membership counts and value histograms, pattern
applicability counts, keyset-paged scans — either from an in-memory
:class:`~repro.engine.relation.Relation` (:class:`NativeTupleSource`, the
parity oracle) or from the storage backend's resident copy
(:class:`BackendTupleSource`, which compiles each question to one of the
generator's cached, budget-chunked plans: ``value_freq`` / ``group_stats``
/ ``covering_members`` / ``row_fetch`` plus the ``majority_value`` /
``attr_freq`` / ``page_fetch`` kinds this layer introduced).

Consumers: the repair closure (:mod:`repro.repair.source`), the resident
auditor (:mod:`repro.audit.report`) and the resident explorer
(:mod:`repro.explorer.navigation`).
"""

from .base import NO_RHS_FILTER, GroupKey, TupleSource
from .native import NativeTupleSource, native_column_frequencies
from .backend import SOURCE_PLAN_SCOPE, BackendTupleSource

__all__ = [
    "GroupKey",
    "NO_RHS_FILTER",
    "TupleSource",
    "NativeTupleSource",
    "BackendTupleSource",
    "SOURCE_PLAN_SCOPE",
    "native_column_frequencies",
]
