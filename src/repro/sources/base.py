"""The :class:`TupleSource` protocol: what read-side consumers need from storage.

Every method answers a *relational read question* the auditor, explorer or
repair closure would otherwise answer by iterating a shipped copy of the
relation.  The two implementations are the parity pair the repair split
established: :class:`~repro.sources.native.NativeTupleSource` scans an
in-memory relation (the oracle), and
:class:`~repro.sources.backend.BackendTupleSource` compiles each question
to a cached, budget-chunked SQL plan that runs inside the backend.

Group keys follow the detection conventions throughout: a key is the
tuple of a row's LHS values in ``cfd.lhs`` order, keys never contain
NULL (a NULL-LHS tuple belongs to no group on any detection path), and a
group's membership criterion is LHS equality alone — pattern-constant
applicability is a function of the key, so callers check it once per key
in Python (the covering-members argument).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.cfd import CFD
from ..engine.types import RelationSchema

GroupKey = Tuple[Any, ...]

#: sentinel for "no RHS restriction" in :meth:`TupleSource.page` (``None``
#: is a real filter value: the NULL bucket)
NO_RHS_FILTER = object()


class TupleSource:
    """Read-side protocol over one stored relation."""

    #: whether the source answers from a backend-resident copy
    resident = False

    def schema(self) -> RelationSchema:
        """The relation's schema."""
        raise NotImplementedError

    def attribute_names(self) -> List[str]:
        """Attribute names of the relation (for CFD validation)."""
        return list(self.schema().attribute_names)

    def row_count(self) -> int:
        """Number of stored tuples (the tid universe of the quality map)."""
        raise NotImplementedError

    def fetch_rows(self, tids: Sequence[int]) -> Dict[int, Dict[str, Any]]:
        """Full rows of ``tids`` (decoded values); missing tids are absent."""
        raise NotImplementedError

    def value_frequencies(self) -> Dict[str, Counter]:
        """Per-attribute frequency of non-NULL values, native tie-break order."""
        raise NotImplementedError

    def group_member_counts(
        self, cfd: CFD, rhs_attribute: str, keys: Sequence[GroupKey]
    ) -> Dict[GroupKey, int]:
        """Member count per LHS-group key (RHS non-NULL); empty keys absent."""
        raise NotImplementedError

    def covering_member_tids(
        self, cfd: CFD, rhs_attribute: str, keys: Sequence[GroupKey]
    ) -> List[int]:
        """Tids of every member (RHS non-NULL) of the given LHS groups."""
        raise NotImplementedError

    def majority_values(
        self, cfd: CFD, rhs_attribute: str, keys: Sequence[GroupKey]
    ) -> Dict[GroupKey, Counter]:
        """Per-group histogram of ``rhs_attribute`` values, NULL bucket included.

        A key with no stored member is absent from the result.  Dropping
        the ``None`` entry of a group's counter yields exactly the value
        multiset ``Q_V`` would group — the members a multi-tuple violation
        on that key reports.
        """
        raise NotImplementedError

    def pattern_group_freq(
        self, cfd: CFD, pattern_index: int
    ) -> Dict[GroupKey, int]:
        """Applicable-tuple count per LHS group under one pattern row."""
        raise NotImplementedError

    def applicable_count(self, subs: Sequence[CFD]) -> int:
        """Number of tuples at least one sub-CFD's pattern applies to.

        ``subs`` are single-pattern normalised sub-CFDs; applicability is
        the LHS-only :meth:`CFD.applies_to` criterion (all LHS attributes
        non-NULL, pattern constants match).
        """
        raise NotImplementedError

    def page(
        self,
        after_tid: int = -1,
        page_size: int = 50,
        cfd: Optional[CFD] = None,
        lhs_values: Optional[GroupKey] = None,
        rhs_value: Any = NO_RHS_FILTER,
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """One keyset page of ``(tid, row)`` pairs in ascending tid order.

        ``cfd`` + ``lhs_values`` restrict to one LHS group; ``rhs_value``
        (when passed) restricts further to rows whose RHS value equals it
        (``None`` selects the NULL bucket).  The next page starts after
        the last returned tid; a short page means the scan is exhausted.
        """
        raise NotImplementedError
