"""The native tuple source: Python scans over an in-memory relation.

This is the parity oracle of the read layer — every answer comes from
iterating the relation in sorted-tid order, exactly the way the seed
auditor/explorer/repairer did.  The backend implementation
(:class:`~repro.sources.backend.BackendTupleSource`) must be
observationally identical on every method; the hypothesis properties in
``tests/sources`` and ``tests/audit`` pin that.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.cfd import CFD
from ..engine.relation import Relation
from ..engine.types import RelationSchema
from .base import NO_RHS_FILTER, GroupKey, TupleSource


def native_column_frequencies(relation: Relation) -> Dict[str, Counter]:
    """Frequency of every non-NULL value per attribute, by relation scan."""
    frequencies: Dict[str, Counter] = {
        name: Counter() for name in relation.attribute_names
    }
    for _tid, row in relation.rows():
        for attribute, value in row.items():
            if value is not None:
                frequencies[attribute][value] += 1
    return frequencies


class NativeTupleSource(TupleSource):
    """Read-side oracle over a full in-memory :class:`Relation`."""

    def __init__(self, relation: Relation):
        self.relation = relation

    def schema(self) -> RelationSchema:
        return self.relation.schema

    def row_count(self) -> int:
        return len(self.relation)

    def fetch_rows(self, tids: Sequence[int]) -> Dict[int, Dict[str, Any]]:
        return {
            tid: dict(self.relation.get(tid))
            for tid in tids
            if tid in self.relation
        }

    def value_frequencies(self) -> Dict[str, Counter]:
        return native_column_frequencies(self.relation)

    def group_member_counts(
        self, cfd: CFD, rhs_attribute: str, keys: Sequence[GroupKey]
    ) -> Dict[GroupKey, int]:
        wanted = set(keys)
        counts: Dict[GroupKey, int] = {}
        for _tid, row in self.relation.rows():
            if row.get(rhs_attribute) is None:
                continue
            key = tuple(row.get(attr) for attr in cfd.lhs)
            if key in wanted:
                counts[key] = counts.get(key, 0) + 1
        return counts

    def covering_member_tids(
        self, cfd: CFD, rhs_attribute: str, keys: Sequence[GroupKey]
    ) -> List[int]:
        wanted = set(keys)
        tids: List[int] = []
        for tid, row in self.relation.rows():
            if row.get(rhs_attribute) is None:
                continue
            if tuple(row.get(attr) for attr in cfd.lhs) in wanted:
                tids.append(tid)
        return tids

    def majority_values(
        self, cfd: CFD, rhs_attribute: str, keys: Sequence[GroupKey]
    ) -> Dict[GroupKey, Counter]:
        wanted = set(keys)
        histograms: Dict[GroupKey, Counter] = {}
        for _tid, row in self.relation.rows():
            key = tuple(row.get(attr) for attr in cfd.lhs)
            if key not in wanted:
                continue
            histograms.setdefault(key, Counter())[row.get(rhs_attribute)] += 1
        return histograms

    def pattern_group_freq(
        self, cfd: CFD, pattern_index: int
    ) -> Dict[GroupKey, int]:
        pattern = cfd.patterns[pattern_index]
        freq: Dict[GroupKey, int] = {}
        for _tid, row in self.relation.rows():
            if not cfd.applies_to(row, pattern):
                continue
            key = tuple(row.get(attr) for attr in cfd.lhs)
            freq[key] = freq.get(key, 0) + 1
        return freq

    def applicable_count(self, subs: Sequence[CFD]) -> int:
        count = 0
        for _tid, row in self.relation.rows():
            if any(sub.applies_to(row, sub.patterns[0]) for sub in subs):
                count += 1
        return count

    def page(
        self,
        after_tid: int = -1,
        page_size: int = 50,
        cfd: Optional[CFD] = None,
        lhs_values: Optional[GroupKey] = None,
        rhs_value: Any = NO_RHS_FILTER,
    ) -> List[Tuple[int, Dict[str, Any]]]:
        rows: List[Tuple[int, Dict[str, Any]]] = []
        for tid, row in self.relation.rows():
            if tid <= after_tid:
                continue
            if cfd is not None and lhs_values is not None:
                if tuple(row.get(attr) for attr in cfd.lhs) != tuple(lhs_values):
                    continue
                if rhs_value is not NO_RHS_FILTER:
                    if row.get(cfd.rhs[0]) != rhs_value:
                        continue
            rows.append((tid, dict(row)))
            if len(rows) >= page_size:
                break
        return rows
