"""The backend tuple source: every read question becomes a pushed-down plan.

Answers the :class:`~repro.sources.base.TupleSource` protocol from the
storage backend's resident copy alone — no ``to_relation`` / ``get_row`` /
``iter_rows`` on any path (the ``ForbiddenReadBackend`` pins in
``tests/audit`` / ``tests/explorer`` / ``tests/repair`` enforce this on
both backends).  Each method compiles to one of the generator's cached,
budget-chunked plan kinds:

========================  =====================================================
question                  plan kind
========================  =====================================================
``fetch_rows``            ``row_fetch`` (flat tid ``IN`` list, padded chunks)
``value_frequencies``     ``value_freq`` (one ``GROUP BY`` per attribute)
``group_member_counts``   ``group_stats`` (sargable restriction + count)
``covering_member_tids``  ``covering_members`` (index-only enumeration)
``majority_values``       ``majority_value`` (per-group RHS histogram)
``pattern_group_freq``    ``attr_freq`` (per-pattern LHS histogram)
``applicable_count``      ``attr_freq`` (OR-of-applicability count)
``page``                  ``page_fetch`` (keyset ``_tid > ?`` + ``LIMIT``)
``row_count``             — (catalog operation, no rows shipped)
========================  =====================================================

Values decode on the way back through
:func:`~repro.detection.detector.decode_backend_value`, so group keys,
histograms and fetched rows compare equal to the native source's Python
values on every backend.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..backends.base import StorageBackend
from ..core.cfd import CFD
from ..detection.detector import decode_backend_value
from ..detection.sqlgen import (
    LHS_COLUMN_PREFIX,
    DetectionSqlGenerator,
    SqlQuery,
)
from ..engine.types import RelationSchema
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .base import NO_RHS_FILTER, GroupKey, TupleSource

#: pseudo-tableau name scoping the source's covering-member plans in the
#: generator's cache (the plans join no tableau; the name is never claimed
#: by a CFD, so the cached plans survive for the generator's life)
SOURCE_PLAN_SCOPE = "__semandaq_source__"


class BackendTupleSource(TupleSource):
    """Read-side pushdown over one backend-resident relation.

    ``generator`` may be shared (the repair source passes the one scoped
    to its plan cache); when omitted a private one is built lazily over
    ``backend``'s dialect.  ``plan_scope`` names the pseudo-tableau the
    covering-member plans are cached under.
    """

    resident = True

    def __init__(
        self,
        backend: StorageBackend,
        relation_name: str,
        telemetry: Optional[Telemetry] = None,
        generator: Optional[DetectionSqlGenerator] = None,
        plan_scope: str = SOURCE_PLAN_SCOPE,
    ):
        self.backend = backend
        self.relation_name = relation_name
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.plan_scope = plan_scope
        self._schema: Optional[RelationSchema] = None
        self._generator = generator
        #: SQL issued by this source (tests and debugging read this)
        self.last_sql: List[str] = []

    # -- plumbing ---------------------------------------------------------------

    def schema(self) -> RelationSchema:
        if self._schema is None:
            self._schema = self.backend.schema(self.relation_name)
        return self._schema

    def generator(self) -> DetectionSqlGenerator:
        if self._generator is None:
            self._generator = DetectionSqlGenerator(
                self.schema(), dialect=self.backend.dialect, telemetry=self.telemetry
            )
        return self._generator

    def _execute(self, query: SqlQuery) -> List[Dict[str, Any]]:
        self.last_sql.append(query.sql)
        if not self.telemetry.active:
            return self.backend.execute(query.sql, query.parameters)
        with self.telemetry.tag_statements(query.kind):
            return self.backend.execute(query.sql, query.parameters)

    def _decode(self, attribute: str, value: Any) -> Any:
        return decode_backend_value(self.schema(), attribute, value)

    def _decode_key(self, cfd: CFD, row: Dict[str, Any]) -> GroupKey:
        return tuple(
            self._decode(attr, row[LHS_COLUMN_PREFIX + attr]) for attr in cfd.lhs
        )

    def _decode_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        return {
            attr: self._decode(attr, row.get(attr))
            for attr in self.schema().attribute_names
        }

    # -- protocol ---------------------------------------------------------------

    def row_count(self) -> int:
        return int(self.backend.row_count(self.relation_name))

    def fetch_rows(self, tids: Sequence[int]) -> Dict[int, Dict[str, Any]]:
        rows: Dict[int, Dict[str, Any]] = {}
        for plan in self.generator().row_fetch_plans(list(tids)):
            for row in self._execute(plan):
                tid = row["tid"]
                if tid in rows:
                    continue  # padding repeats the last tid
                rows[tid] = self._decode_row(row)
        return rows

    def value_frequencies(self) -> Dict[str, Counter]:
        generator = self.generator()
        frequencies: Dict[str, Counter] = {}
        for attribute in self.schema().attribute_names:
            rows = self._execute(generator.value_freq_query(attribute))
            decoded = [
                (self._decode(attribute, row["value"]), int(row["freq"]), row["first_tid"])
                for row in rows
            ]
            # (freq DESC, first-encounter tid ASC) insertion order makes
            # Counter.most_common — a stable sort on count — break ties
            # exactly like the native first-encounter Counter.
            decoded.sort(key=lambda item: (-item[1], item[2]))
            counter: Counter = Counter()
            for value, freq, _first_tid in decoded:
                counter[value] = freq
            frequencies[attribute] = counter
        return frequencies

    def group_member_counts(
        self, cfd: CFD, rhs_attribute: str, keys: Sequence[GroupKey]
    ) -> Dict[GroupKey, int]:
        counts: Dict[GroupKey, int] = {}
        for plan in self.generator().group_stats_plans(cfd, rhs_attribute, list(keys)):
            for row in self._execute(plan):
                counts[self._decode_key(cfd, row)] = int(row["member_count"])
        return counts

    def covering_member_tids(
        self, cfd: CFD, rhs_attribute: str, keys: Sequence[GroupKey]
    ) -> List[int]:
        tids: List[int] = []
        for plan in self.generator().covering_members_plans(
            cfd, self.plan_scope, rhs_attribute, list(keys)
        ):
            for row in self._execute(plan):
                tids.append(row["tid"])
        return tids

    def majority_values(
        self, cfd: CFD, rhs_attribute: str, keys: Sequence[GroupKey]
    ) -> Dict[GroupKey, Counter]:
        histograms: Dict[GroupKey, Counter] = {}
        for plan in self.generator().majority_value_plans(
            cfd, rhs_attribute, list(keys)
        ):
            for row in self._execute(plan):
                key = self._decode_key(cfd, row)
                value = self._decode(rhs_attribute, row["value"])
                histograms.setdefault(key, Counter())[value] += int(row["freq"])
        return histograms

    def pattern_group_freq(
        self, cfd: CFD, pattern_index: int
    ) -> Dict[GroupKey, int]:
        freq: Dict[GroupKey, int] = {}
        for row in self._execute(self.generator().attr_freq_query(cfd, pattern_index)):
            freq[self._decode_key(cfd, row)] = int(row["freq"])
        return freq

    def applicable_count(self, subs: Sequence[CFD]) -> int:
        if not subs:
            return 0
        generator = self.generator()
        chunks = generator.applicable_sub_chunks(list(subs))
        if len(chunks) == 1:
            rows = self._execute(generator.applicable_count_query(chunks[0]))
            return int(rows[0]["freq"]) if rows else 0
        # The OR de-duplicates only within one statement; across chunks the
        # union must happen client-side on the tids.
        tids: set = set()
        for chunk in chunks:
            for row in self._execute(generator.applicable_tids_query(chunk)):
                tids.add(row["tid"])
        return len(tids)

    def page(
        self,
        after_tid: int = -1,
        page_size: int = 50,
        cfd: Optional[CFD] = None,
        lhs_values: Optional[GroupKey] = None,
        rhs_value: Any = NO_RHS_FILTER,
    ) -> List[Tuple[int, Dict[str, Any]]]:
        generator = self.generator()
        params: List[Any] = []
        if cfd is not None and lhs_values is not None:
            if rhs_value is NO_RHS_FILTER:
                rhs_attribute, rhs_filter = None, None
            elif rhs_value is None:
                rhs_attribute, rhs_filter = cfd.rhs[0], "null"
            else:
                rhs_attribute, rhs_filter = cfd.rhs[0], "eq"
            query = generator.page_fetch_query(
                cfd,
                rhs_attribute=rhs_attribute,
                rhs_filter=rhs_filter,
                page_size=page_size,
            )
            params.extend(generator.flatten_group_keys(cfd, [tuple(lhs_values)]))
            if rhs_filter == "eq":
                params.append(rhs_value)
        else:
            query = generator.page_fetch_query(page_size=page_size)
        params.append(after_tid)
        bound = SqlQuery(
            query.sql, tuple(params), rhs_attribute=query.rhs_attribute,
            kind=query.kind,
        )
        return [
            (row["tid"], self._decode_row(row)) for row in self._execute(bound)
        ]
