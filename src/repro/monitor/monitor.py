"""The data monitor: keep detection results and repairs current under updates.

Per the paper, the data monitor "responds to updates on the data by
(1) invoking an incremental detection module … if the database has not been
cleansed; or (2) invoking an incremental repair module … otherwise".  The
:class:`DataMonitor` below implements exactly that dispatch: it owns an
:class:`~repro.detection.incremental.IncrementalDetector`, applies updates
through it, logs them, and — once the relation has been marked as cleansed —
routes update batches through the incremental repairer so the data stays
consistent without re-running the full pipeline.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..backends.base import StorageBackend
from ..core.cfd import CFD
from ..detection.incremental import NATIVE_MODE, IncrementalDetector
from ..detection.violations import ViolationReport
from ..engine.database import Database
from ..errors import MonitorError
from ..obs.telemetry import Telemetry
from ..repair.cost import CostModel
from ..repair.incremental import IncrementalRepairer
from ..repair.repairer import Repair
from .updates import Update, UpdateKind, UpdateLog


class DataMonitor:
    """Monitors one relation against a fixed set of CFDs."""

    def __init__(
        self,
        database: Database,
        relation_name: str,
        cfds: Sequence[CFD],
        cost_model: Optional[CostModel] = None,
        cleansed: bool = False,
        backend: Optional[StorageBackend] = None,
        mode: str = NATIVE_MODE,
        delta_plan: str = "auto",
        detect_plan: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.database = database
        self.relation_name = relation_name
        self.cfds = list(cfds)
        self.cost_model = cost_model or CostModel.uniform()
        #: whether the relation is considered cleansed (repair mode) or not
        #: (detection mode)
        self.cleansed = cleansed
        #: storage backend each applied update batch (and each
        #: incremental-repair changeset) is shipped to as one
        #: :class:`~repro.backends.delta.DeltaBatch`; None when the working
        #: store is the backend itself
        self.backend = backend
        self.log = UpdateLog()
        self._detector = IncrementalDetector(
            database,
            relation_name,
            self.cfds,
            mirror=backend,
            mode=mode,
            delta_plan=delta_plan,
            detect_plan=detect_plan,
            telemetry=telemetry,
        )
        self._repairer = IncrementalRepairer(cost_model=self.cost_model)
        self._repairs: List[Repair] = []

    # -- mode ------------------------------------------------------------------------

    @property
    def mode(self) -> str:
        """The *live* incremental evaluation mode (``native`` or ``sql_delta``).

        Delegates to the detector, which may have fallen back to ``native``
        after :meth:`detach_backend`.
        """
        return self._detector.mode

    def mark_cleansed(self) -> None:
        """Switch to repair mode: future updates are incrementally repaired."""
        self.cleansed = True

    def mark_dirty(self) -> None:
        """Switch back to detection-only mode."""
        self.cleansed = False

    # -- backend mirroring ------------------------------------------------------------

    @property
    def backend_desynced(self) -> bool:
        """Whether a failed mirror delta left the backend copy lagging.

        When true the attached backend no longer matches the working store;
        the owner must bulk re-sync before trusting pushed-down queries
        (the Semandaq facade does this automatically before its next
        ``detect``).
        """
        return self._detector.mirror_desynced

    def mark_backend_resynced(self) -> None:
        """Reset the detector after the owner bulk re-synced the backend.

        Clears the desync flag; a ``sql_delta`` detector additionally
        rebuilds its violation state against the fresh backend copy.
        """
        self._detector.mark_resynced()

    def detach_backend(self) -> None:
        """Stop mirroring updates to the attached backend.

        The owner calls this when retiring a monitor (e.g. after its
        relation was replaced): a stale monitor still held by user code
        must not keep shipping deltas from the detached relation into the
        backend copy of the new one.  A ``sql_delta`` detector falls back
        to native evaluation against its own working store.
        """
        self.backend = None
        self._detector.detach_mirror()

    def close(self) -> None:
        """Release the monitor's detection resources.

        Drops the ``sql_delta`` detector's resident tableaux from the query
        backend and falls back to ``native`` evaluation; a no-op in
        ``native`` mode.  The monitor itself remains attached and usable —
        call :meth:`detach_backend` to stop mirroring.
        """
        self._detector.close()

    # -- applying updates ----------------------------------------------------------------

    def apply(self, update: Update) -> Optional[int]:
        """Apply one update; returns the affected tid (new tid for inserts)."""
        if update.kind is UpdateKind.INSERT:
            tid = self._detector.insert(update.row or {})
        elif update.kind is UpdateKind.DELETE:
            if update.tid is None:
                raise MonitorError("DELETE update without a tid")
            self._detector.delete(update.tid)
            tid = update.tid
        else:
            if update.tid is None or update.changes is None:
                raise MonitorError("MODIFY update without tid/changes")
            self._detector.update(update.tid, update.changes)
            tid = update.tid
        self.log.append(update, tid)
        return tid

    def apply_batch(self, updates: Iterable[Update]) -> List[Optional[int]]:
        """Apply a batch of updates; in repair mode, incrementally repair afterwards.

        The whole batch flows to the attached backend as one coalesced
        :class:`~repro.backends.delta.DeltaBatch` — a single transaction on
        SQLite — instead of one statement-plus-commit per update, and the
        ``sql_delta`` re-checks run once for the batch.
        """
        with self._detector.batch():
            tids = [self.apply(update) for update in updates]
        if self.cleansed:
            affected = [tid for tid in tids if tid is not None]
            self.repair_affected(affected)
        return tids

    # -- detection ---------------------------------------------------------------------------

    def current_report(self) -> ViolationReport:
        """The violation report reflecting every update applied so far."""
        return self._detector.report()

    def violations_involving(self, tid: int):
        """Violations that currently involve tuple ``tid``."""
        return self._detector.affected_violations(tid)

    def detection_cost(self) -> int:
        """Tuple examinations performed by incremental detection so far."""
        return self._detector.tuples_examined

    # -- repair ------------------------------------------------------------------------------

    def repair_affected(self, tids: Sequence[int]) -> Optional[Repair]:
        """Incrementally repair violations involving ``tids`` (repair mode only)."""
        live = [tid for tid in tids if tid in self._detector.relation]
        if not live:
            return None
        repair = self._repairer.repair_updates(
            self._detector.relation, self.cfds, live
        )
        # Safety net: incremental repair must never rewrite previously
        # cleansed data (every tid outside the update batch is protected).
        # The offending tids are exactly the changes outside the batch, so
        # the check is O(#changes) — no scan of the relation's tid set.
        updated = set(live)
        offending = [
            change.tid for change in repair.changes if change.tid not in updated
        ]
        if offending:
            self._repairer.verify_untouched(repair, offending)
        # apply the repair's changes to the monitored relation and to the
        # incremental detection state (the whole changeset also reaches the
        # attached backend as one DeltaBatch through the detector's mirror)
        with self._detector.batch():
            for change in repair.changes:
                if change.tid in self._detector.relation:
                    self._detector.update(
                        change.tid, {change.attribute: change.new_value}
                    )
        self._repairs.append(repair)
        return repair

    def repairs(self) -> List[Repair]:
        """All incremental repairs performed by this monitor."""
        return list(self._repairs)

    # -- summaries ----------------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Headline numbers about the monitoring session."""
        report = self.current_report()
        return {
            "relation": self.relation_name,
            "mode": "repair" if self.cleansed else "detect",
            "incremental_mode": self._detector.mode,
            "updates_applied": len(self.log),
            "current_violations": report.total_violations(),
            "dirty_tuples": len(report.dirty_tids()),
            "incremental_repairs": len(self._repairs),
            "tuples_examined": self.detection_cost(),
            "delta_queries": self._detector.delta_queries,
            "batches_shipped": self._detector.batches_shipped,
        }
