"""Update operations and the update log consumed by the data monitor."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import MonitorError


class UpdateKind(enum.Enum):
    """The three kinds of data updates the monitor handles."""

    INSERT = "insert"
    DELETE = "delete"
    MODIFY = "modify"


@dataclass(frozen=True)
class Update:
    """One update to the monitored relation."""

    kind: UpdateKind
    row: Optional[Mapping[str, Any]] = None
    tid: Optional[int] = None
    changes: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.kind is UpdateKind.INSERT and self.row is None:
            raise MonitorError("INSERT updates need a row")
        if self.kind is UpdateKind.DELETE and self.tid is None:
            raise MonitorError("DELETE updates need a tid")
        if self.kind is UpdateKind.MODIFY and (self.tid is None or not self.changes):
            raise MonitorError("MODIFY updates need a tid and non-empty changes")

    # -- convenience constructors ---------------------------------------------------

    @classmethod
    def insert(cls, row: Mapping[str, Any]) -> "Update":
        """An insertion of ``row``."""
        return cls(kind=UpdateKind.INSERT, row=dict(row))

    @classmethod
    def delete(cls, tid: int) -> "Update":
        """A deletion of tuple ``tid``."""
        return cls(kind=UpdateKind.DELETE, tid=tid)

    @classmethod
    def modify(cls, tid: int, changes: Mapping[str, Any]) -> "Update":
        """A modification of tuple ``tid``."""
        return cls(kind=UpdateKind.MODIFY, tid=tid, changes=dict(changes))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "kind": self.kind.value,
            "row": dict(self.row) if self.row else None,
            "tid": self.tid,
            "changes": dict(self.changes) if self.changes else None,
        }


@dataclass
class UpdateLog:
    """An append-only log of updates applied through the monitor."""

    entries: List[Tuple[int, Update, Optional[int]]] = field(default_factory=list)
    _next_sequence: int = 0

    def append(self, update: Update, tid: Optional[int]) -> int:
        """Record ``update`` (with the tid it affected) and return its sequence number."""
        sequence = self._next_sequence
        self._next_sequence += 1
        self.entries.append((sequence, update, tid))
        return sequence

    def since(self, sequence: int) -> List[Tuple[int, Update, Optional[int]]]:
        """Entries with a sequence number >= ``sequence``."""
        return [entry for entry in self.entries if entry[0] >= sequence]

    def affected_tids(self) -> List[int]:
        """Tuple ids touched by any logged update (in order, deduplicated)."""
        seen: List[int] = []
        for _sequence, _update, tid in self.entries:
            if tid is not None and tid not in seen:
                seen.append(tid)
        return seen

    def __len__(self) -> int:
        return len(self.entries)
