"""The data monitor: update log and incremental detection/repair dispatch."""

from .monitor import DataMonitor
from .updates import Update, UpdateKind, UpdateLog

__all__ = ["DataMonitor", "Update", "UpdateKind", "UpdateLog"]
