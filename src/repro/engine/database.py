"""The database: a named collection of relations plus a SQL entry point.

This is the *embedded* implementation of the "Database Servers" layer of
the Semandaq architecture.  A :class:`Database` owns
:class:`~repro.engine.relation.Relation` objects and exposes an ``execute``
method that runs statements written in the SQL subset (see
:mod:`repro.engine.sql`).  The error detector compiles CFDs to SQL and runs
them through this entry point, exactly as the paper's system pushes
detection queries down to the underlying DBMS.

Since the storage-backend subsystem (:mod:`repro.backends`) was introduced,
this class is one of several database servers detection can target: it
backs :class:`~repro.backends.memory.MemoryBackend`, while
:class:`~repro.backends.sqlite.SqliteBackend` pushes the same queries down
to a real DBMS.  Components that need backend-agnostic storage should
depend on :class:`~repro.backends.base.StorageBackend` rather than on this
class; ``Database`` remains the working store for the native (non-SQL)
paths — repair, audit, exploration, incremental monitoring.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..errors import DuplicateRelationError, UnknownRelationError
from .relation import Relation
from .types import RelationSchema


class Database:
    """A named collection of relations with SQL execution."""

    def __init__(self, name: str = "semandaq"):
        self.name = name
        self._relations: Dict[str, Relation] = {}

    # -- catalog --------------------------------------------------------------

    def create_relation(
        self,
        schema: RelationSchema,
        rows: Optional[Iterable[Dict[str, Any]]] = None,
        replace: bool = False,
    ) -> Relation:
        """Create a relation from ``schema`` and optionally populate it."""
        if schema.name in self._relations and not replace:
            raise DuplicateRelationError(f"relation {schema.name!r} already exists")
        relation = Relation(schema)
        if rows is not None:
            relation.insert_many(rows)
        self._relations[schema.name] = relation
        return relation

    def add_relation(self, relation: Relation, replace: bool = False) -> Relation:
        """Register an existing :class:`Relation` object."""
        if relation.name in self._relations and not replace:
            raise DuplicateRelationError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation
        return relation

    def drop_relation(self, name: str) -> None:
        """Remove relation ``name`` from the catalog."""
        if name not in self._relations:
            raise UnknownRelationError(name)
        del self._relations[name]

    def relation(self, name: str) -> Relation:
        """Return the relation called ``name``."""
        if name not in self._relations:
            raise UnknownRelationError(name)
        return self._relations[name]

    def has_relation(self, name: str) -> bool:
        """Return whether a relation called ``name`` exists."""
        return name in self._relations

    def relation_names(self) -> List[str]:
        """Names of all relations, sorted."""
        return sorted(self._relations)

    def schema_summary(self) -> Dict[str, List[str]]:
        """Map each relation name to its attribute names.

        This mirrors the automatic schema discovery the data explorer performs
        after connecting to a database.
        """
        return {
            name: rel.attribute_names for name, rel in sorted(self._relations.items())
        }

    # -- SQL -------------------------------------------------------------------

    def execute(self, sql: str, parameters: Optional[Sequence[Any]] = None):
        """Execute a SQL statement and return a result.

        SELECT statements return a :class:`repro.engine.sql.executor.ResultSet`;
        INSERT/UPDATE/DELETE return the number of affected rows; CREATE TABLE
        returns the new :class:`Relation`.
        """
        # Imported lazily to avoid a circular import (the executor needs
        # Database for FROM-clause resolution).
        from .sql import execute_sql

        return execute_sql(self, sql, parameters)

    def query(self, sql: str, parameters: Optional[Sequence[Any]] = None) -> List[Dict[str, Any]]:
        """Run a SELECT and return its rows as a list of dicts."""
        result = self.execute(sql, parameters)
        return result.rows  # type: ignore[union-attr]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database(name={self.name!r}, relations={self.relation_names()})"
