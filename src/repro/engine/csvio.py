"""CSV and JSON import/export for relations.

Semandaq connects to existing relational data; in this reproduction, data
enters the engine either programmatically or through these loaders.  The CSV
loader can infer a schema (all-STRING by default, with optional numeric
inference) and the writers round-trip data for the examples and benchmarks.

:func:`load_csv_into` loads a CSV straight into a storage backend
(:mod:`repro.backends`) through its bulk-insert path — on the SQLite
backend that is a single ``executemany`` batch instead of per-row inserts.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from .relation import Relation
from .types import AttributeDef, DataType, RelationSchema

PathLike = Union[str, Path]


def infer_type(values: Iterable[Optional[str]]) -> DataType:
    """Infer the narrowest :class:`DataType` that fits all string ``values``.

    Empty strings and ``None`` are treated as NULL and ignored.  Preference
    order is INTEGER, FLOAT, BOOLEAN, STRING.
    """
    non_null = [v for v in values if v not in (None, "")]
    if not non_null:
        return DataType.STRING

    def all_parse(parser) -> bool:
        for value in non_null:
            try:
                parser(value)
            except (ValueError, TypeError):
                return False
        return True

    if all_parse(int):
        return DataType.INTEGER
    if all_parse(float):
        return DataType.FLOAT
    lowered = {v.strip().lower() for v in non_null}
    if lowered <= {"true", "false", "t", "f", "yes", "no", "0", "1"} and lowered & {
        "true",
        "false",
        "t",
        "f",
        "yes",
        "no",
    }:
        return DataType.BOOLEAN
    return DataType.STRING


def _rows_from_csv_text(text: str) -> List[Dict[str, str]]:
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None:
        raise SchemaError("CSV input has no header row")
    return [dict(row) for row in reader]


def _parse_csv(
    source: Union[PathLike, str],
    name: str,
    schema: Optional[RelationSchema],
    infer_types: bool,
    null_token: str,
) -> Tuple[RelationSchema, List[Dict[str, Optional[str]]]]:
    """Shared CSV front end: resolve the schema and normalise the rows.

    Returns the (possibly inferred) schema — always renamed to ``name`` —
    and the rows with ``null_token`` cells mapped to NULL and unknown
    columns dropped.  Both :func:`load_csv` and :func:`load_csv_into` build
    on this.
    """
    path = Path(source) if not (isinstance(source, str) and "\n" in source) else None
    text = path.read_text() if path is not None else str(source)
    raw_rows = _rows_from_csv_text(text)
    if schema is None:
        if not raw_rows:
            raise SchemaError("cannot infer a schema from an empty CSV")
        columns = list(raw_rows[0].keys())
        attrs: List[AttributeDef] = []
        for column in columns:
            dtype = (
                infer_type(row.get(column) for row in raw_rows)
                if infer_types
                else DataType.STRING
            )
            attrs.append(AttributeDef(column, dtype))
        schema = RelationSchema(name=name, attributes=attrs)
    elif schema.name != name:
        schema = RelationSchema(name=name, attributes=schema.attributes, key=schema.key)
    rows = [
        {
            key: (None if value == null_token or value is None else value)
            for key, value in raw.items()
            if key in schema.attribute_names
        }
        for raw in raw_rows
    ]
    return schema, rows


def load_csv(
    source: Union[PathLike, str],
    name: str,
    schema: Optional[RelationSchema] = None,
    infer_types: bool = True,
    null_token: str = "",
) -> Relation:
    """Load a CSV file (or CSV text) into a new :class:`Relation`.

    If ``schema`` is omitted, one is built from the header; column types are
    inferred from the data unless ``infer_types`` is false, in which case
    every column is STRING.  Cells equal to ``null_token`` become NULL.
    """
    schema, rows = _parse_csv(source, name, schema, infer_types, null_token)
    relation = Relation(schema)
    relation.insert_many(rows)
    return relation


def load_csv_into(
    backend,
    source: Union[PathLike, str],
    name: str,
    schema: Optional[RelationSchema] = None,
    infer_types: bool = True,
    null_token: str = "",
    replace: bool = True,
) -> List[int]:
    """Load a CSV file (or CSV text) directly into a storage backend.

    Schema handling matches :func:`load_csv`; the rows go through the
    backend's bulk-insert path (``executemany`` on SQLite) rather than an
    intermediate :class:`Relation`.  Returns the assigned tuple ids.

    ``backend`` is any :class:`repro.backends.base.StorageBackend`; the
    parameter is untyped here to keep the engine layer import-free of the
    backends package.
    """
    schema, rows = _parse_csv(source, name, schema, infer_types, null_token)
    backend.create_relation(schema, replace=replace)
    return backend.insert_many(name, rows)


def dump_csv(relation: Relation, destination: Optional[PathLike] = None) -> str:
    """Serialise ``relation`` to CSV text; also write it to ``destination`` if given."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=relation.attribute_names)
    writer.writeheader()
    for _tid, row in relation.rows():
        writer.writerow({k: ("" if v is None else v) for k, v in row.items()})
    text = buffer.getvalue()
    if destination is not None:
        Path(destination).write_text(text)
    return text


def load_json(source: Union[PathLike, str], name: str) -> Relation:
    """Load a relation from a JSON document produced by :func:`dump_json`."""
    path = Path(source) if not (isinstance(source, str) and source.lstrip().startswith("{")) else None
    text = path.read_text() if path is not None else str(source)
    document = json.loads(text)
    schema = RelationSchema.from_dict(document["schema"])
    schema = RelationSchema(name=name, attributes=schema.attributes, key=schema.key)
    relation = Relation(schema)
    relation.insert_many(document.get("rows", []))
    return relation


def dump_json(relation: Relation, destination: Optional[PathLike] = None) -> str:
    """Serialise ``relation`` (schema + rows) to a JSON document."""
    document = {
        "schema": relation.schema.to_dict(),
        "rows": relation.to_list(),
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    if destination is not None:
        Path(destination).write_text(text)
    return text
