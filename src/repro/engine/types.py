"""Value types and coercion rules for the relational engine.

The engine supports a small set of scalar types that is sufficient for the
data-quality workloads in the paper: strings, integers, floats and booleans.
``None`` represents SQL NULL.  Attribute definitions pair a name with a type
and a nullability flag; :class:`RelationSchema` is an ordered collection of
attribute definitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SchemaError, TypeMismatchError, UnknownAttributeError


class DataType(enum.Enum):
    """Scalar types supported by the engine."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Return the type whose name matches ``name`` (case-insensitive).

        Accepts a few SQL-ish aliases (``varchar``, ``text``, ``int``,
        ``double``, ``real``, ``bool``).
        """
        normalized = name.strip().lower()
        aliases = {
            "varchar": cls.STRING,
            "char": cls.STRING,
            "text": cls.STRING,
            "str": cls.STRING,
            "string": cls.STRING,
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "bigint": cls.INTEGER,
            "smallint": cls.INTEGER,
            "float": cls.FLOAT,
            "double": cls.FLOAT,
            "real": cls.FLOAT,
            "numeric": cls.FLOAT,
            "decimal": cls.FLOAT,
            "bool": cls.BOOLEAN,
            "boolean": cls.BOOLEAN,
        }
        if normalized not in aliases:
            raise SchemaError(f"unknown data type name: {name!r}")
        return aliases[normalized]

    def python_types(self) -> Tuple[type, ...]:
        """Return the Python types accepted for this data type."""
        if self is DataType.STRING:
            return (str,)
        if self is DataType.INTEGER:
            return (int,)
        if self is DataType.FLOAT:
            return (float, int)
        return (bool,)


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` to ``dtype``, raising :class:`TypeMismatchError`.

    ``None`` (NULL) passes through unchanged.  Strings are parsed for the
    numeric and boolean types so CSV-loaded data works naturally.
    """
    if value is None:
        return None
    if dtype is DataType.STRING:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)
    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError as exc:
                raise TypeMismatchError(f"cannot coerce {value!r} to INTEGER") from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to INTEGER")
    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError as exc:
                raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT") from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT")
    # BOOLEAN
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
    raise TypeMismatchError(f"cannot coerce {value!r} to BOOLEAN")


@dataclass(frozen=True)
class AttributeDef:
    """Definition of a single attribute (column) of a relation."""

    name: str
    dtype: DataType = DataType.STRING
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("attribute name must be a non-empty string")

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` for storage under this attribute."""
        if value is None:
            if not self.nullable:
                raise TypeMismatchError(f"attribute {self.name!r} is NOT NULL")
            return None
        return coerce_value(value, self.dtype)


@dataclass
class RelationSchema:
    """An ordered collection of attribute definitions with a relation name."""

    name: str
    attributes: List[AttributeDef] = field(default_factory=list)
    key: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in relation {self.name!r}"
                )
            seen.add(attr.name)
        for key_attr in self.key:
            if key_attr not in seen:
                raise SchemaError(
                    f"key attribute {key_attr!r} not present in relation {self.name!r}"
                )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(
        cls,
        name: str,
        columns: Sequence[Any],
        key: Sequence[str] = (),
    ) -> "RelationSchema":
        """Build a schema from a compact column description.

        ``columns`` may contain plain strings (STRING attributes), ``(name,
        type)`` pairs where ``type`` is a :class:`DataType` or a type name,
        or :class:`AttributeDef` instances.
        """
        attrs: List[AttributeDef] = []
        for col in columns:
            if isinstance(col, AttributeDef):
                attrs.append(col)
            elif isinstance(col, str):
                attrs.append(AttributeDef(col))
            elif isinstance(col, (tuple, list)) and len(col) == 2:
                colname, dtype = col
                if isinstance(dtype, str):
                    dtype = DataType.from_name(dtype)
                attrs.append(AttributeDef(colname, dtype))
            else:
                raise SchemaError(f"cannot interpret column description: {col!r}")
        return cls(name=name, attributes=attrs, key=tuple(key))

    # -- lookups ---------------------------------------------------------------

    @property
    def attribute_names(self) -> List[str]:
        """Names of all attributes, in declaration order."""
        return [attr.name for attr in self.attributes]

    def __contains__(self, attribute: str) -> bool:
        return any(attr.name == attribute for attr in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def attribute(self, name: str) -> AttributeDef:
        """Return the definition of attribute ``name``."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise UnknownAttributeError(self.name, name)

    def index_of(self, name: str) -> int:
        """Return the positional index of attribute ``name``."""
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise UnknownAttributeError(self.name, name)

    def project(self, names: Iterable[str]) -> "RelationSchema":
        """Return a new schema containing only ``names`` (in the given order)."""
        return RelationSchema(
            name=self.name,
            attributes=[self.attribute(n) for n in names],
        )

    # -- row handling ----------------------------------------------------------

    def coerce_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and coerce a row dict against this schema.

        Missing attributes become NULL (if nullable); unknown attributes raise.
        """
        out: Dict[str, Any] = {}
        for attr in self.attributes:
            out[attr.name] = attr.coerce(row.get(attr.name))
        unknown = set(row) - set(self.attribute_names)
        if unknown:
            raise UnknownAttributeError(self.name, sorted(unknown)[0])
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the schema to a JSON-friendly dict."""
        return {
            "name": self.name,
            "attributes": [
                {"name": a.name, "type": a.dtype.value, "nullable": a.nullable}
                for a in self.attributes
            ],
            "key": list(self.key),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RelationSchema":
        """Deserialise a schema produced by :meth:`to_dict`."""
        attrs = [
            AttributeDef(
                a["name"],
                DataType.from_name(a.get("type", "string")),
                a.get("nullable", True),
            )
            for a in data.get("attributes", [])
        ]
        return cls(name=data["name"], attributes=attrs, key=tuple(data.get("key", ())))


def values_equal(left: Any, right: Any) -> bool:
    """SQL-style equality used throughout the engine.

    NULL is never equal to anything (including NULL); numeric values compare
    across int/float.
    """
    if left is None or right is None:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right if isinstance(left, bool) and isinstance(right, bool) else False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right


def compare_values(left: Any, right: Any) -> Optional[int]:
    """Three-way comparison with SQL NULL semantics.

    Returns -1/0/+1, or ``None`` when either side is NULL or the values are
    not comparable.
    """
    if left is None or right is None:
        return None
    try:
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            lf, rf = float(left), float(right)
            return (lf > rf) - (lf < rf)
        if isinstance(left, str) and isinstance(right, str):
            return (left > right) - (left < right)
        if isinstance(left, bool) and isinstance(right, bool):
            return (left > right) - (left < right)
    except TypeError:
        return None
    return None
