"""Hash indexes over relations.

The paper's constraint engine "maximally leverages the use of indices and
other optimizations provided by the DBMS".  Our substrate provides composite
hash indexes that map a tuple of attribute values to the set of tuple ids
holding those values.  Indexes are maintained incrementally by the owning
:class:`~repro.engine.relation.Relation` on every insert, delete and update.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Set, Tuple


class HashIndex:
    """A composite hash index over one or more attributes of a relation."""

    def __init__(self, attributes: Iterable[str]):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if not self.attributes:
            raise ValueError("an index needs at least one attribute")
        self._buckets: Dict[Tuple[Any, ...], Set[int]] = {}

    # -- keys -----------------------------------------------------------------

    def key_for(self, row: Dict[str, Any]) -> Tuple[Any, ...]:
        """Extract the index key for ``row``."""
        return tuple(row.get(attr) for attr in self.attributes)

    # -- maintenance -----------------------------------------------------------

    def add(self, tid: int, row: Dict[str, Any]) -> None:
        """Register tuple ``tid`` with values taken from ``row``."""
        self._buckets.setdefault(self.key_for(row), set()).add(tid)

    def remove(self, tid: int, row: Dict[str, Any]) -> None:
        """Unregister tuple ``tid`` whose values are in ``row``."""
        key = self.key_for(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(tid)
        if not bucket:
            del self._buckets[key]

    def update(self, tid: int, old_row: Dict[str, Any], new_row: Dict[str, Any]) -> None:
        """Move tuple ``tid`` from its old key to its new key if it changed."""
        old_key = self.key_for(old_row)
        new_key = self.key_for(new_row)
        if old_key == new_key:
            return
        self.remove(tid, old_row)
        self.add(tid, new_row)

    def clear(self) -> None:
        """Drop all entries."""
        self._buckets.clear()

    def rebuild(self, rows: Iterable[Tuple[int, Dict[str, Any]]]) -> None:
        """Rebuild the index from scratch from ``(tid, row)`` pairs."""
        self.clear()
        for tid, row in rows:
            self.add(tid, row)

    # -- lookups ---------------------------------------------------------------

    def lookup(self, *values: Any) -> Set[int]:
        """Return the tuple ids whose indexed attributes equal ``values``."""
        if len(values) != len(self.attributes):
            raise ValueError(
                f"index on {self.attributes} expects {len(self.attributes)} values, "
                f"got {len(values)}"
            )
        return set(self._buckets.get(tuple(values), set()))

    def lookup_key(self, key: Tuple[Any, ...]) -> Set[int]:
        """Return the tuple ids stored under the exact ``key``."""
        return set(self._buckets.get(key, set()))

    def groups(self) -> Iterator[Tuple[Tuple[Any, ...], Set[int]]]:
        """Iterate over ``(key, tids)`` pairs — useful for group-by style scans."""
        for key, tids in self._buckets.items():
            yield key, set(tids)

    def keys(self) -> List[Tuple[Any, ...]]:
        """Return all distinct keys present in the index."""
        return list(self._buckets.keys())

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashIndex(attributes={self.attributes}, distinct_keys={len(self)})"
