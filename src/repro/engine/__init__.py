"""Relational engine substrate: typed relations, indexes, SQL, CSV/JSON I/O.

This package plays the role of the "Database Servers" layer in the Semandaq
architecture (Fig. 1 of the paper): it stores the data to be cleaned and
executes the SQL that the error detector generates from CFDs.
"""

from .csvio import dump_csv, dump_json, load_csv, load_json
from .database import Database
from .index import HashIndex
from .relation import Relation
from .sql import ResultSet, execute_sql, parse_sql
from .types import AttributeDef, DataType, RelationSchema

__all__ = [
    "AttributeDef",
    "DataType",
    "Database",
    "HashIndex",
    "Relation",
    "RelationSchema",
    "ResultSet",
    "dump_csv",
    "dump_json",
    "execute_sql",
    "load_csv",
    "load_json",
    "parse_sql",
]
