"""In-memory relations with stable tuple identifiers.

A :class:`Relation` stores rows as dictionaries keyed by attribute name and
assigns each row a stable integer tuple id (``tid``).  Tuple ids are what the
error detector, auditor and cleanser use to refer to tuples, mirroring the
row identifiers a DBMS would expose.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConstraintViolationError, SchemaError, UnknownTupleError
from .index import HashIndex
from .types import AttributeDef, DataType, RelationSchema


class Relation:
    """A mutable, typed, in-memory relation."""

    def __init__(self, schema: RelationSchema):
        self.schema = schema
        self._rows: Dict[int, Dict[str, Any]] = {}
        self._next_tid = 0
        self._indexes: Dict[Tuple[str, ...], HashIndex] = {}
        if schema.key:
            self.create_index(schema.key)

    # -- basic properties -------------------------------------------------------

    @property
    def name(self) -> str:
        """The relation name from its schema."""
        return self.schema.name

    @property
    def attribute_names(self) -> List[str]:
        """Attribute names in declaration order."""
        return self.schema.attribute_names

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, tid: int) -> bool:
        return tid in self._rows

    def tids(self) -> List[int]:
        """Return all live tuple ids (ascending)."""
        return sorted(self._rows)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: RelationSchema,
        rows: Iterable[Dict[str, Any]],
    ) -> "Relation":
        """Build a relation from an iterable of row dicts."""
        relation = cls(schema)
        for row in rows:
            relation.insert(row)
        return relation

    @classmethod
    def from_tid_rows(
        cls,
        schema: RelationSchema,
        pairs: Iterable[Tuple[int, Dict[str, Any]]],
    ) -> "Relation":
        """Build a relation from ``(tid, row)`` pairs, preserving the tids.

        Storage backends use this to materialise a stored relation without
        renumbering its tuples (tids may contain gaps after deletions).
        """
        relation = cls(schema)
        for tid, row in pairs:
            relation.insert_at(tid, dict(row))
        return relation

    def copy(self) -> "Relation":
        """Return a deep copy preserving tuple ids and indexes."""
        clone = Relation(self.schema)
        clone._rows = {tid: dict(row) for tid, row in self._rows.items()}
        clone._next_tid = self._next_tid
        for attrs in self._indexes:
            if attrs not in clone._indexes:
                clone.create_index(attrs)
        for index in clone._indexes.values():
            index.rebuild(clone._rows.items())
        return clone

    # -- mutation ----------------------------------------------------------------

    def insert(self, row: Dict[str, Any]) -> int:
        """Insert ``row`` (coerced against the schema) and return its tid."""
        coerced = self.schema.coerce_row(row)
        self._check_key(coerced, exclude_tid=None)
        tid = self._next_tid
        self._next_tid += 1
        self._rows[tid] = coerced
        for index in self._indexes.values():
            index.add(tid, coerced)
        return tid

    def insert_many(self, rows: Iterable[Dict[str, Any]]) -> List[int]:
        """Insert every row in ``rows`` and return the assigned tids."""
        return [self.insert(row) for row in rows]

    def insert_at(self, tid: int, row: Dict[str, Any]) -> int:
        """Insert ``row`` under the caller-chosen tuple id ``tid``.

        Storage backends mirroring another store use this to keep tuple ids
        aligned across copies.  The tid must not be live; the internal tid
        counter advances past it so later plain inserts never collide.
        """
        if tid < 0:
            raise ConstraintViolationError(f"tuple ids must be non-negative, got {tid}")
        if tid in self._rows:
            raise ConstraintViolationError(
                f"tuple id {tid} is already live in relation {self.name!r}"
            )
        coerced = self.schema.coerce_row(row)
        self._check_key(coerced, exclude_tid=None)
        self._rows[tid] = coerced
        self._next_tid = max(self._next_tid, tid + 1)
        for index in self._indexes.values():
            index.add(tid, coerced)
        return tid

    def delete(self, tid: int) -> Dict[str, Any]:
        """Delete tuple ``tid`` and return its former row."""
        row = self._require(tid)
        del self._rows[tid]
        for index in self._indexes.values():
            index.remove(tid, row)
        return row

    def update(self, tid: int, changes: Dict[str, Any]) -> Dict[str, Any]:
        """Apply ``changes`` (attribute -> new value) to tuple ``tid``.

        Returns the previous row contents.
        """
        old_row = self._require(tid)
        new_row = dict(old_row)
        for attr_name, value in changes.items():
            attr = self.schema.attribute(attr_name)
            new_row[attr_name] = attr.coerce(value)
        self._check_key(new_row, exclude_tid=tid)
        self._rows[tid] = new_row
        for index in self._indexes.values():
            index.update(tid, old_row, new_row)
        return old_row

    def clear(self) -> None:
        """Remove every tuple (tuple ids are not reused)."""
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

    # -- access ------------------------------------------------------------------

    def get(self, tid: int) -> Dict[str, Any]:
        """Return a copy of tuple ``tid``."""
        return dict(self._require(tid))

    def value(self, tid: int, attribute: str) -> Any:
        """Return a single attribute value of tuple ``tid``."""
        self.schema.attribute(attribute)
        return self._require(tid).get(attribute)

    def rows(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Iterate over ``(tid, row)`` pairs; rows are copies."""
        for tid in sorted(self._rows):
            yield tid, dict(self._rows[tid])

    def to_list(self) -> List[Dict[str, Any]]:
        """Return all rows (copies) in tid order, without tids."""
        return [dict(self._rows[tid]) for tid in sorted(self._rows)]

    def select(
        self, predicate: Callable[[Dict[str, Any]], bool]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Return ``(tid, row)`` pairs for rows satisfying ``predicate``."""
        return [(tid, dict(row)) for tid, row in self.rows() if predicate(row)]

    def distinct_values(self, attribute: str) -> List[Any]:
        """Return the distinct values of ``attribute`` (NULLs excluded)."""
        self.schema.attribute(attribute)
        seen: Dict[Any, None] = {}
        for _tid, row in self.rows():
            value = row.get(attribute)
            if value is not None and value not in seen:
                seen[value] = None
        return list(seen)

    # -- indexes -------------------------------------------------------------------

    def create_index(self, attributes: Sequence[str]) -> HashIndex:
        """Create (or return an existing) hash index on ``attributes``."""
        key = tuple(attributes)
        for attr in key:
            self.schema.attribute(attr)
        if key in self._indexes:
            return self._indexes[key]
        index = HashIndex(key)
        index.rebuild(self._rows.items())
        self._indexes[key] = index
        return index

    def index_on(self, attributes: Sequence[str]) -> Optional[HashIndex]:
        """Return the index on exactly ``attributes``, if one exists."""
        return self._indexes.get(tuple(attributes))

    def lookup(self, attributes: Sequence[str], values: Sequence[Any]) -> List[int]:
        """Return tids whose ``attributes`` equal ``values`` (index-accelerated)."""
        index = self.create_index(attributes)
        return sorted(index.lookup(*values))

    # -- internal -------------------------------------------------------------------

    def _require(self, tid: int) -> Dict[str, Any]:
        if tid not in self._rows:
            raise UnknownTupleError(tid)
        return self._rows[tid]

    def _check_key(self, row: Dict[str, Any], exclude_tid: Optional[int]) -> None:
        if not self.schema.key:
            return
        key_values = tuple(row.get(attr) for attr in self.schema.key)
        if any(value is None for value in key_values):
            raise ConstraintViolationError(
                f"key attributes {self.schema.key} of {self.name!r} cannot be NULL"
            )
        index = self._indexes.get(tuple(self.schema.key))
        if index is None:
            return
        existing = index.lookup(*key_values) - ({exclude_tid} if exclude_tid is not None else set())
        if existing:
            raise ConstraintViolationError(
                f"duplicate key {key_values!r} in relation {self.name!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation(name={self.name!r}, arity={len(self.schema)}, size={len(self)})"
