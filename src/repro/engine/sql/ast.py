"""Abstract syntax tree for the SQL subset.

The subset is dimensioned for the CFD detection queries of the paper
(cross joins against pattern tableaux, WHERE with matching predicates,
GROUP BY / HAVING with COUNT(DISTINCT ...)) plus the DML needed by the
data monitor (INSERT / UPDATE / DELETE) and CREATE TABLE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for all expression nodes."""


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value (string, number, boolean or NULL)."""

    value: Any


@dataclass(frozen=True)
class Parameter(Expression):
    """A positional ``?`` parameter, filled at execution time."""

    index: int


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference such as ``t.ZIP`` or ``ZIP``."""

    name: str
    table: Optional[str] = None

    def key(self) -> str:
        """The display/key form, e.g. ``t.ZIP``."""
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``alias.*`` in a select list or ``COUNT(*)``."""

    table: Optional[str] = None


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operator: ``NOT expr`` or ``-expr``."""

    op: str
    operand: Expression


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operator: comparisons, AND/OR, arithmetic, string concat."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: Tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar or aggregate function call.

    ``distinct`` applies only to aggregates (``COUNT(DISTINCT x)``).
    """

    name: str
    args: Tuple[Expression, ...]
    distinct: bool = False

    @property
    def lowered_name(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE WHEN cond THEN value [WHEN ...] [ELSE value] END``."""

    whens: Tuple[Tuple[Expression, Expression], ...]
    else_value: Optional[Expression] = None


AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


def contains_aggregate(expr: Expression) -> bool:
    """Return whether ``expr`` contains an aggregate function call."""
    if isinstance(expr, FunctionCall):
        if expr.lowered_name in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, InList):
        return contains_aggregate(expr.operand) or any(
            contains_aggregate(item) for item in expr.items
        )
    if isinstance(expr, Like):
        return contains_aggregate(expr.operand) or contains_aggregate(expr.pattern)
    if isinstance(expr, CaseWhen):
        for cond, value in expr.whens:
            if contains_aggregate(cond) or contains_aggregate(value):
                return True
        return expr.else_value is not None and contains_aggregate(expr.else_value)
    return False


def column_refs(expr: Expression) -> List[ColumnRef]:
    """Collect every :class:`ColumnRef` appearing in ``expr``."""
    refs: List[ColumnRef] = []

    def visit(node: Expression) -> None:
        if isinstance(node, ColumnRef):
            refs.append(node)
        elif isinstance(node, UnaryOp):
            visit(node.operand)
        elif isinstance(node, BinaryOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, IsNull):
            visit(node.operand)
        elif isinstance(node, InList):
            visit(node.operand)
            for item in node.items:
                visit(item)
        elif isinstance(node, Like):
            visit(node.operand)
            visit(node.pattern)
        elif isinstance(node, FunctionCall):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, CaseWhen):
            for cond, value in node.whens:
                visit(cond)
                visit(value)
            if node.else_value is not None:
                visit(node.else_value)

    visit(expr)
    return refs


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for all statements."""


@dataclass(frozen=True)
class SelectItem:
    """One item of a select list: an expression with an optional alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A base-table reference in a FROM clause, with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name the table is visible under inside the query."""
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    """An explicit ``JOIN ... ON ...`` (INNER only)."""

    table: TableRef
    condition: Expression


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key with its direction."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement."""

    items: Tuple[SelectItem, ...]
    from_tables: Tuple[TableRef, ...]
    joins: Tuple[Join, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO table (cols) VALUES (...), (...)``."""

    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expression, ...], ...]


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE table SET col = expr [, ...] [WHERE expr]``."""

    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM table [WHERE expr]``."""

    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class ColumnDef:
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str
    not_null: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    """``CREATE TABLE name (col type [NOT NULL], ...)``."""

    name: str
    columns: Tuple[ColumnDef, ...]
    primary_key: Tuple[str, ...] = ()


@dataclass(frozen=True)
class DropTable(Statement):
    """``DROP TABLE name``."""

    name: str
    if_exists: bool = False
