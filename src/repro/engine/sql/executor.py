"""Executor for the SQL subset.

Evaluates logical plans produced by :mod:`repro.engine.sql.planner` against a
:class:`~repro.engine.database.Database`, and executes DML / DDL statements
directly.  SELECT results are returned as :class:`ResultSet` objects.

During execution each intermediate row is represented as a dict keyed by
``binding.column``.  Base-table scans additionally expose a ``binding._tid``
pseudo-column so that queries (in particular the CFD detection queries) can
return stable tuple identifiers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...errors import SqlExecutionError
from ..types import AttributeDef, DataType, RelationSchema, compare_values, values_equal
from . import ast
from .functions import aggregate, call_scalar, is_scalar_function
from .parser import parse_sql
from .planner import (
    AggregateNode,
    CrossJoinNode,
    DistinctNode,
    FilterNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    plan_select,
)

TID_COLUMN = "_tid"


@dataclass
class ResultSet:
    """The result of a SELECT: ordered column names plus rows as dicts."""

    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> List[Any]:
        """Return all values of output column ``name``."""
        if name not in self.columns:
            raise SqlExecutionError(f"unknown output column {name!r}")
        return [row.get(name) for row in self.rows]

    def scalar(self) -> Any:
        """Return the single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlExecutionError(
                f"scalar() expects a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][self.columns[0]]

    def to_tuples(self) -> List[Tuple[Any, ...]]:
        """Return rows as tuples ordered by the output columns."""
        return [tuple(row.get(col) for col in self.columns) for row in self.rows]


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def resolve_column(env: Dict[str, Any], ref: ast.ColumnRef) -> Any:
    """Resolve a column reference against an execution row ``env``."""
    if ref.table is not None:
        key = f"{ref.table}.{ref.name}"
        if key in env:
            return env[key]
        raise SqlExecutionError(f"unknown column {key!r}")
    if ref.name in env:
        return env[ref.name]
    suffix = f".{ref.name}"
    matches = [key for key in env if key.endswith(suffix)]
    if len(matches) == 1:
        return env[matches[0]]
    if not matches:
        raise SqlExecutionError(f"unknown column {ref.name!r}")
    raise SqlExecutionError(
        f"ambiguous column {ref.name!r}: candidates {sorted(matches)}"
    )


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    regex_parts: List[str] = []
    for ch in pattern:
        if ch == "%":
            regex_parts.append(".*")
        elif ch == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(ch))
    return re.compile("^" + "".join(regex_parts) + "$", re.DOTALL)


class ExpressionEvaluator:
    """Evaluates expressions against execution rows, with SQL NULL semantics."""

    def __init__(self, parameters: Sequence[Any] = ()):  # noqa: D107
        self.parameters = list(parameters)

    # The ``group`` argument carries the rows of the current group so that
    # aggregate function calls can be evaluated; it is ``None`` outside of an
    # AggregateNode.
    def evaluate(
        self,
        expr: ast.Expression,
        env: Dict[str, Any],
        group: Optional[List[Dict[str, Any]]] = None,
    ) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Parameter):
            if expr.index >= len(self.parameters):
                raise SqlExecutionError(
                    f"missing value for parameter #{expr.index + 1}"
                )
            return self.parameters[expr.index]
        if isinstance(expr, ast.ColumnRef):
            return resolve_column(env, expr)
        if isinstance(expr, ast.Star):
            raise SqlExecutionError("'*' is only valid in a select list or COUNT(*)")
        if isinstance(expr, ast.UnaryOp):
            return self._unary(expr, env, group)
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, env, group)
        if isinstance(expr, ast.IsNull):
            value = self.evaluate(expr.operand, env, group)
            result = value is None
            return (not result) if expr.negated else result
        if isinstance(expr, ast.InList):
            return self._in_list(expr, env, group)
        if isinstance(expr, ast.Like):
            return self._like(expr, env, group)
        if isinstance(expr, ast.FunctionCall):
            return self._function(expr, env, group)
        if isinstance(expr, ast.CaseWhen):
            for condition, value in expr.whens:
                if self.evaluate(condition, env, group) is True:
                    return self.evaluate(value, env, group)
            if expr.else_value is not None:
                return self.evaluate(expr.else_value, env, group)
            return None
        raise SqlExecutionError(f"cannot evaluate expression of type {type(expr).__name__}")

    # -- operators -------------------------------------------------------------

    def _unary(self, expr: ast.UnaryOp, env, group) -> Any:
        value = self.evaluate(expr.operand, env, group)
        if expr.op == "not":
            if value is None:
                return None
            return not bool(value)
        if expr.op == "-":
            return None if value is None else -value
        raise SqlExecutionError(f"unknown unary operator {expr.op!r}")

    def _binary(self, expr: ast.BinaryOp, env, group) -> Any:
        op = expr.op
        if op == "and":
            left = self.evaluate(expr.left, env, group)
            if left is False:
                return False
            right = self.evaluate(expr.right, env, group)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return bool(left) and bool(right)
        if op == "or":
            left = self.evaluate(expr.left, env, group)
            if left is True:
                return True
            right = self.evaluate(expr.right, env, group)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return bool(left) or bool(right)

        left = self.evaluate(expr.left, env, group)
        right = self.evaluate(expr.right, env, group)
        if op == "=":
            if left is None or right is None:
                return None
            return values_equal(left, right)
        if op == "<>":
            if left is None or right is None:
                return None
            return not values_equal(left, right)
        if op in ("<", "<=", ">", ">="):
            comparison = compare_values(left, right)
            if comparison is None:
                return None
            if op == "<":
                return comparison < 0
            if op == "<=":
                return comparison <= 0
            if op == ">":
                return comparison > 0
            return comparison >= 0
        if op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        if op in ("+", "-", "*", "/", "%"):
            if left is None or right is None:
                return None
            try:
                if op == "+":
                    return left + right
                if op == "-":
                    return left - right
                if op == "*":
                    return left * right
                if op == "/":
                    return left / right
                return left % right
            except (TypeError, ZeroDivisionError) as exc:
                raise SqlExecutionError(f"arithmetic error: {exc}") from exc
        raise SqlExecutionError(f"unknown operator {op!r}")

    def _in_list(self, expr: ast.InList, env, group) -> Any:
        value = self.evaluate(expr.operand, env, group)
        if value is None:
            return None
        found = False
        saw_null = False
        for item in expr.items:
            candidate = self.evaluate(item, env, group)
            if candidate is None:
                saw_null = True
            elif values_equal(value, candidate):
                found = True
                break
        if found:
            return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _like(self, expr: ast.Like, env, group) -> Any:
        value = self.evaluate(expr.operand, env, group)
        pattern = self.evaluate(expr.pattern, env, group)
        if value is None or pattern is None:
            return None
        matched = _like_to_regex(str(pattern)).match(str(value)) is not None
        return (not matched) if expr.negated else matched

    def _function(self, expr: ast.FunctionCall, env, group) -> Any:
        name = expr.lowered_name
        if name in ast.AGGREGATE_FUNCTIONS:
            if group is None:
                raise SqlExecutionError(
                    f"aggregate {expr.name.upper()} used outside GROUP BY context"
                )
            if name == "count" and (not expr.args or isinstance(expr.args[0], ast.Star)):
                return len(group)
            if not expr.args:
                raise SqlExecutionError(f"{expr.name.upper()} requires an argument")
            values = [self.evaluate(expr.args[0], row, None) for row in group]
            return aggregate(name, values, distinct=expr.distinct)
        if is_scalar_function(name):
            args = [self.evaluate(arg, env, group) for arg in expr.args]
            return call_scalar(name, args)
        raise SqlExecutionError(f"unknown function {expr.name!r}")


# ---------------------------------------------------------------------------
# Plan execution
# ---------------------------------------------------------------------------


def _output_name(item: ast.SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expression, ast.ColumnRef):
        return item.expression.name
    if isinstance(item.expression, ast.FunctionCall):
        return item.expression.lowered_name
    return f"col{position}"


class PlanExecutor:
    """Executes a logical SELECT plan against a database."""

    def __init__(self, database, evaluator: ExpressionEvaluator):
        self.database = database
        self.evaluator = evaluator

    def execute(self, node: PlanNode) -> ResultSet:
        rows = self._rows(node)
        if isinstance(node, (ProjectNode, AggregateNode, DistinctNode, SortNode, LimitNode)):
            columns = self._output_columns(node)
        else:  # pragma: no cover - plans always end in a projection
            columns = sorted({key for row in rows for key in row})
        return ResultSet(columns=columns, rows=rows)

    def _output_columns(self, node: PlanNode) -> List[str]:
        if isinstance(node, (DistinctNode, SortNode, LimitNode)):
            return self._output_columns(node.child)
        if isinstance(node, ProjectNode):
            return self._project_columns(node.items)
        if isinstance(node, AggregateNode):
            return self._project_columns(node.items)
        raise SqlExecutionError("plan does not end in a projection")

    def _project_columns(self, items: Tuple[ast.SelectItem, ...]) -> List[str]:
        columns: List[str] = []
        for position, item in enumerate(items):
            if isinstance(item.expression, ast.Star):
                columns.append("*")
            else:
                columns.append(_output_name(item, position))
        return columns

    # -- row production ----------------------------------------------------------

    def _rows(self, node: PlanNode) -> List[Dict[str, Any]]:
        if isinstance(node, ScanNode):
            return self._scan(node)
        if isinstance(node, CrossJoinNode):
            left_rows = self._rows(node.left)
            right_rows = self._rows(node.right)
            joined: List[Dict[str, Any]] = []
            for left in left_rows:
                for right in right_rows:
                    combined = dict(left)
                    combined.update(right)
                    joined.append(combined)
            return joined
        if isinstance(node, FilterNode):
            return [
                row
                for row in self._rows(node.child)
                if self.evaluator.evaluate(node.predicate, row) is True
            ]
        if isinstance(node, AggregateNode):
            return self._aggregate(node)
        if isinstance(node, ProjectNode):
            return [self._project_row(node.items, row) for row in self._rows(node.child)]
        if isinstance(node, DistinctNode):
            seen: List[Tuple] = []
            output: List[Dict[str, Any]] = []
            seen_set = set()
            for row in self._rows(node.child):
                key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
                try:
                    hashable = key
                    if hashable in seen_set:
                        continue
                    seen_set.add(hashable)
                except TypeError:
                    if key in seen:
                        continue
                    seen.append(key)
                output.append(row)
            return output
        if isinstance(node, SortNode):
            rows = self._rows(node.child)

            def sort_env(row: Dict[str, Any]) -> Dict[str, Any]:
                if not node.items:
                    return row
                extended = dict(row)
                for position, item in enumerate(node.items):
                    if isinstance(item.expression, ast.Star):
                        continue
                    name = _output_name(item, position)
                    if name not in extended:
                        try:
                            extended[name] = self.evaluator.evaluate(item.expression, row)
                        except SqlExecutionError:
                            continue
                return extended

            for key in reversed(node.keys):
                rows.sort(
                    key=lambda row, k=key: _sort_key(
                        self.evaluator.evaluate(k.expression, sort_env(row))
                    ),
                    reverse=not key.ascending,
                )
            return rows
        if isinstance(node, LimitNode):
            return self._rows(node.child)[: node.limit]
        raise SqlExecutionError(f"unknown plan node {type(node).__name__}")

    def _scan(self, node: ScanNode) -> List[Dict[str, Any]]:
        if not node.relation:
            return [{}]
        relation = self.database.relation(node.relation)
        binding = node.binding
        rows: List[Dict[str, Any]] = []
        for tid, row in relation.rows():
            env = {f"{binding}.{column}": value for column, value in row.items()}
            env[f"{binding}.{TID_COLUMN}"] = tid
            rows.append(env)
        return rows

    def _project_row(
        self, items: Tuple[ast.SelectItem, ...], row: Dict[str, Any]
    ) -> Dict[str, Any]:
        output: Dict[str, Any] = {}
        for position, item in enumerate(items):
            if isinstance(item.expression, ast.Star):
                prefix = f"{item.expression.table}." if item.expression.table else ""
                for key, value in row.items():
                    if key.endswith(f".{TID_COLUMN}"):
                        continue
                    if prefix and not key.startswith(prefix):
                        continue
                    short = key.split(".", 1)[1] if "." in key else key
                    output.setdefault(short, value)
                continue
            output[_output_name(item, position)] = self.evaluator.evaluate(
                item.expression, row
            )
        return output

    def _aggregate(self, node: AggregateNode) -> List[Dict[str, Any]]:
        input_rows = self._rows(node.child)
        groups: Dict[Tuple, List[Dict[str, Any]]] = {}
        order: List[Tuple] = []
        if node.group_by:
            for row in input_rows:
                key = tuple(
                    _hashable(self.evaluator.evaluate(expr, row)) for expr in node.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
        else:
            groups[()] = input_rows
            order.append(())
        output: List[Dict[str, Any]] = []
        for key in order:
            group_rows = groups[key]
            representative = group_rows[0] if group_rows else {}
            if node.having is not None:
                verdict = self.evaluator.evaluate(node.having, representative, group_rows)
                if verdict is not True:
                    continue
            out_row: Dict[str, Any] = {}
            for position, item in enumerate(node.items):
                if isinstance(item.expression, ast.Star):
                    raise SqlExecutionError("'*' cannot appear in an aggregate select list")
                out_row[_output_name(item, position)] = self.evaluator.evaluate(
                    item.expression, representative, group_rows
                )
            output.append(out_row)
        return output


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return str(value)


def _sort_key(value: Any) -> Tuple[int, Any]:
    """Sort NULLs first, then by type bucket, then value."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, float(value))
    return (3, str(value))


# ---------------------------------------------------------------------------
# Statement dispatch
# ---------------------------------------------------------------------------


def execute_sql(database, sql: str, parameters: Optional[Sequence[Any]] = None):
    """Parse and execute one SQL statement against ``database``."""
    statement = parse_sql(sql)
    return execute_statement(database, statement, parameters)


def execute_statement(database, statement: ast.Statement, parameters: Optional[Sequence[Any]] = None):
    """Execute an already-parsed statement."""
    evaluator = ExpressionEvaluator(parameters or ())
    if isinstance(statement, ast.Select):
        plan = plan_select(statement)
        return PlanExecutor(database, evaluator).execute(plan.root)
    if isinstance(statement, ast.Insert):
        return _execute_insert(database, statement, evaluator)
    if isinstance(statement, ast.Update):
        return _execute_update(database, statement, evaluator)
    if isinstance(statement, ast.Delete):
        return _execute_delete(database, statement, evaluator)
    if isinstance(statement, ast.CreateTable):
        return _execute_create_table(database, statement)
    if isinstance(statement, ast.DropTable):
        return _execute_drop_table(database, statement)
    raise SqlExecutionError(f"unsupported statement type {type(statement).__name__}")


def _execute_insert(database, statement: ast.Insert, evaluator: ExpressionEvaluator) -> int:
    relation = database.relation(statement.table)
    columns = list(statement.columns) if statement.columns else relation.attribute_names
    inserted = 0
    for value_exprs in statement.rows:
        if len(value_exprs) != len(columns):
            raise SqlExecutionError(
                f"INSERT expects {len(columns)} values, got {len(value_exprs)}"
            )
        row = {
            column: evaluator.evaluate(expr, {})
            for column, expr in zip(columns, value_exprs)
        }
        relation.insert(row)
        inserted += 1
    return inserted


def _row_env(relation_name: str, tid: int, row: Dict[str, Any]) -> Dict[str, Any]:
    env = {f"{relation_name}.{column}": value for column, value in row.items()}
    env.update(row)
    env[f"{relation_name}.{TID_COLUMN}"] = tid
    env[TID_COLUMN] = tid
    return env


def _execute_update(database, statement: ast.Update, evaluator: ExpressionEvaluator) -> int:
    relation = database.relation(statement.table)
    updated = 0
    for tid, row in list(relation.rows()):
        env = _row_env(statement.table, tid, row)
        if statement.where is not None and evaluator.evaluate(statement.where, env) is not True:
            continue
        changes = {
            column: evaluator.evaluate(expr, env)
            for column, expr in statement.assignments
        }
        relation.update(tid, changes)
        updated += 1
    return updated


def _execute_delete(database, statement: ast.Delete, evaluator: ExpressionEvaluator) -> int:
    relation = database.relation(statement.table)
    deleted = 0
    for tid, row in list(relation.rows()):
        env = _row_env(statement.table, tid, row)
        if statement.where is not None and evaluator.evaluate(statement.where, env) is not True:
            continue
        relation.delete(tid)
        deleted += 1
    return deleted


def _execute_create_table(database, statement: ast.CreateTable):
    attributes = [
        AttributeDef(
            column.name,
            DataType.from_name(column.type_name),
            nullable=not column.not_null,
        )
        for column in statement.columns
    ]
    schema = RelationSchema(
        name=statement.name, attributes=attributes, key=statement.primary_key
    )
    return database.create_relation(schema)


def _execute_drop_table(database, statement: ast.DropTable) -> int:
    if statement.if_exists and not database.has_relation(statement.name):
        return 0
    database.drop_relation(statement.name)
    return 1
