"""Scalar and aggregate functions for the SQL subset."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ...errors import SqlExecutionError


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _scalar_upper(args: Sequence[Any]) -> Any:
    value = args[0]
    return None if value is None else str(value).upper()


def _scalar_lower(args: Sequence[Any]) -> Any:
    value = args[0]
    return None if value is None else str(value).lower()


def _scalar_length(args: Sequence[Any]) -> Any:
    value = args[0]
    return None if value is None else len(str(value))


def _scalar_abs(args: Sequence[Any]) -> Any:
    value = args[0]
    return None if value is None else abs(value)


def _scalar_coalesce(args: Sequence[Any]) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


def _scalar_concat(args: Sequence[Any]) -> Any:
    return "".join("" if value is None else str(value) for value in args)


def _scalar_substr(args: Sequence[Any]) -> Any:
    if not args or args[0] is None:
        return None
    text = str(args[0])
    start = int(args[1]) if len(args) > 1 and args[1] is not None else 1
    start_index = max(start - 1, 0)
    if len(args) > 2 and args[2] is not None:
        return text[start_index : start_index + int(args[2])]
    return text[start_index:]


def _scalar_trim(args: Sequence[Any]) -> Any:
    value = args[0]
    return None if value is None else str(value).strip()


def _scalar_nullif(args: Sequence[Any]) -> Any:
    if len(args) != 2:
        raise SqlExecutionError("NULLIF expects exactly two arguments")
    return None if args[0] == args[1] else args[0]


SCALAR_FUNCTIONS: Dict[str, Callable[[Sequence[Any]], Any]] = {
    "upper": _scalar_upper,
    "lower": _scalar_lower,
    "length": _scalar_length,
    "abs": _scalar_abs,
    "coalesce": _scalar_coalesce,
    "concat": _scalar_concat,
    "substr": _scalar_substr,
    "substring": _scalar_substr,
    "trim": _scalar_trim,
    "nullif": _scalar_nullif,
}


def call_scalar(name: str, args: Sequence[Any]) -> Any:
    """Invoke scalar function ``name`` on already-evaluated ``args``."""
    lowered = name.lower()
    if lowered not in SCALAR_FUNCTIONS:
        raise SqlExecutionError(f"unknown function {name!r}")
    return SCALAR_FUNCTIONS[lowered](args)


def is_scalar_function(name: str) -> bool:
    """Return whether ``name`` is a known scalar function."""
    return name.lower() in SCALAR_FUNCTIONS


# ---------------------------------------------------------------------------
# Aggregate functions
# ---------------------------------------------------------------------------


def aggregate(name: str, values: Iterable[Any], distinct: bool = False) -> Any:
    """Compute the aggregate ``name`` over ``values`` (NULLs are skipped).

    ``COUNT`` counts non-NULL values; the caller handles ``COUNT(*)`` by
    passing a sentinel per row.
    """
    lowered = name.lower()
    collected: List[Any] = [v for v in values if v is not None]
    if distinct:
        seen: List[Any] = []
        for value in collected:
            if value not in seen:
                seen.append(value)
        collected = seen
    if lowered == "count":
        return len(collected)
    if not collected:
        return None
    if lowered == "sum":
        return sum(collected)
    if lowered == "avg":
        return sum(collected) / len(collected)
    if lowered == "min":
        return min(collected)
    if lowered == "max":
        return max(collected)
    raise SqlExecutionError(f"unknown aggregate function {name!r}")
