"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import SqlParseError
from . import ast
from .lexer import Token, tokenize


class Parser:
    """Parses a token stream into a single :class:`~repro.engine.sql.ast.Statement`."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens: List[Token] = tokenize(sql)
        self.pos = 0
        self._parameter_count = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect_keyword(self, *names: str) -> Token:
        token = self.peek()
        if not token.is_keyword(*names):
            raise SqlParseError(
                f"expected {' or '.join(names).upper()} but found {token.value!r} "
                f"at position {token.position}"
            )
        return self.advance()

    def expect_operator(self, symbol: str) -> Token:
        token = self.peek()
        if not token.is_operator(symbol):
            raise SqlParseError(
                f"expected {symbol!r} but found {token.value!r} at position {token.position}"
            )
        return self.advance()

    def expect_identifier(self) -> Token:
        token = self.peek()
        if token.kind != "identifier":
            raise SqlParseError(
                f"expected an identifier but found {token.value!r} at position {token.position}"
            )
        return self.advance()

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def accept_operator(self, symbol: str) -> Optional[Token]:
        if self.peek().is_operator(symbol):
            return self.advance()
        return None

    # -- entry point -----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement (a trailing ``;`` is allowed)."""
        token = self.peek()
        if token.is_keyword("select"):
            statement: ast.Statement = self.parse_select()
        elif token.is_keyword("insert"):
            statement = self.parse_insert()
        elif token.is_keyword("update"):
            statement = self.parse_update()
        elif token.is_keyword("delete"):
            statement = self.parse_delete()
        elif token.is_keyword("create"):
            statement = self.parse_create_table()
        elif token.is_keyword("drop"):
            statement = self.parse_drop_table()
        else:
            raise SqlParseError(f"unsupported statement starting with {token.value!r}")
        self.accept_operator(";")
        if self.peek().kind != "eof":
            trailing = self.peek()
            raise SqlParseError(
                f"unexpected trailing input {trailing.value!r} at position {trailing.position}"
            )
        return statement

    # -- SELECT ------------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct") is not None
        items = self.parse_select_items()
        from_tables: Tuple[ast.TableRef, ...] = ()
        joins: List[ast.Join] = []
        if self.accept_keyword("from"):
            from_tables, joins = self.parse_from_clause()
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        group_by: Tuple[ast.Expression, ...] = ()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = tuple(self.parse_expression_list())
        having = None
        if self.accept_keyword("having"):
            having = self.parse_expression()
        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = self.parse_order_items()
        limit = None
        if self.accept_keyword("limit"):
            token = self.peek()
            if token.kind != "number":
                raise SqlParseError("LIMIT expects an integer literal")
            self.advance()
            limit = int(float(token.value))
        return ast.Select(
            items=tuple(items),
            from_tables=from_tables,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def parse_select_items(self) -> List[ast.SelectItem]:
        items = [self.parse_select_item()]
        while self.accept_operator(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> ast.SelectItem:
        token = self.peek()
        # bare * or alias.*
        if token.is_operator("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        if (
            token.kind == "identifier"
            and self.peek(1).is_operator(".")
            and self.peek(2).is_operator("*")
        ):
            table = self.advance().value
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(table=table))
        expression = self.parse_expression()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier().value
        elif self.peek().kind == "identifier":
            alias = self.advance().value
        return ast.SelectItem(expression, alias)

    def parse_from_clause(self) -> Tuple[Tuple[ast.TableRef, ...], List[ast.Join]]:
        tables = [self.parse_table_ref()]
        joins: List[ast.Join] = []
        while True:
            if self.accept_operator(","):
                tables.append(self.parse_table_ref())
                continue
            if self.peek().is_keyword("inner") or self.peek().is_keyword("join"):
                self.accept_keyword("inner")
                self.expect_keyword("join")
                table = self.parse_table_ref()
                self.expect_keyword("on")
                condition = self.parse_expression()
                joins.append(ast.Join(table=table, condition=condition))
                continue
            break
        return tuple(tables), joins

    def parse_table_ref(self) -> ast.TableRef:
        name = self.expect_identifier().value
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier().value
        elif self.peek().kind == "identifier":
            alias = self.advance().value
        return ast.TableRef(name=name, alias=alias)

    def parse_order_items(self) -> List[ast.OrderItem]:
        items = []
        while True:
            expression = self.parse_expression()
            ascending = True
            if self.accept_keyword("asc"):
                ascending = True
            elif self.accept_keyword("desc"):
                ascending = False
            items.append(ast.OrderItem(expression, ascending))
            if not self.accept_operator(","):
                break
        return items

    def parse_expression_list(self) -> List[ast.Expression]:
        expressions = [self.parse_expression()]
        while self.accept_operator(","):
            expressions.append(self.parse_expression())
        return expressions

    # -- DML -----------------------------------------------------------------------

    def parse_insert(self) -> ast.Insert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_identifier().value
        columns: List[str] = []
        if self.accept_operator("("):
            columns.append(self.expect_identifier().value)
            while self.accept_operator(","):
                columns.append(self.expect_identifier().value)
            self.expect_operator(")")
        self.expect_keyword("values")
        rows: List[Tuple[ast.Expression, ...]] = []
        while True:
            self.expect_operator("(")
            values = [self.parse_expression()]
            while self.accept_operator(","):
                values.append(self.parse_expression())
            self.expect_operator(")")
            rows.append(tuple(values))
            if not self.accept_operator(","):
                break
        return ast.Insert(table=table, columns=tuple(columns), rows=tuple(rows))

    def parse_update(self) -> ast.Update:
        self.expect_keyword("update")
        table = self.expect_identifier().value
        self.expect_keyword("set")
        assignments: List[Tuple[str, ast.Expression]] = []
        while True:
            column = self.expect_identifier().value
            self.expect_operator("=")
            assignments.append((column, self.parse_expression()))
            if not self.accept_operator(","):
                break
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        return ast.Update(table=table, assignments=tuple(assignments), where=where)

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_identifier().value
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        return ast.Delete(table=table, where=where)

    def parse_create_table(self) -> ast.CreateTable:
        self.expect_keyword("create")
        self.expect_keyword("table")
        name = self.expect_identifier().value
        self.expect_operator("(")
        columns: List[ast.ColumnDef] = []
        primary_key: Tuple[str, ...] = ()
        while True:
            if self.peek().is_keyword("primary"):
                self.advance()
                self.expect_keyword("key")
                self.expect_operator("(")
                keys = [self.expect_identifier().value]
                while self.accept_operator(","):
                    keys.append(self.expect_identifier().value)
                self.expect_operator(")")
                primary_key = tuple(keys)
            else:
                col_name = self.expect_identifier().value
                type_token = self.peek()
                if type_token.kind not in ("identifier", "keyword"):
                    raise SqlParseError(f"expected a type name after column {col_name!r}")
                self.advance()
                not_null = False
                if self.accept_keyword("not"):
                    self.expect_keyword("null")
                    not_null = True
                columns.append(ast.ColumnDef(col_name, type_token.value, not_null))
            if not self.accept_operator(","):
                break
        self.expect_operator(")")
        return ast.CreateTable(name=name, columns=tuple(columns), primary_key=primary_key)

    def parse_drop_table(self) -> ast.DropTable:
        self.expect_keyword("drop")
        self.expect_keyword("table")
        if_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("exists")
            if_exists = True
        name = self.expect_identifier().value
        return ast.DropTable(name=name, if_exists=if_exists)

    # -- expressions ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        return self.parse_or()

    def parse_or(self) -> ast.Expression:
        left = self.parse_and()
        while self.accept_keyword("or"):
            right = self.parse_and()
            left = ast.BinaryOp("or", left, right)
        return left

    def parse_and(self) -> ast.Expression:
        left = self.parse_not()
        while self.accept_keyword("and"):
            right = self.parse_not()
            left = ast.BinaryOp("and", left, right)
        return left

    def parse_not(self) -> ast.Expression:
        if self.accept_keyword("not"):
            return ast.UnaryOp("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expression:
        left = self.parse_additive()
        token = self.peek()
        if token.is_operator("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            if op == "!=":
                op = "<>"
            right = self.parse_additive()
            return ast.BinaryOp(op, left, right)
        if token.is_keyword("is"):
            self.advance()
            negated = self.accept_keyword("not") is not None
            self.expect_keyword("null")
            return ast.IsNull(left, negated=negated)
        negated = False
        if token.is_keyword("not") and self.peek(1).is_keyword("in", "like"):
            self.advance()
            negated = True
            token = self.peek()
        if token.is_keyword("in"):
            self.advance()
            self.expect_operator("(")
            items = [self.parse_expression()]
            while self.accept_operator(","):
                items.append(self.parse_expression())
            self.expect_operator(")")
            return ast.InList(left, tuple(items), negated=negated)
        if token.is_keyword("like"):
            self.advance()
            pattern = self.parse_additive()
            return ast.Like(left, pattern, negated=negated)
        return left

    def parse_additive(self) -> ast.Expression:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.is_operator("+", "-", "||"):
                op = self.advance().value
                right = self.parse_multiplicative()
                left = ast.BinaryOp(op, left, right)
            else:
                return left

    def parse_multiplicative(self) -> ast.Expression:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.is_operator("*", "/", "%"):
                op = self.advance().value
                right = self.parse_unary()
                left = ast.BinaryOp(op, left, right)
            else:
                return left

    def parse_unary(self) -> ast.Expression:
        token = self.peek()
        if token.is_operator("-"):
            self.advance()
            return ast.UnaryOp("-", self.parse_unary())
        if token.is_operator("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> ast.Expression:
        token = self.peek()
        if token.is_operator("("):
            self.advance()
            expression = self.parse_expression()
            self.expect_operator(")")
            return expression
        if token.is_operator("?"):
            self.advance()
            parameter = ast.Parameter(self._parameter_count)
            self._parameter_count += 1
            return parameter
        if token.kind == "number":
            self.advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return ast.Literal(value)
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("null"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("case"):
            return self.parse_case()
        if token.kind == "identifier":
            return self.parse_identifier_expression()
        raise SqlParseError(
            f"unexpected token {token.value!r} at position {token.position}"
        )

    def parse_case(self) -> ast.Expression:
        self.expect_keyword("case")
        whens: List[Tuple[ast.Expression, ast.Expression]] = []
        while self.accept_keyword("when"):
            condition = self.parse_expression()
            self.expect_keyword("then")
            value = self.parse_expression()
            whens.append((condition, value))
        else_value = None
        if self.accept_keyword("else"):
            else_value = self.parse_expression()
        self.expect_keyword("end")
        if not whens:
            raise SqlParseError("CASE requires at least one WHEN branch")
        return ast.CaseWhen(tuple(whens), else_value)

    def parse_identifier_expression(self) -> ast.Expression:
        name = self.expect_identifier().value
        # function call
        if self.peek().is_operator("("):
            self.advance()
            distinct = self.accept_keyword("distinct") is not None
            args: List[ast.Expression] = []
            if self.peek().is_operator("*"):
                self.advance()
                args.append(ast.Star())
            elif not self.peek().is_operator(")"):
                args.append(self.parse_expression())
                while self.accept_operator(","):
                    args.append(self.parse_expression())
            self.expect_operator(")")
            return ast.FunctionCall(name=name, args=tuple(args), distinct=distinct)
        # qualified column
        if self.peek().is_operator("."):
            self.advance()
            column = self.expect_identifier().value
            return ast.ColumnRef(name=column, table=name)
        return ast.ColumnRef(name=name)


def parse_sql(sql: str) -> ast.Statement:
    """Parse ``sql`` into a statement AST."""
    return Parser(sql).parse_statement()
