"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...errors import SqlLexError

KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "group",
    "by",
    "having",
    "order",
    "asc",
    "desc",
    "limit",
    "as",
    "and",
    "or",
    "not",
    "null",
    "true",
    "false",
    "is",
    "in",
    "like",
    "join",
    "inner",
    "on",
    "insert",
    "into",
    "values",
    "update",
    "set",
    "delete",
    "create",
    "drop",
    "table",
    "primary",
    "key",
    "if",
    "exists",
    "case",
    "when",
    "then",
    "else",
    "end",
}

OPERATOR_CHARS = "=<>!+-*/%(),.?;"

TWO_CHAR_OPERATORS = {"<>", "!=", "<=", ">=", "||"}


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str  # 'keyword' | 'identifier' | 'string' | 'number' | 'operator' | 'eof'
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_operator(self, *symbols: str) -> bool:
        return self.kind == "operator" and self.value in symbols


def tokenize(sql: str) -> List[Token]:
    """Tokenise ``sql`` into a list of :class:`Token`, ending with an EOF token."""
    tokens: List[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # comments: -- to end of line
        if ch == "-" and i + 1 < length and sql[i + 1] == "-":
            newline = sql.find("\n", i)
            i = length if newline == -1 else newline + 1
            continue
        # string literal
        if ch == "'":
            start = i
            i += 1
            parts: List[str] = []
            while True:
                if i >= length:
                    raise SqlLexError("unterminated string literal", start)
                if sql[i] == "'":
                    if i + 1 < length and sql[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(sql[i])
                i += 1
            tokens.append(Token("string", "".join(parts), start))
            continue
        # quoted identifier
        if ch == '"':
            start = i
            i += 1
            parts = []
            while i < length and sql[i] != '"':
                parts.append(sql[i])
                i += 1
            if i >= length:
                raise SqlLexError("unterminated quoted identifier", start)
            i += 1
            tokens.append(Token("identifier", "".join(parts), start))
            continue
        # number
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            start = i
            while i < length and (sql[i].isdigit() or sql[i] == "."):
                i += 1
            # allow exponents
            if i < length and sql[i] in "eE":
                j = i + 1
                if j < length and sql[j] in "+-":
                    j += 1
                if j < length and sql[j].isdigit():
                    i = j
                    while i < length and sql[i].isdigit():
                        i += 1
            tokens.append(Token("number", sql[start:i], start))
            continue
        # identifier or keyword
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, start))
            else:
                tokens.append(Token("identifier", word, start))
            continue
        # two-character operators
        if i + 1 < length and sql[i : i + 2] in TWO_CHAR_OPERATORS:
            tokens.append(Token("operator", sql[i : i + 2], i))
            i += 2
            continue
        if ch in OPERATOR_CHARS or ch == "|":
            tokens.append(Token("operator", ch, i))
            i += 1
            continue
        raise SqlLexError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", length))
    return tokens
