"""A small SQL subset: lexer, parser, planner and executor.

The subset covers exactly what the Semandaq components need:

* SELECT with cross joins, explicit INNER JOINs, WHERE, GROUP BY, HAVING,
  ORDER BY, LIMIT, DISTINCT, aggregates including ``COUNT(DISTINCT ...)``
  (used by the multi-tuple CFD violation query);
* INSERT / UPDATE / DELETE (used by the data monitor to apply updates);
* CREATE TABLE / DROP TABLE (used to materialise pattern tableaux).
"""

from .ast import Select, Statement
from .executor import ResultSet, execute_sql, execute_statement
from .lexer import tokenize
from .parser import parse_sql
from .planner import explain, plan_select

__all__ = [
    "Select",
    "Statement",
    "ResultSet",
    "execute_sql",
    "execute_statement",
    "tokenize",
    "parse_sql",
    "plan_select",
    "explain",
]
