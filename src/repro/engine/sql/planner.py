"""Logical query plans for SELECT statements.

The planner converts a parsed :class:`~repro.engine.sql.ast.Select` into a
small tree of plan nodes (scan → join → filter → aggregate → project →
distinct → sort → limit).  Plans are deliberately simple: the detection
queries generated from CFDs are cross joins against tiny pattern tableaux
followed by filters and group-bys, which this pipeline executes efficiently
once the filter touches the base-relation hash indexes created lazily by the
executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ...errors import SqlPlanError
from . import ast


class PlanNode:
    """Base class of all logical plan nodes."""


@dataclass
class ScanNode(PlanNode):
    """Scan a base relation under a binding name; exposes a ``_tid`` column."""

    relation: str
    binding: str


@dataclass
class CrossJoinNode(PlanNode):
    """Cartesian product of two inputs (filters are applied above)."""

    left: PlanNode
    right: PlanNode


@dataclass
class FilterNode(PlanNode):
    """Keep rows for which the predicate evaluates to true."""

    child: PlanNode
    predicate: ast.Expression


@dataclass
class AggregateNode(PlanNode):
    """Group rows and evaluate aggregate select items / HAVING."""

    child: PlanNode
    group_by: Tuple[ast.Expression, ...]
    items: Tuple[ast.SelectItem, ...]
    having: Optional[ast.Expression]


@dataclass
class ProjectNode(PlanNode):
    """Evaluate the select list for each input row."""

    child: PlanNode
    items: Tuple[ast.SelectItem, ...]


@dataclass
class DistinctNode(PlanNode):
    """Remove duplicate output rows."""

    child: PlanNode


@dataclass
class SortNode(PlanNode):
    """Order rows by ORDER BY keys.

    For non-aggregate queries the sort runs *below* the projection so ORDER BY
    can reference source columns; ``items`` carries the select list so ORDER BY
    can also reference output aliases.
    """

    child: PlanNode
    keys: Tuple[ast.OrderItem, ...]
    items: Tuple[ast.SelectItem, ...] = ()


@dataclass
class LimitNode(PlanNode):
    """Truncate output to the first N rows."""

    child: PlanNode
    limit: int


@dataclass
class PlannedSelect:
    """The complete plan for one SELECT statement."""

    root: PlanNode
    select: ast.Select


def _conjuncts(expression: Optional[ast.Expression]) -> List[ast.Expression]:
    """Split a predicate into its top-level AND conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "and":
        return _conjuncts(expression.left) + _conjuncts(expression.right)
    return [expression]


def _combine(conjuncts: List[ast.Expression]) -> Optional[ast.Expression]:
    """Re-assemble conjuncts into a single AND expression."""
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = ast.BinaryOp("and", combined, conjunct)
    return combined


def plan_select(select: ast.Select) -> PlannedSelect:
    """Build a logical plan for ``select``."""
    if not select.from_tables and not select.joins:
        # SELECT without FROM: evaluated over a single empty row.
        source: PlanNode = ScanNode(relation="", binding="")
    else:
        bindings = set()
        scans: List[PlanNode] = []
        for table in select.from_tables:
            if table.binding in bindings:
                raise SqlPlanError(f"duplicate table binding {table.binding!r}")
            bindings.add(table.binding)
            scans.append(ScanNode(relation=table.name, binding=table.binding))
        source = scans[0]
        for scan in scans[1:]:
            source = CrossJoinNode(source, scan)
        for join in select.joins:
            if join.table.binding in bindings:
                raise SqlPlanError(f"duplicate table binding {join.table.binding!r}")
            bindings.add(join.table.binding)
            source = CrossJoinNode(
                source, ScanNode(relation=join.table.name, binding=join.table.binding)
            )
            source = FilterNode(source, join.condition)

    where_conjuncts = _conjuncts(select.where)
    where = _combine(where_conjuncts)
    if where is not None:
        source = FilterNode(source, where)

    has_aggregates = bool(select.group_by) or any(
        ast.contains_aggregate(item.expression) for item in select.items
    )
    if select.having is not None and not has_aggregates:
        raise SqlPlanError("HAVING requires GROUP BY or aggregate select items")

    if has_aggregates:
        source = AggregateNode(
            child=source,
            group_by=select.group_by,
            items=select.items,
            having=select.having,
        )
        if select.order_by:
            source = SortNode(source, select.order_by)
    else:
        # Sort below the projection so ORDER BY can use source columns; the
        # select items are passed along so aliases also resolve.
        if select.order_by:
            source = SortNode(source, select.order_by, items=select.items)
        source = ProjectNode(child=source, items=select.items)

    if select.distinct:
        source = DistinctNode(source)
    if select.limit is not None:
        source = LimitNode(source, select.limit)
    return PlannedSelect(root=source, select=select)


def explain(plan: PlannedSelect) -> str:
    """Return a human-readable, indented rendering of the plan tree."""
    lines: List[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        indent = "  " * depth
        if isinstance(node, ScanNode):
            lines.append(f"{indent}Scan {node.relation or '<dual>'} AS {node.binding or '-'}")
        elif isinstance(node, CrossJoinNode):
            lines.append(f"{indent}CrossJoin")
            visit(node.left, depth + 1)
            visit(node.right, depth + 1)
        elif isinstance(node, FilterNode):
            lines.append(f"{indent}Filter")
            visit(node.child, depth + 1)
        elif isinstance(node, AggregateNode):
            lines.append(f"{indent}Aggregate group_by={len(node.group_by)}")
            visit(node.child, depth + 1)
        elif isinstance(node, ProjectNode):
            lines.append(f"{indent}Project items={len(node.items)}")
            visit(node.child, depth + 1)
        elif isinstance(node, DistinctNode):
            lines.append(f"{indent}Distinct")
            visit(node.child, depth + 1)
        elif isinstance(node, SortNode):
            lines.append(f"{indent}Sort keys={len(node.keys)}")
            visit(node.child, depth + 1)
        elif isinstance(node, LimitNode):
            lines.append(f"{indent}Limit {node.limit}")
            visit(node.child, depth + 1)
        else:  # pragma: no cover - defensive
            lines.append(f"{indent}{type(node).__name__}")

    visit(plan.root, 0)
    return "\n".join(lines)
