"""The constraint engine: storage and static analysis of CFDs.

"The core of SEMANDAQ is the constraint engine, which manages the CFDs used
to specify the consistency of the data."  This class registers CFDs
(specified textually or as objects, or discovered from reference data),
stores their pattern tableaux relationally inside a metadata database —
leveraging the same engine and indexes the data lives in — and runs the
static analyses: satisfiability checks on every addition, pairwise conflict
diagnosis, and redundancy/minimal-cover reporting.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..analysis.consistency import ConsistencyResult, check_consistency, pairwise_conflicts
from ..analysis.minimization import minimal_cover, redundancy_report
from ..backends.base import StorageBackend
from ..core.cfd import CFD
from ..core.parser import format_cfd, parse_cfd
from ..core.tableau import merge_cfds, tableau_size, tableau_to_relation
from ..engine.database import Database
from ..errors import CfdSchemaError, InconsistentCfdsError
from ..discovery.cfdminer import ConstantCfdMiner
from ..discovery.ctane import VariableCfdDiscoverer
from ..engine.relation import Relation


class ConstraintEngine:
    """Manages the CFDs of one Semandaq instance."""

    def __init__(
        self,
        database: Database,
        check_consistency_on_add: bool = True,
        backend: Optional[StorageBackend] = None,
    ):
        self.database = database
        self.check_consistency_on_add = check_consistency_on_add
        #: metadata database holding the relational encoding of the tableaux
        self.metadata = Database(name="semandaq_metadata")
        #: optional storage backend the tableaux are mirrored into, so the
        #: CFD encodings live in the same DBMS as the data (and benefit from
        #: its indexes), per the paper's design
        self.backend = backend
        self._cfds: Dict[str, CFD] = {}
        self._counter = 0

    # -- registration ---------------------------------------------------------------

    def add_cfd(self, cfd: CFD, name: Optional[str] = None) -> CFD:
        """Register a CFD; validates the schema and (optionally) consistency."""
        if name is not None or cfd.name is None:
            self._counter += 1
            cfd = CFD(
                relation=cfd.relation,
                lhs=cfd.lhs,
                rhs=cfd.rhs,
                patterns=cfd.patterns,
                name=name or f"cfd{self._counter}",
            )
        if self.database.has_relation(cfd.relation):
            cfd.validate_against(self.database.relation(cfd.relation).attribute_names)
        else:
            raise CfdSchemaError(
                f"CFD {cfd.identifier} targets unknown relation {cfd.relation!r}"
            )
        prospective = [c for c in self._cfds.values() if c.relation == cfd.relation]
        prospective.append(cfd)
        if self.check_consistency_on_add:
            result = check_consistency(prospective)
            if not result.consistent:
                raise InconsistentCfdsError(
                    f"adding {cfd.identifier} makes the CFD set inconsistent; "
                    f"conflicting core: {result.conflict}"
                )
        self._cfds[cfd.identifier] = cfd
        tableau = tableau_to_relation(cfd, f"tableau_{cfd.name}")
        self.metadata.add_relation(tableau, replace=True)
        if self.backend is not None:
            self.backend.add_relation(tableau, replace=True)
        return cfd

    def add_text(self, text: str, default_relation: Optional[str] = None) -> CFD:
        """Parse a textual CFD specification and register it."""
        self._counter += 1
        cfd = parse_cfd(text, default_relation=default_relation, name=f"cfd{self._counter}")
        return self.add_cfd(cfd, name=cfd.name)

    def add_many(self, cfds: Iterable[CFD]) -> List[CFD]:
        """Register several CFDs, keeping their order."""
        return [self.add_cfd(cfd, name=cfd.name) for cfd in cfds]

    def remove(self, identifier: str) -> None:
        """Forget a registered CFD."""
        cfd = self._cfds.pop(identifier, None)
        if cfd is not None and self.metadata.has_relation(f"tableau_{cfd.name}"):
            self.metadata.drop_relation(f"tableau_{cfd.name}")
        if (
            cfd is not None
            and self.backend is not None
            and self.backend.has_relation(f"tableau_{cfd.name}")
        ):
            self.backend.drop_relation(f"tableau_{cfd.name}")

    def clear(self) -> None:
        """Forget every registered CFD."""
        for identifier in list(self._cfds):
            self.remove(identifier)

    # -- access ------------------------------------------------------------------------

    def cfds(self, relation: Optional[str] = None) -> List[CFD]:
        """Registered CFDs, optionally filtered by target relation."""
        values = list(self._cfds.values())
        if relation is not None:
            values = [cfd for cfd in values if cfd.relation == relation]
        return values

    def get(self, identifier: str) -> CFD:
        """Look up one CFD by identifier."""
        if identifier not in self._cfds:
            raise CfdSchemaError(f"unknown CFD {identifier!r}")
        return self._cfds[identifier]

    def __len__(self) -> int:
        return len(self._cfds)

    def describe(self) -> List[Dict[str, Any]]:
        """One summary row per registered CFD (for the explorer's CFD list)."""
        return [
            {
                "id": cfd.identifier,
                "text": format_cfd(cfd),
                "patterns": len(cfd.patterns),
                "constant": cfd.is_constant_cfd(),
                "plain_fd": cfd.is_plain_fd(),
            }
            for cfd in self._cfds.values()
        ]

    # -- static analysis -----------------------------------------------------------------

    def consistency(self, relation: Optional[str] = None) -> ConsistencyResult:
        """Satisfiability of the registered CFDs (per relation)."""
        return check_consistency(self.cfds(relation))

    def conflicts(self, relation: Optional[str] = None) -> List[Tuple[str, str]]:
        """Pairs of registered CFDs that are mutually unsatisfiable."""
        return pairwise_conflicts(self.cfds(relation))

    def redundancy(self, relation: Optional[str] = None) -> List[Dict[str, Any]]:
        """Duplicate/implied diagnosis of the registered CFDs."""
        return redundancy_report(self.cfds(relation))

    def cover(self, relation: Optional[str] = None) -> List[CFD]:
        """A minimal cover of the registered CFDs."""
        return minimal_cover(self.cfds(relation))

    def tableau_statistics(self) -> Dict[str, int]:
        """Sizes the constraint engine reports: #CFDs, #pattern tuples, #tableaux."""
        cfds = self.cfds()
        return {
            "cfds": len(cfds),
            "pattern_tuples": tableau_size(cfds),
            "merged_cfds": len(merge_cfds(cfds)),
        }

    # -- discovery ---------------------------------------------------------------------------

    def discover_from(
        self,
        reference: Relation,
        min_support: int = 3,
        min_confidence: float = 1.0,
        max_lhs_size: int = 2,
        include_constant: bool = True,
        include_variable: bool = True,
        register: bool = False,
    ) -> List[CFD]:
        """Discover CFDs from clean reference data; optionally register them."""
        discovered: List[CFD] = []
        if include_constant:
            miner = ConstantCfdMiner(
                min_support=min_support,
                min_confidence=min_confidence,
                max_lhs_size=max_lhs_size,
            )
            discovered.extend(miner.mine_cfds(reference))
        if include_variable:
            discoverer = VariableCfdDiscoverer(
                min_support=max(min_support, 2),
                min_confidence=min_confidence,
                max_lhs_size=max_lhs_size,
            )
            discovered.extend(discoverer.discover_cfds(reference))
        if register:
            registered = []
            for cfd in discovered:
                try:
                    registered.append(self.add_cfd(cfd, name=cfd.name))
                except InconsistentCfdsError:
                    continue
            return registered
        return discovered
