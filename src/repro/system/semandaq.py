"""The Semandaq facade: one object wiring every component together.

This is the library counterpart of the paper's "data quality server": it owns
the database, the constraint engine, the error detector, the data auditor,
the data cleanser and the data monitor, and exposes the end-to-end workflow
the demo walks through:

1. connect data (register relations / load CSV — bulk-synced into the
   configured storage backend, see :mod:`repro.backends`);
2. specify CFDs (textually, as objects, or discovered from reference data);
3. detect violations (SQL-based, pushed down to the storage backend
   selected by ``SemandaqConfig.backend``);
4. audit the data quality (classification, quality map, report);
5. explore (drill-down navigation, per-tuple explanations);
6. repair, review the candidate repair, and apply it;
7. monitor subsequent updates with incremental detection / repair.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..audit.report import DataAuditor, DataQualityReport
from ..backends.base import StorageBackend
from ..backends.delta import DeltaBatch
from ..backends.memory import MemoryBackend
from ..backends.registry import create_backend
from ..core.cfd import CFD
from ..detection.detector import ErrorDetector
from ..detection.violations import ViolationReport
from ..engine.csvio import load_csv
from ..engine.database import Database
from ..engine.relation import Relation
from ..engine.types import RelationSchema
from ..errors import ConfigurationError
from ..explorer.navigation import DataExplorer
from ..explorer.session import ExplorationSession
from ..monitor.monitor import DataMonitor
from ..monitor.updates import Update
from ..obs.instrument import InstrumentedBackend
from ..obs.telemetry import Telemetry
from ..repair.cost import CostModel
from ..repair.repairer import BatchRepairer, Repair
from ..repair.source import BackendRepairSource
from ..repair.review import RepairReview
from ..sources.backend import BackendTupleSource
from .config import SemandaqConfig
from .constraint_engine import ConstraintEngine


class Semandaq:
    """End-to-end CFD-based data quality system."""

    def __init__(
        self,
        config: Optional[SemandaqConfig] = None,
        database: Optional[Database] = None,
        backend: Optional[StorageBackend] = None,
    ):
        self.config = config or SemandaqConfig()
        self.config.validate()
        self.database = database or Database()
        if backend is not None:
            self.backend = backend
        elif self.config.backend == "memory":
            # Share the working database so the memory configuration keeps a
            # single copy of the data (the seed behaviour).
            self.backend = MemoryBackend(self.database)
        else:
            backend_options = dict(self.config.backend_options)
            if self.config.backend == "sqlite":
                # thread the serving-layer knobs through to the reader pool
                # (explicit backend_options win over the config fields)
                if self.config.pool_size is not None:
                    backend_options.setdefault("pool_size", self.config.pool_size)
                backend_options.setdefault(
                    "pool_timeout", self.config.pool_timeout
                )
            self.backend = create_backend(self.config.backend, **backend_options)
        self._backend_shared = (
            isinstance(self.backend, MemoryBackend)
            and self.backend.database is self.database
        )
        #: the system-wide telemetry sink; shared by the detector, the
        #: monitors and the instrumented backend so ``metrics()`` is one
        #: coherent picture.  Disabled (a no-op) unless the config turns on
        #: ``telemetry``/``explain_plans``/``log_sql``.
        self.telemetry = Telemetry(
            enabled=self.config.telemetry,
            explain_plans=self.config.explain_plans,
            log_sql=self.config.log_sql,
        )
        if self.telemetry.active and not isinstance(self.backend, InstrumentedBackend):
            self.backend = InstrumentedBackend(self.backend, self.telemetry)
        self.constraints = ConstraintEngine(
            self.database,
            check_consistency_on_add=self.config.check_consistency_on_add,
            backend=None if self._backend_shared else self.backend,
        )
        self.detector = ErrorDetector(
            self.backend,
            use_sql=self.config.use_sql_detection,
            telemetry=self.telemetry,
            detect_plan=self.config.detect_plan,
        )
        self.auditor = DataAuditor(
            majority=self.config.audit_majority,
            quality_levels=self.config.quality_levels,
            quality_strategy=self.config.quality_strategy,
        )
        self.cost_model = CostModel(attribute_weights=dict(self.config.attribute_weights))
        self._reports: Dict[str, ViolationReport] = {}
        self._repairs: Dict[str, Repair] = {}
        self._monitors: Dict[str, DataMonitor] = {}
        #: relations that have been bulk-loaded into the backend at least once
        self._synced: Set[str] = set()
        #: relations whose backend copy is known to lag the working store
        #: (set when the working store mutates outside the delta-shipping
        #: paths; cleared by the next full sync)
        self._stale: Set[str] = set()
        #: guards the sync-state sets and the sync decision itself, so
        #: concurrent ``serve()`` workers cannot race a bulk re-sync (two
        #: threads both seeing "never synced" would double-load)
        self._sync_lock = threading.RLock()
        #: number of whole-relation bulk loads shipped to the backend
        #: (``add_relation(replace=True)``); tests and benchmarks read this
        #: to assert the delta paths avoid full re-syncs
        self.full_sync_count = 0

    # -- step 1: connect data -------------------------------------------------------------

    def register_relation(
        self,
        schema_or_relation: Union[RelationSchema, Relation],
        rows: Optional[Iterable[Mapping[str, Any]]] = None,
        replace: bool = False,
    ) -> Relation:
        """Register a relation (by schema + rows, or an existing Relation object)."""
        if isinstance(schema_or_relation, Relation):
            relation = self.database.add_relation(schema_or_relation, replace=replace)
        else:
            relation = self.database.create_relation(
                schema_or_relation,
                rows=[dict(row) for row in rows or []],
                replace=replace,
            )
        self._on_relation_replaced(relation.name)
        return relation

    def load_csv(self, source: str, name: str, **kwargs: Any) -> Relation:
        """Load a CSV file (or CSV text) and register it under ``name``.

        The loaded relation is bulk-synced into the storage backend (an
        ``executemany`` batch on SQLite) so detection can push down to it.
        """
        relation = load_csv(source, name, **kwargs)
        self.database.add_relation(relation, replace=True)
        self._on_relation_replaced(name)
        return relation

    def _on_relation_replaced(self, relation_name: str) -> None:
        """Bookkeeping after the working copy of a relation was swapped out.

        Any cached monitor is bound to the replaced :class:`Relation` object;
        left in place it would keep mirroring deltas from that ghost into the
        backend — and so would a reference to it still held by user code, so
        its backend is detached as well.  A fresh monitor is created on the
        next ``monitor()`` call, bound to the new data; the stale detection
        report is dropped and the new contents bulk-loaded.
        """
        retired = self._monitors.pop(relation_name, None)
        if retired is not None:
            retired.detach_backend()
        self._reports.pop(relation_name, None)
        self._sync_backend(relation_name)

    def _sync_backend(self, relation_name: str) -> None:
        """Mirror the working copy of ``relation_name`` into the backend.

        A no-op when the backend shares the working database (the memory
        configuration).  For real-DBMS backends this is the paper's load
        step: the relation is bulk-loaded so detection SQL can run against
        the database server.
        """
        if self._backend_shared:
            return
        with self._sync_lock:
            self.backend.add_relation(
                self.database.relation(relation_name), replace=True
            )
            self._synced.add(relation_name)
            self._stale.discard(relation_name)
            self.full_sync_count += 1
            self.telemetry.inc("sync.full")
            monitor = self._monitors.get(relation_name)
            if monitor is not None:
                monitor.mark_backend_resynced()

    def _sync_backend_if_stale(self, relation_name: str) -> None:
        """Re-sync only when the backend copy may be out of date.

        That is: the relation was never synced, or it was explicitly marked
        stale.  Monitored relations no longer force a whole-relation reload:
        the monitor ships every applied update (and every incremental-repair
        change) down to the backend as a per-tid delta, so the backend copy
        tracks the working store continuously.  Facade-level mutations
        (``register_relation``/``load_csv``) sync eagerly and
        ``apply_repair`` ships per-tid deltas, so repeated ``detect`` calls
        never bulk-reload a relation that is already current.
        """
        if self._backend_shared:
            return
        with self._sync_lock:
            monitor = self._monitors.get(relation_name)
            if (
                relation_name not in self._synced
                or relation_name in self._stale
                or (monitor is not None and monitor.backend_desynced)
            ):
                self._sync_backend(relation_name)

    def mark_backend_stale(self, relation_name: str) -> None:
        """Flag ``relation_name`` for a full re-sync before the next detect.

        Call this after mutating the working database directly (outside the
        monitor and repair paths, which keep the backend current on their
        own).
        """
        with self._sync_lock:
            self._stale.add(relation_name)

    def schema_summary(self) -> Dict[str, List[str]]:
        """The automatically discovered schema shown after connecting."""
        return self.database.schema_summary()

    # -- step 2: specify constraints ---------------------------------------------------------

    def add_cfd(self, cfd: Union[CFD, str], default_relation: Optional[str] = None) -> CFD:
        """Register one CFD, given as an object or in the textual syntax."""
        if isinstance(cfd, str):
            return self.constraints.add_text(cfd, default_relation=default_relation)
        return self.constraints.add_cfd(cfd, name=cfd.name)

    def add_cfds(
        self, cfds: Iterable[Union[CFD, str]], default_relation: Optional[str] = None
    ) -> List[CFD]:
        """Register several CFDs."""
        return [self.add_cfd(cfd, default_relation=default_relation) for cfd in cfds]

    def discover_cfds(self, reference: Relation, register: bool = True, **kwargs: Any) -> List[CFD]:
        """Discover CFDs from reference data (see :class:`ConstraintEngine.discover_from`)."""
        return self.constraints.discover_from(reference, register=register, **kwargs)

    def check_constraints(self, relation: Optional[str] = None):
        """Satisfiability check of the registered CFDs."""
        return self.constraints.consistency(relation)

    # -- step 3: detect ------------------------------------------------------------------------

    def detect(self, relation_name: str) -> ViolationReport:
        """Run (SQL-based) violation detection for every CFD on ``relation_name``.

        The backend copy is expected to be current: bulk loads happen at
        registration, monitors ship every applied update down as a per-tid
        delta, and ``apply_repair`` ships repaired cells as per-tid UPDATEs.
        A full re-sync therefore only happens when the relation was never
        loaded or was explicitly marked stale
        (:meth:`mark_backend_stale`).
        """
        self._sync_backend_if_stale(relation_name)
        cfds = self.constraints.cfds(relation_name)
        report = self.detector.detect(relation_name, cfds)
        self._reports[relation_name] = report
        return report

    def detect_for_tuples(
        self, relation_name: str, tids: Iterable[int]
    ) -> ViolationReport:
        """Violations involving any tuple in ``tids`` (restricted detection).

        On the SQL path the restriction is pushed down to the storage
        backend (delta ``Q_C``/``Q_V`` plans over the named tids and their
        LHS-value groups) instead of filtering a full detection report.
        The result is partial by construction, so it is *not* cached as
        the relation's last report.
        """
        self._sync_backend_if_stale(relation_name)
        cfds = self.constraints.cfds(relation_name)
        return self.detector.detect_for_tuples(relation_name, cfds, tids)

    def serve(
        self,
        relation_name: str,
        requests: Sequence[Iterable[int]],
        max_workers: Optional[int] = None,
    ) -> List[ViolationReport]:
        """Answer many ``detect_for_tuples`` requests concurrently.

        This is the serving-layer entry point: each element of
        ``requests`` is one application's tid set, and the requests are
        fanned across a thread pool of ``max_workers`` threads
        (``SemandaqConfig.serve_threads`` by default).  On a file-backed
        SQLite store each worker checks a read-only connection out of the
        reader pool and runs its detection inside one snapshot, so
        requests proceed in parallel with each other *and* with a monitor
        streaming update batches through the writer connection.  Results
        are returned in request order.  With one worker (or one request)
        the requests run serially on the calling thread.
        """
        self._sync_backend_if_stale(relation_name)
        cfds = self.constraints.cfds(relation_name)
        workers = max_workers if max_workers is not None else self.config.serve_threads
        if workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        tid_sets = [list(tids) for tids in requests]
        if workers == 1 or len(tid_sets) <= 1:
            return [
                self.detector.detect_for_tuples(relation_name, cfds, tids)
                for tids in tid_sets
            ]
        with ThreadPoolExecutor(max_workers=workers) as executor:
            futures = [
                executor.submit(
                    self.detector.detect_for_tuples, relation_name, cfds, tids
                )
                for tids in tid_sets
            ]
            return [future.result() for future in futures]

    def last_report(self, relation_name: str) -> ViolationReport:
        """The most recent detection report for ``relation_name`` (detects if missing)."""
        if relation_name not in self._reports:
            return self.detect(relation_name)
        return self._reports[relation_name]

    # -- step 4: audit ----------------------------------------------------------------------------

    def _read_resident(self) -> bool:
        """Whether the auditor/explorer read from the storage backend."""
        return self.config.audit_source == "auto" and self.config.use_sql_detection

    def _tuple_source(self, relation_name: str) -> BackendTupleSource:
        self._sync_backend_if_stale(relation_name)
        return BackendTupleSource(
            self.backend, relation_name, telemetry=self.telemetry
        )

    def audit(self, relation_name: str) -> DataQualityReport:
        """Summarise the quality of ``relation_name`` from the latest detection.

        With ``audit_source="auto"`` (and SQL detection on) the audit runs
        backend-resident: the dirty rows come from one ``row_fetch``, the
        clean-tuple categories from pushed-down applicability aggregates,
        and the quality map's tid universe from the catalog row count —
        the working store is never read row-by-row.
        ``audit_source="native"`` forces the full-relation walk.
        """
        report = self.last_report(relation_name)
        cfds = self.constraints.cfds(relation_name)
        if self._read_resident():
            self.telemetry.inc("audit.source_resident")
            return self.auditor.audit_source(
                self._tuple_source(relation_name), cfds, report
            )
        return self.auditor.audit(self.database.relation(relation_name), cfds, report)

    # -- step 5: explore --------------------------------------------------------------------------

    def explorer(self, relation_name: str) -> DataExplorer:
        """A drill-down explorer over the latest detection results.

        On the resident path (``audit_source="auto"`` with SQL detection)
        every navigation step is answered by pushed-down aggregates and
        keyset-paged fetches; only the dirty rows and the visible page of
        tuples are ever materialised.
        """
        report = self.last_report(relation_name)
        cfds = self.constraints.cfds(relation_name)
        if self._read_resident():
            return DataExplorer(self._tuple_source(relation_name), cfds, report)
        return DataExplorer(self.database.relation(relation_name), cfds, report)

    def exploration_session(self, relation_name: str) -> ExplorationSession:
        """A stateful exploration session (the Fig. 2 walk-through)."""
        report = self.last_report(relation_name)
        cfds = self.constraints.cfds(relation_name)
        if self._read_resident():
            return ExplorationSession(
                self._tuple_source(relation_name), cfds, report
            )
        return ExplorationSession(
            self.database.relation(relation_name), cfds, report
        )

    # -- step 6: repair and review -----------------------------------------------------------------

    def _repair_resident(self) -> bool:
        """Whether repairs read from the storage backend instead of the relation."""
        return self.config.repair_source == "auto" and self.config.use_sql_detection

    def repair(self, relation_name: str, cost_model: Optional[CostModel] = None) -> Repair:
        """Compute a candidate repair of ``relation_name``.

        With ``repair_source="auto"`` (and SQL detection on) the repair is
        planned over a backend-resident data source: violations come from
        the pushed-down ``detect()``, group members from the sargable
        covering-members plans and value frequencies from ``GROUP BY``
        aggregates — only result-sized rows cross the backend boundary and
        the working relation is never walked.  ``repair_source="native"``
        forces the original full-relation path (the parity oracle).
        """
        cfds = self.constraints.cfds(relation_name)
        repairer = BatchRepairer(
            cost_model=cost_model or self.cost_model,
            max_iterations=self.config.repair_max_iterations,
            telemetry=self.telemetry,
        )
        if self._repair_resident():
            self._sync_backend_if_stale(relation_name)
            source = BackendRepairSource(
                self.backend,
                relation_name,
                telemetry=self.telemetry,
                detector=self.detector,
                fetch_threshold=self.config.repair_fetch_threshold,
            )
            repair = repairer.repair_with_source(source, cfds)
            self.telemetry.inc("repair.source_resident")
            self.telemetry.inc(
                "repair.fetch_fraction", int(round(100 * source.fetch_fraction()))
            )
        else:
            repair = repairer.repair(self.database.relation(relation_name), cfds)
        self.telemetry.inc("repair.cells_changed", len(repair.changes))
        self._repairs[relation_name] = repair
        return repair

    def _hydrate_repair(self, relation_name: str, repair: Repair) -> Repair:
        """Expand a backend-resident repair to full-relation form.

        A resident repair's ``original``/``repaired`` hold only the partial
        relation the planner fetched; review and the replace-style apply
        path need whole relations, so the change list (the complete ground
        truth) is replayed over a copy of the working store.
        """
        original = self.database.relation(relation_name)
        repaired = original.copy()
        for change in repair.changes:
            if change.tid in repaired:
                repaired.update(change.tid, {change.attribute: change.new_value})
        return Repair(
            original=original,
            repaired=repaired,
            changes=repair.changes,
            iterations=repair.iterations,
            residual_violations=repair.residual_violations,
            source=repair.source,
        )

    def review(self, relation_name: str) -> RepairReview:
        """An interactive review of the latest candidate repair."""
        if relation_name not in self._repairs:
            self.repair(relation_name)
        repair = self._repairs[relation_name]
        if repair.source == "backend":
            repair = self._hydrate_repair(relation_name, repair)
        return RepairReview(repair, self.constraints.cfds(relation_name))

    def apply_repair(self, relation_name: str, reviewed: Optional[Relation] = None) -> Relation:
        """Replace the stored relation with the repaired (or reviewed) version.

        The backend copy is brought up to date by shipping one UPDATE per
        repaired tuple (the repair's cell changes) instead of bulk-reloading
        the whole relation; a full re-sync only happens when the tuple-id
        sets diverge (something other than cell repairs changed the data) or
        the relation was never loaded.  Also invalidates cached detection
        reports and switches any monitor of the relation to "cleansed" mode.
        """
        if relation_name not in self._repairs and reviewed is None:
            raise ConfigurationError(
                f"no candidate repair for {relation_name!r}; call repair() first"
            )
        if reviewed is None and self._repairs[relation_name].source == "backend":
            return self._apply_repair_resident(
                relation_name, self._repairs[relation_name]
            )
        new_relation = reviewed or self._repairs[relation_name].repaired
        replacement = new_relation.copy()
        old_relation = (
            self.database.relation(relation_name)
            if self.database.has_relation(relation_name)
            else None
        )
        self.database.add_relation(replacement, replace=True)
        self._ship_backend_delta(relation_name, old_relation, replacement)
        self._reports.pop(relation_name, None)
        if relation_name in self._monitors:
            # the retired monitor is bound to the replaced Relation object;
            # detach it so a reference still held by user code cannot keep
            # mirroring ghost deltas into the backend copy of the new data
            retired = self._monitors.pop(relation_name)
            retired.detach_backend()
            self._monitors[relation_name] = self._make_monitor(relation_name, cleansed=True)
        return replacement

    def _apply_repair_resident(self, relation_name: str, repair: Repair) -> Relation:
        """Apply a backend-resident repair without materialising the relation.

        The repair's change list is the complete ground truth, so the
        replacement relation is rebuilt from the working copy plus the
        changes (a Python-side copy — the backend is never asked to ship
        rows back) and the same changes travel to the backend as one
        :class:`DeltaBatch`.  A pushed-down ``detect_for_tuples`` over the
        changed tids is the safety net that replaces the native
        ``verify_untouched`` walk (any violations it still finds are
        surfaced as the ``repair.post_check_violations`` counter).
        """
        replacement = self._hydrate_repair(relation_name, repair).repaired
        self.database.add_relation(replacement, replace=True)
        batch = DeltaBatch(relation=relation_name)
        for change in repair.changes:
            if change.tid in replacement:
                batch.record_update(change.tid, {change.attribute: change.new_value})
        monitor = self._monitors.get(relation_name)
        if self._backend_shared:
            pass
        elif (
            relation_name not in self._synced
            or relation_name in self._stale
            or (monitor is not None and monitor.backend_desynced)
        ):
            self._sync_backend(relation_name)
        elif not batch.is_empty():
            self.backend.apply_delta_batch(relation_name, batch)
            self.telemetry.inc("sync.delta_batches")
        self._reports.pop(relation_name, None)
        changed = sorted(repair.changed_tids())
        if changed:
            post = self.detector.detect_for_tuples(
                relation_name, self.constraints.cfds(relation_name), changed
            )
            self.telemetry.inc(
                "repair.post_check_violations", post.total_violations()
            )
        if relation_name in self._monitors:
            retired = self._monitors.pop(relation_name)
            retired.detach_backend()
            self._monitors[relation_name] = self._make_monitor(relation_name, cleansed=True)
        return replacement

    def _ship_backend_delta(
        self,
        relation_name: str,
        old_relation: Optional[Relation],
        new_relation: Relation,
    ) -> None:
        """Bring the backend copy from ``old_relation`` to ``new_relation``.

        When the backend copy was current (synced, not stale) and the tuple-id
        sets agree — repairs only modify cell values — the changed cells are
        shipped as per-tid UPDATE statements.  Anything else falls back to a
        full bulk re-sync.

        The diff is computed from the in-memory relations (one pass over
        each, no backend round trips), so it is robust against the working
        store having drifted since ``repair()`` — e.g. monitor updates in
        between — where replaying the repair's recorded cell changes would
        silently miss the reverted cells.  ``apply_repair`` already
        materialises a full copy of the relation, so the diff adds a
        constant factor, not a new asymptotic cost; only the changed cells
        travel to the backend.
        """
        if self._backend_shared:
            return
        monitor = self._monitors.get(relation_name)
        if (
            old_relation is None
            or relation_name not in self._synced
            or relation_name in self._stale
            or (monitor is not None and monitor.backend_desynced)
        ):
            self._sync_backend(relation_name)
            return
        old_rows = dict(old_relation.rows())
        new_rows = dict(new_relation.rows())
        if old_rows.keys() != new_rows.keys():
            self._sync_backend(relation_name)
            return
        attributes = new_relation.attribute_names
        batch = DeltaBatch(relation=relation_name)
        for tid, old_row in old_rows.items():
            new_row = new_rows[tid]
            changes = {
                attr: new_row.get(attr)
                for attr in attributes
                if old_row.get(attr) != new_row.get(attr)
            }
            if changes:
                batch.record_update(tid, changes)
        if not batch.is_empty():
            self.backend.apply_delta_batch(relation_name, batch)
            self.telemetry.inc("sync.delta_batches")

    # -- step 7: monitor -----------------------------------------------------------------------------

    def monitor(self, relation_name: str, cleansed: Optional[bool] = None) -> DataMonitor:
        """The data monitor of ``relation_name`` (created on first use)."""
        if relation_name not in self._monitors:
            self._monitors[relation_name] = self._make_monitor(
                relation_name,
                cleansed=bool(cleansed) if cleansed is not None else relation_name in self._repairs,
            )
        elif cleansed is not None:
            if cleansed:
                self._monitors[relation_name].mark_cleansed()
            else:
                self._monitors[relation_name].mark_dirty()
        return self._monitors[relation_name]

    def apply_updates(self, relation_name: str, updates: Iterable[Update]) -> List[Optional[int]]:
        """Apply a batch of updates to a monitored relation.

        The whole batch flows through the relation's data monitor and on to
        the storage backend as one coalesced
        :class:`~repro.backends.delta.DeltaBatch` (a single transaction on
        SQLite).  Returns the affected tid per update (new tids for
        inserts).  The monitor is created on first use, so this is also the
        one-call way to start monitoring a relation.
        """
        return self.monitor(relation_name).apply_batch(updates)

    def _make_monitor(self, relation_name: str, cleansed: bool) -> DataMonitor:
        # a fresh monitor only mirrors updates applied from now on, so the
        # backend copy must be current before delta shipping takes over
        self._sync_backend_if_stale(relation_name)
        return DataMonitor(
            self.database,
            relation_name,
            self.constraints.cfds(relation_name),
            cost_model=self.cost_model,
            cleansed=cleansed,
            backend=None if self._backend_shared else self.backend,
            mode=self.config.incremental_mode,
            delta_plan=self.config.sql_delta_plan,
            detect_plan=self.config.detect_plan,
            telemetry=self.telemetry,
        )

    # -- observability -----------------------------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """Snapshot of every metric collected so far, as plain dicts.

        Returns ``{"enabled", "counters", "histograms", "spans", "plans"}``:
        per-statement-kind timing histograms (``statement_ms.q_v`` ...),
        plan-cache and delta counters, the recorded span trees, and — in
        ``explain_plans`` mode — one captured query plan per distinct
        statement shape with its ``uses_index`` verdict.  Everything is
        JSON-serialisable; with telemetry off the snapshot is empty but
        well-formed.

        On a pooled SQLite backend the snapshot's counters additionally
        carry the reader pool's live acquisition statistics
        (``pool.size``/``pool.open``/``pool.acquired``/``pool.wait_ms``/
        ``pool.timeouts``), folded in at snapshot time.
        """
        snapshot = self.telemetry.snapshot()
        pool_stats = self.backend.pool_stats()
        if pool_stats:
            snapshot["counters"] = {**snapshot["counters"], **pool_stats}
        return snapshot

    def trace(self, name: str, **tags: Any):
        """Open a named span around a block of user code.

        Usage: ``with system.trace("nightly-clean", relation="customer"): ...``
        — the spans of every detect/sync that runs inside nest under it in
        :meth:`metrics`.  A no-op context manager when telemetry is off.
        """
        return self.telemetry.span(name, **tags)

    def reset_metrics(self) -> None:
        """Clear every collected counter, histogram, span and captured plan."""
        self.telemetry.reset()

    # -- lifecycle ---------------------------------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (e.g. the SQLite connection).

        The memory backend has nothing to release; file-backed backends
        close their connection so the database file is unlocked.  Any
        ``sql_delta`` monitors drop their resident tableaux first, and the
        detector drops its cached detection tableaux, so a shared
        in-memory store is left clean.
        """
        for monitor in self._monitors.values():
            monitor.close()
        self.detector.release_cached_tableaux()
        self.backend.close()

    def __enter__(self) -> "Semandaq":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- one-shot pipeline ------------------------------------------------------------------------------

    def clean(self, relation_name: str) -> Dict[str, Any]:
        """Detect → repair → apply, returning a summary of each step.

        The dirty percentage is derived from the detection report (tuples
        involved in at least one violation) rather than the auditor's
        classification, so the backend-resident and native repair paths
        report identical summaries; call :meth:`audit` for the finer
        clean/dirty categorisation.  On the resident path every stage runs
        against the storage backend and only result-sized rows —
        violations, group members, aggregates, the repair diff — cross the
        boundary.
        """
        report = self.detect(relation_name)
        dirty_pct = (
            100.0 * len(report.dirty_tids()) / report.tuple_count
            if report.tuple_count
            else 0.0
        )
        repair = self.repair(relation_name)
        self.apply_repair(relation_name)
        post_report = self.detect(relation_name)
        return {
            "violations_before": report.total_violations(),
            "dirty_tuples_before": len(report.dirty_tids()),
            "dirty_percentage_before": dirty_pct,
            "cells_changed": len(repair.changes),
            "repair_cost": repair.total_cost,
            "violations_after": post_report.total_violations(),
            "dirty_tuples_after": len(post_report.dirty_tids()),
        }
