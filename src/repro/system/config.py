"""Configuration for the Semandaq facade."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..backends.registry import available_backends
from ..errors import ConfigurationError


@dataclass
class SemandaqConfig:
    """Tuning knobs of the end-to-end system.

    Attributes
    ----------
    backend:
        Name of the storage backend detection SQL is pushed down to
        (``"memory"`` for the embedded engine, ``"sqlite"`` for the stdlib
        SQLite backend, or any name registered with
        :func:`repro.backends.register_backend`).
    backend_options:
        Keyword options forwarded to the backend factory (e.g.
        ``{"path": "/tmp/semandaq.db"}`` for a file-backed SQLite store).
    use_sql_detection:
        Run detection through generated SQL (the paper's technique).  When
        false, the native Python detector is used instead (the ablation path).
    incremental_mode:
        How the data monitor's incremental detector re-checks affected
        groups after an update batch: ``"native"`` maintains group state in
        Python (the original path), ``"sql_delta"`` compiles the re-checks
        to parameterised delta ``Q_C``/``Q_V`` queries pushed down to the
        storage backend's resident copy.
    sql_delta_plan:
        Shape of the ``sql_delta`` affected-group restriction: ``"auto"``
        branches on the backend dialect (row-value ``IN (VALUES ...)``
        semi-joins on SQLite 3.15+, the OR-of-conjunctions form on the
        embedded engine); ``"portable"`` forces the OR form everywhere
        (the debugging / compatibility policy).
    detect_plan:
        Detection plan family the batch detector and the ``sql_delta``
        incremental detector compile ``Q_C``/``Q_V`` into.  ``"legacy"``
        is the tableau-joined shape; ``"sargable"`` splits each pattern
        row into its own statement with constant LHS positions bound as
        index-friendly equalities; ``"window"`` adds the one-pass ``Q_V``
        that returns violating groups and their member rows in a single
        scan (eliminating the covering-members round trip).  ``"auto"``
        picks ``window`` where the dialect supports it (SQLite 3.25+)
        and falls back to ``legacy`` elsewhere (the embedded engine).
        ``None`` defers to the ``SEMANDAQ_DETECT_PLAN`` environment
        variable, defaulting to ``"auto"``.  Every family produces
        bit-identical violation reports.
    repair_source:
        Where the batch repairer reads its data from.  ``"auto"`` keeps the
        repair backend-resident whenever SQL detection is on: violations,
        group members and value frequencies are answered by the storage
        backend (``GROUP BY``/``COUNT`` aggregates, sargable member
        fetches) and only result-sized rows cross the boundary —
        ``clean()``/``apply_repair`` never call ``to_relation``.
        ``"native"`` forces the original walk over the working
        :class:`~repro.engine.relation.Relation` (the parity oracle and
        the only choice when ``use_sql_detection`` is off).
    repair_fetch_threshold:
        Adaptive ship-back guard of the backend-resident repair: the
        fraction of the relation the closure may fetch row-by-row before
        the source switches to one keyset-paged full scan (fixing the
        blanket-group pathology where nearly every tuple is dirty, e.g.
        uniform noise under ``[CC] -> [CNT]``).  ``None`` disables the
        fallback (pure-resident, the PR 7 behaviour).
    audit_source:
        Where the auditor and the explorer read from.  ``"auto"`` keeps
        them backend-resident whenever SQL detection is on: clean tuples
        are classified by pushed-down applicability aggregates, drill-down
        navigation runs on ``GROUP BY`` histograms and keyset-paged
        fetches, and only the dirty rows are materialised —
        ``audit()``/``explorer()`` never call ``to_relation``.
        ``"native"`` forces the original full-relation walk (the parity
        oracle and the only choice when ``use_sql_detection`` is off).
    repair_max_iterations:
        Round limit of the heuristic repair algorithm.
    audit_majority:
        Fraction of jointly violating tuples that must agree with a tuple for
        it to be classified "arguably clean".
    quality_levels / quality_strategy:
        Number of shades and bucketing strategy of the data quality map
        (``"linear"`` or ``"quantile"``).
    attribute_weights:
        Default cost-model weights per attribute (higher = more trusted).
    check_consistency_on_add:
        Whether the constraint engine verifies satisfiability every time a
        CFD is registered.
    telemetry:
        Record spans and metrics (statement timings by kind, plan-cache and
        delta counters) for every detection and sync the system runs;
        snapshot them with :meth:`repro.system.semandaq.Semandaq.metrics`.
        Off by default: the disabled telemetry object is a shared no-op and
        the backend is never wrapped.
    explain_plans:
        Capture the backend's query plan (``EXPLAIN QUERY PLAN`` on SQLite)
        once per distinct detection-statement shape, reporting whether the
        plan rides an index.  Independent of ``telemetry``.
    log_sql:
        Log every backend statement at DEBUG level on the
        ``repro.obs.instrument`` logger (the package root logger carries a
        ``NullHandler``; attach a handler to see the output).
    pool_size:
        Size of the SQLite reader-connection pool the concurrent serving
        layer hands out to worker threads (file-backed stores only; a
        ``:memory:`` database is private to its connection, so the pool
        is disabled there regardless).  ``0`` forces single-connection
        mode — every read shares the writer connection under its lock —
        which is the THROUGHPUT benchmark's baseline.  ``None`` keeps the
        backend default (4).  Ignored by backends without a pool.
    serve_threads:
        Default worker-thread count of :meth:`Semandaq.serve`, the
        concurrent entry point fanning ``detect_for_tuples`` requests
        across a thread pool.
    pool_timeout:
        Seconds a reader waits for a pooled connection before raising
        ``PoolTimeoutError`` (pool exhaustion blocks, bounded by this).
    """

    backend: str = "memory"
    backend_options: Dict[str, Any] = field(default_factory=dict)
    use_sql_detection: bool = True
    incremental_mode: str = "native"
    sql_delta_plan: str = "auto"
    detect_plan: Optional[str] = None
    telemetry: bool = False
    explain_plans: bool = False
    log_sql: bool = False
    repair_source: str = "auto"
    repair_fetch_threshold: Optional[float] = 0.5
    audit_source: str = "auto"
    repair_max_iterations: int = 25
    audit_majority: float = 0.5
    quality_levels: int = 5
    quality_strategy: str = "linear"
    attribute_weights: Dict[str, float] = field(default_factory=dict)
    check_consistency_on_add: bool = True
    pool_size: Optional[int] = None
    serve_threads: int = 4
    pool_timeout: float = 30.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on out-of-range settings."""
        if self.backend not in available_backends():
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(available_backends())}"
            )
        from ..detection.incremental import INCREMENTAL_MODES

        if self.incremental_mode not in INCREMENTAL_MODES:
            raise ConfigurationError(
                f"unknown incremental_mode {self.incremental_mode!r}; "
                f"expected one of {', '.join(INCREMENTAL_MODES)}"
            )
        from ..detection.sqlgen import DELTA_PLANS

        if self.sql_delta_plan not in DELTA_PLANS:
            raise ConfigurationError(
                f"unknown sql_delta_plan {self.sql_delta_plan!r}; "
                f"expected one of {', '.join(DELTA_PLANS)}"
            )
        from ..detection.sqlgen import DETECT_PLANS

        if self.detect_plan is not None and self.detect_plan not in DETECT_PLANS:
            raise ConfigurationError(
                f"unknown detect_plan {self.detect_plan!r}; "
                f"expected one of {', '.join(DETECT_PLANS)}"
            )
        if self.repair_source not in ("auto", "native"):
            raise ConfigurationError(
                f"unknown repair_source {self.repair_source!r}; "
                "expected 'auto' or 'native'"
            )
        if self.repair_fetch_threshold is not None and not (
            0.0 < self.repair_fetch_threshold <= 1.0
        ):
            raise ConfigurationError(
                "repair_fetch_threshold must be in (0, 1] or None"
            )
        if self.audit_source not in ("auto", "native"):
            raise ConfigurationError(
                f"unknown audit_source {self.audit_source!r}; "
                "expected 'auto' or 'native'"
            )
        if self.repair_max_iterations < 1:
            raise ConfigurationError("repair_max_iterations must be at least 1")
        if not 0.0 <= self.audit_majority < 1.0:
            raise ConfigurationError("audit_majority must be in [0, 1)")
        if self.quality_levels < 2:
            raise ConfigurationError("quality_levels must be at least 2")
        if self.quality_strategy not in ("linear", "quantile"):
            raise ConfigurationError(
                f"unknown quality_strategy {self.quality_strategy!r}"
            )
        for attribute, weight in self.attribute_weights.items():
            if weight <= 0:
                raise ConfigurationError(
                    f"attribute weight for {attribute!r} must be positive"
                )
        if self.pool_size is not None and self.pool_size < 0:
            raise ConfigurationError("pool_size must be >= 0 or None")
        if self.serve_threads < 1:
            raise ConfigurationError("serve_threads must be at least 1")
        if self.pool_timeout <= 0:
            raise ConfigurationError("pool_timeout must be positive")
