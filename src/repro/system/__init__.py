"""The system facade: configuration, constraint engine and the Semandaq class."""

from .config import SemandaqConfig
from .constraint_engine import ConstraintEngine
from .semandaq import Semandaq

__all__ = ["Semandaq", "SemandaqConfig", "ConstraintEngine"]
