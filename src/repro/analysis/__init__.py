"""Static analysis of CFD sets: consistency, implication, minimal covers."""

from .consistency import (
    ConsistencyResult,
    assert_consistent,
    check_consistency,
    pairwise_conflicts,
)
from .implication import equivalent, implies, is_redundant
from .minimization import compact, minimal_cover, redundancy_report, remove_duplicates

__all__ = [
    "ConsistencyResult",
    "check_consistency",
    "assert_consistent",
    "pairwise_conflicts",
    "implies",
    "is_redundant",
    "equivalent",
    "minimal_cover",
    "remove_duplicates",
    "redundancy_report",
    "compact",
]
