"""Minimal covers of CFD sets.

The constraint engine keeps the user-specified constraints tidy: duplicate or
implied CFDs add detection and repair work without adding semantics.  A
*minimal cover* of ``Sigma`` is an equivalent subset from which no CFD can be
removed without losing equivalence.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..core.cfd import CFD
from ..core.tableau import merge_cfds
from .implication import implies


def remove_duplicates(cfds: Sequence[CFD]) -> List[CFD]:
    """Remove CFDs that are exact duplicates (same FD and pattern tableau)."""
    unique: List[CFD] = []
    seen = set()
    for cfd in cfds:
        key = (
            cfd.relation,
            cfd.lhs,
            cfd.rhs,
            tuple(tuple(sorted(pattern.encode().items())) for pattern in cfd.patterns),
        )
        if key in seen:
            continue
        seen.add(key)
        unique.append(cfd)
    return unique


def minimal_cover(cfds: Sequence[CFD]) -> List[CFD]:
    """Compute a minimal cover by greedily dropping implied CFDs.

    The result depends on iteration order (minimal covers are not unique);
    CFDs earlier in the input are preferred.  The returned set is equivalent
    to the input and no member is implied by the rest.
    """
    working = remove_duplicates(list(cfds))
    changed = True
    while changed:
        changed = False
        for index, cfd in enumerate(working):
            others = working[:index] + working[index + 1 :]
            if others and implies(others, cfd):
                working = others
                changed = True
                break
    return working


def redundancy_report(cfds: Sequence[CFD]) -> List[dict]:
    """Per-CFD report: is it a duplicate, is it implied by the others?

    The data explorer shows this to the user after constraint entry.
    """
    unique = remove_duplicates(list(cfds))
    unique_ids = {id(cfd) for cfd in unique}
    report = []
    for cfd in cfds:
        entry = {
            "cfd": cfd.identifier,
            "duplicate": id(cfd) not in unique_ids,
            "implied_by_rest": False,
        }
        if not entry["duplicate"]:
            others = [other for other in unique if other is not cfd]
            if others:
                entry["implied_by_rest"] = implies(others, cfd)
        report.append(entry)
    return report


def compact(cfds: Sequence[CFD]) -> List[CFD]:
    """Merge per-FD tableaux then drop implied CFDs: the engine's storage form."""
    return minimal_cover(merge_cfds(list(cfds)))
