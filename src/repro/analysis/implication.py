"""Implication analysis for CFDs.

``Sigma`` implies a CFD ``phi`` (written ``Sigma |= phi``) when every
instance that satisfies ``Sigma`` also satisfies ``phi``.  The constraint
engine uses implication to spot redundant user-specified constraints and to
compute minimal covers (see :mod:`repro.analysis.minimization`).

The implementation is a bounded counterexample search.  A violation of a
normal-form CFD involves at most two tuples, so ``Sigma |= phi`` fails iff
there is an instance of at most two tuples that satisfies ``Sigma`` and
violates ``phi``.  Moreover any such counterexample can be renamed so that
every attribute value is either a constant mentioned in ``Sigma ∪ {phi}`` or
one of two fresh symbols (two tuples can exhibit at most two distinct
"other" values per attribute), so the search space is finite.  The search is
exponential in the number of attributes in the worst case — implication for
CFDs is coNP-complete — but the violation structure of ``phi`` pins down the
values of the embedded FD's attributes, which keeps realistic inputs fast.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.cfd import CFD, normalize_all
from ..core.pattern import PatternValue

#: Fresh symbols: values guaranteed to differ from every mentioned constant.
FRESH_A = "__fresh_a__"
FRESH_B = "__fresh_b__"


def _attribute_candidates(
    cfds: Sequence[CFD], phi: CFD, attributes: Sequence[str]
) -> Dict[str, List[Any]]:
    candidates: Dict[str, List[Any]] = {attr: [] for attr in attributes}
    for cfd in list(cfds) + [phi]:
        for pattern in cfd.patterns:
            for attr, value in pattern.values:
                if attr in candidates and value.is_constant:
                    if value.constant not in candidates[attr]:
                        candidates[attr].append(value.constant)
    for attr in attributes:
        candidates[attr] = candidates[attr] + [FRESH_A, FRESH_B]
    return candidates


def _tuple_satisfies(sigma: Sequence[CFD], rows: Sequence[Dict[str, Any]]) -> bool:
    """Whether the tiny instance ``rows`` satisfies every CFD in ``sigma``."""
    for cfd in sigma:
        pattern = cfd.patterns[0]
        rhs_attr = cfd.rhs[0]
        rhs_value = pattern.value(rhs_attr)
        for row in rows:
            if not cfd.applies_to(row, pattern):
                continue
            if rhs_value.is_constant and not rhs_value.matches(row.get(rhs_attr)):
                return False
        if rhs_value.is_wildcard and len(rows) == 2:
            if cfd.pair_violation(rows[0], rows[1], pattern):
                return False
    return True


def _violates_phi(phi: CFD, rows: Sequence[Dict[str, Any]]) -> bool:
    pattern = phi.patterns[0]
    rhs_attr = phi.rhs[0]
    rhs_value = pattern.value(rhs_attr)
    if rhs_value.is_constant:
        return any(phi.single_tuple_violation(row, pattern) for row in rows)
    if len(rows) < 2:
        return False
    return phi.pair_violation(rows[0], rows[1], pattern)


def implies(sigma: Sequence[CFD], phi: CFD) -> bool:
    """Whether ``sigma`` implies ``phi`` (both normalised internally)."""
    sigma_normal = normalize_all(sigma)
    for phi_normal in phi.normalize():
        if not _implies_normal(sigma_normal, phi_normal):
            return False
    return True


def _implies_normal(sigma: List[CFD], phi: CFD) -> bool:
    attributes = sorted(
        {attr for cfd in sigma for attr in cfd.attributes} | set(phi.attributes)
    )
    candidates = _attribute_candidates(sigma, phi, attributes)
    pattern = phi.patterns[0]
    rhs_attr = phi.rhs[0]
    rhs_value = pattern.value(rhs_attr)

    if rhs_value.is_constant:
        # Counterexample: one tuple matching phi's LHS whose RHS differs.
        return not _exists_single_counterexample(
            sigma, phi, attributes, candidates, pattern, rhs_attr, rhs_value
        )
    # Counterexample: two tuples agreeing on X, matching tp[X], differing on A.
    return not _exists_pair_counterexample(
        sigma, phi, attributes, candidates, pattern, rhs_attr
    )


def _lhs_value_choices(phi: CFD, pattern, candidates: Dict[str, List[Any]]):
    """Choices of LHS values that make a tuple match ``pattern`` on phi's LHS."""
    per_attr: List[List[Any]] = []
    for attr in phi.lhs:
        value = pattern.value(attr)
        if value.is_constant:
            per_attr.append([value.constant])
        else:
            per_attr.append(candidates[attr])
    return itertools.product(*per_attr) if per_attr else iter([()])


def _free_attribute_choices(attributes, fixed: Dict[str, Any], candidates):
    free = [attr for attr in attributes if attr not in fixed]
    return free, itertools.product(*(candidates[attr] for attr in free))


def _exists_single_counterexample(
    sigma, phi, attributes, candidates, pattern, rhs_attr, rhs_value
) -> bool:
    for lhs_values in _lhs_value_choices(phi, pattern, candidates):
        base = dict(zip(phi.lhs, lhs_values))
        for bad_rhs in candidates[rhs_attr]:
            if rhs_value.matches(bad_rhs):
                continue
            fixed = dict(base)
            fixed[rhs_attr] = bad_rhs
            free, combos = _free_attribute_choices(attributes, fixed, candidates)
            for combo in combos:
                row = dict(fixed)
                row.update(dict(zip(free, combo)))
                if _violates_phi(phi, [row]) and _tuple_satisfies(sigma, [row]):
                    return True
    return False


def _exists_pair_counterexample(
    sigma, phi, attributes, candidates, pattern, rhs_attr
) -> bool:
    for lhs_values in _lhs_value_choices(phi, pattern, candidates):
        base = dict(zip(phi.lhs, lhs_values))
        # The two tuples agree on X and differ on A; try the two fresh symbols
        # plus constant/fresh combinations for A.
        rhs_options = candidates[rhs_attr]
        for rhs_a, rhs_b in itertools.permutations(rhs_options, 2):
            fixed_a = dict(base)
            fixed_a[rhs_attr] = rhs_a
            fixed_b = dict(base)
            fixed_b[rhs_attr] = rhs_b
            free, combos = _free_attribute_choices(attributes, fixed_a, candidates)
            for combo_a in combos:
                row_a = dict(fixed_a)
                row_a.update(dict(zip(free, combo_a)))
                _, combos_b = _free_attribute_choices(attributes, fixed_b, candidates)
                for combo_b in combos_b:
                    row_b = dict(fixed_b)
                    row_b.update(dict(zip(free, combo_b)))
                    rows = [row_a, row_b]
                    if _violates_phi(phi, rows) and _tuple_satisfies(sigma, rows):
                        return True
    return False


def is_redundant(sigma: Sequence[CFD], phi: CFD) -> bool:
    """Whether ``phi`` is implied by the *other* CFDs in ``sigma``."""
    others = [cfd for cfd in sigma if cfd is not phi and cfd.identifier != phi.identifier]
    return implies(others, phi)


def equivalent(sigma_a: Sequence[CFD], sigma_b: Sequence[CFD]) -> bool:
    """Whether two CFD sets imply each other."""
    return all(implies(sigma_a, phi) for phi in sigma_b) and all(
        implies(sigma_b, phi) for phi in sigma_a
    )
