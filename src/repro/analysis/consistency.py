"""Consistency (satisfiability) analysis for sets of CFDs.

Unlike traditional FDs, a set of CFDs may be *inconsistent*: no non-empty
instance can satisfy all of them (the paper's example: users must be warned
"whether the specified set of CFDs makes sense").

A classical observation (Fan et al., TODS 2008) reduces satisfiability to the
existence of a single witness tuple: a set ``Sigma`` of CFDs over relation
``R`` is satisfiable iff there exists one tuple ``t`` (with a non-NULL value
in every attribute) such that for every CFD ``(X -> A, tp)`` in ``Sigma``,
whenever ``t[X]`` matches ``tp[X]``, ``t[A]`` matches ``tp[A]``.  Multi-tuple
interaction never matters for satisfiability because duplicating a single
satisfying tuple can never introduce a variable-CFD violation.

The witness search below is a small constraint solver: each attribute ranges
over the constants mentioned for it in ``Sigma`` plus one fresh value
(standing for "any other value"), or over an explicitly supplied finite
domain.  The search is exponential in the worst case — the problem is
NP-complete with finite domains — but constraint ordering and propagation
keep it fast for realistic constraint sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.cfd import CFD, normalize_all
from ..errors import InconsistentCfdsError

#: Marker object standing for "some value different from every mentioned constant".
FRESH = "__fresh__"


@dataclass
class ConsistencyResult:
    """Outcome of a consistency check."""

    consistent: bool
    witness: Optional[Dict[str, Any]] = None
    conflict: Optional[List[str]] = None
    checked_cfds: int = 0

    def __bool__(self) -> bool:
        return self.consistent


def _candidate_values(
    cfds: Sequence[CFD],
    attributes: Sequence[str],
    finite_domains: Optional[Mapping[str, Iterable[Any]]] = None,
) -> Dict[str, List[Any]]:
    """Candidate witness values per attribute.

    For attributes with an explicit finite domain the candidates are exactly
    that domain; otherwise they are the constants mentioned in the CFDs plus
    the ``FRESH`` marker (an unconstrained infinite-domain value).
    """
    constants: Dict[str, List[Any]] = {attr: [] for attr in attributes}
    for cfd in cfds:
        for pattern in cfd.patterns:
            for attr, value in pattern.values:
                if value.is_constant and value.constant not in constants[attr]:
                    constants[attr].append(value.constant)
    candidates: Dict[str, List[Any]] = {}
    for attr in attributes:
        if finite_domains and attr in finite_domains:
            candidates[attr] = list(finite_domains[attr])
        else:
            candidates[attr] = constants[attr] + [FRESH]
    return candidates


def _matches(pattern_value, assigned: Any) -> Optional[bool]:
    """Whether an assigned candidate matches a pattern value.

    Returns ``None`` when the attribute is not assigned yet (unknown).
    """
    if assigned is None:
        return None
    if pattern_value.is_wildcard:
        return True
    if assigned == FRESH:
        return False
    return pattern_value.matches(assigned)


def check_consistency(
    cfds: Sequence[CFD],
    finite_domains: Optional[Mapping[str, Iterable[Any]]] = None,
) -> ConsistencyResult:
    """Check whether ``cfds`` admit a non-empty satisfying instance.

    Returns a :class:`ConsistencyResult` carrying a witness tuple when the
    set is consistent; when it is not, ``conflict`` names a small set of CFD
    identifiers that cannot be satisfied together.
    """
    normalized = normalize_all(cfds)
    if not normalized:
        return ConsistencyResult(consistent=True, witness={}, checked_cfds=0)
    attributes = sorted({attr for cfd in normalized for attr in cfd.attributes})
    candidates = _candidate_values(normalized, attributes, finite_domains)

    # Order attributes so the most constrained ones are assigned first.
    constraint_count = {attr: 0 for attr in attributes}
    for cfd in normalized:
        for attr in cfd.attributes:
            constraint_count[attr] += 1
    ordered_attributes = sorted(
        attributes, key=lambda attr: (-constraint_count[attr], attr)
    )

    def violates(assignment: Dict[str, Any]) -> Optional[CFD]:
        """Return a CFD that is definitely violated by the partial assignment."""
        for cfd in normalized:
            pattern = cfd.patterns[0]
            rhs_attr = cfd.rhs[0]
            lhs_status = [
                _matches(pattern.value(attr), assignment.get(attr)) for attr in cfd.lhs
            ]
            if any(status is False for status in lhs_status):
                continue
            if any(status is None for status in lhs_status):
                continue
            # LHS definitely matches: the RHS pattern must match too.
            rhs_status = _matches(pattern.value(rhs_attr), assignment.get(rhs_attr))
            if rhs_status is False:
                return cfd
        return None

    assignment: Dict[str, Any] = {attr: None for attr in attributes}

    def search(index: int) -> bool:
        if index == len(ordered_attributes):
            return violates(assignment) is None
        attr = ordered_attributes[index]
        for value in candidates[attr]:
            assignment[attr] = value
            if violates(assignment) is None and search(index + 1):
                return True
        assignment[attr] = None
        return False

    if search(0):
        witness = {
            attr: (f"<any value not in {{{', '.join(map(str, candidates[attr][:-1]))}}}>"
                   if value == FRESH
                   else value)
            for attr, value in assignment.items()
        }
        return ConsistencyResult(
            consistent=True, witness=witness, checked_cfds=len(normalized)
        )

    conflict = _minimal_conflict(normalized, finite_domains)
    return ConsistencyResult(
        consistent=False,
        conflict=[cfd.identifier for cfd in conflict],
        checked_cfds=len(normalized),
    )


def _minimal_conflict(
    cfds: List[CFD], finite_domains: Optional[Mapping[str, Iterable[Any]]]
) -> List[CFD]:
    """Shrink an inconsistent set to a small conflicting core (greedy)."""
    core = list(cfds)
    changed = True
    while changed:
        changed = False
        for cfd in list(core):
            reduced = [c for c in core if c is not cfd]
            if reduced and not check_consistency(reduced, finite_domains).consistent:
                core = reduced
                changed = True
                break
    return core


def assert_consistent(
    cfds: Sequence[CFD],
    finite_domains: Optional[Mapping[str, Iterable[Any]]] = None,
) -> ConsistencyResult:
    """Like :func:`check_consistency` but raises on inconsistency."""
    result = check_consistency(cfds, finite_domains)
    if not result.consistent:
        names = ", ".join(result.conflict or [])
        raise InconsistentCfdsError(f"the CFD set is inconsistent; conflicting core: {names}")
    return result


def pairwise_conflicts(
    cfds: Sequence[CFD],
    finite_domains: Optional[Mapping[str, Iterable[Any]]] = None,
) -> List[Tuple[str, str]]:
    """All pairs of CFDs that are inconsistent *with each other*.

    This is the summary the constraint engine shows users when a newly added
    CFD clashes with existing ones.
    """
    conflicts: List[Tuple[str, str]] = []
    indexed = list(cfds)
    for i in range(len(indexed)):
        for j in range(i + 1, len(indexed)):
            pair = [indexed[i], indexed[j]]
            if not check_consistency(pair, finite_domains).consistent:
                conflicts.append((indexed[i].identifier, indexed[j].identifier))
    return conflicts
