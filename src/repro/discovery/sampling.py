"""Sampling helpers for discovery on large relations.

Discovery over the full relation can be expensive; the usual practice is to
mine candidate CFDs on a sample and validate them on the full data (or on a
held-out portion).  These helpers provide deterministic, seeded sampling and
a simple split, plus a validator that measures each candidate's confidence
on arbitrary data.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..core.cfd import CFD
from ..core.satisfaction import multi_tuple_violation_groups, single_tuple_violations
from ..engine.relation import Relation


def sample_relation(relation: Relation, size: int, seed: int = 0) -> Relation:
    """A uniform random sample of ``size`` tuples (without replacement).

    Tuple ids are *not* preserved: the sample is a fresh relation, as a DBMS
    sample would be.
    """
    rng = random.Random(seed)
    tids = relation.tids()
    chosen = tids if size >= len(tids) else rng.sample(tids, size)
    sample = Relation(relation.schema)
    for tid in sorted(chosen):
        sample.insert(relation.get(tid))
    return sample


def split_relation(
    relation: Relation, holdout_fraction: float = 0.25, seed: int = 0
) -> Tuple[Relation, Relation]:
    """Split into (training, holdout) relations for mine-then-validate workflows."""
    rng = random.Random(seed)
    tids = relation.tids()
    rng.shuffle(tids)
    holdout_size = int(len(tids) * holdout_fraction)
    holdout_tids = set(tids[:holdout_size])
    training = Relation(relation.schema)
    holdout = Relation(relation.schema)
    for tid in relation.tids():
        target = holdout if tid in holdout_tids else training
        target.insert(relation.get(tid))
    return training, holdout


def validate_cfds(relation: Relation, cfds: Sequence[CFD]) -> Dict[str, Dict[str, float]]:
    """Measure each CFD's violation footprint on ``relation``.

    Returns, per CFD identifier, the number of single-tuple violations, the
    number of violating multi-tuple groups and the fraction of tuples that
    are involved in some violation of that CFD ("violation rate").  Mined
    candidates whose violation rate on the holdout exceeds a tolerance should
    be discarded.
    """
    total = len(relation) or 1
    results: Dict[str, Dict[str, float]] = {}
    for cfd in cfds:
        singles = single_tuple_violations(relation, cfd)
        groups = multi_tuple_violation_groups(relation, cfd)
        involved = {tid for tid, _pattern in singles}
        for _pattern, _key, tids in groups:
            involved.update(tids)
        results[cfd.identifier] = {
            "single_violations": float(len(singles)),
            "multi_groups": float(len(groups)),
            "violation_rate": len(involved) / total,
        }
    return results
