"""Attribute-set lattice utilities and partition refinement.

CFD discovery searches a lattice of attribute sets, level by level, the way
TANE and its CFD extension (CTANE) do.  The workhorse data structure is the
*partition* of the relation induced by an attribute set: tuples fall into the
same block iff they agree on every attribute of the set.  An FD ``X -> A``
holds exactly when the partition of ``X`` refines the partition of
``X ∪ {A}`` without splitting any block — equivalently, when both partitions
have the same number of blocks over the same tuples.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..engine.relation import Relation

AttributeSet = Tuple[str, ...]


def attribute_subsets(
    attributes: Sequence[str], max_size: int
) -> Iterable[AttributeSet]:
    """All non-empty subsets of ``attributes`` with at most ``max_size`` members."""
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(attributes, size):
            yield combo


def partition(relation: Relation, attributes: Sequence[str]) -> Dict[Tuple[Any, ...], List[int]]:
    """Partition tuple ids by their values on ``attributes``.

    Tuples with a NULL in any of the attributes are placed in singleton
    blocks keyed by their tid (NULL agrees with nothing, so they can never
    witness or violate an FD).
    """
    blocks: Dict[Tuple[Any, ...], List[int]] = defaultdict(list)
    for tid, row in relation.rows():
        values = tuple(row.get(attr) for attr in attributes)
        if any(value is None for value in values):
            blocks[("__null__", tid)].append(tid)
        else:
            blocks[values].append(tid)
    return dict(blocks)


def block_count(partition_blocks: Dict[Tuple[Any, ...], List[int]]) -> int:
    """Number of blocks in a partition."""
    return len(partition_blocks)


def fd_holds(relation: Relation, lhs: Sequence[str], rhs: str) -> bool:
    """Whether the plain FD ``lhs -> rhs`` holds exactly on ``relation``."""
    lhs_partition = partition(relation, lhs)
    for _key, tids in lhs_partition.items():
        if len(tids) < 2:
            continue
        values = {
            relation.value(tid, rhs)
            for tid in tids
            if relation.value(tid, rhs) is not None
        }
        if len(values) > 1:
            return False
    return True


def fd_violating_blocks(
    relation: Relation, lhs: Sequence[str], rhs: str
) -> List[Tuple[Tuple[Any, ...], List[int]]]:
    """The LHS blocks on which the FD ``lhs -> rhs`` is violated."""
    violating: List[Tuple[Tuple[Any, ...], List[int]]] = []
    for key, tids in partition(relation, lhs).items():
        if len(tids) < 2:
            continue
        values = {
            relation.value(tid, rhs)
            for tid in tids
            if relation.value(tid, rhs) is not None
        }
        if len(values) > 1:
            violating.append((key, tids))
    return violating


def fd_confidence(relation: Relation, lhs: Sequence[str], rhs: str) -> float:
    """Fraction of tuples kept if each violating LHS block kept only its majority value.

    1.0 means the FD holds exactly; lower values quantify how close it is to
    holding (the confidence measure used when discovering approximate
    dependencies).
    """
    total = 0
    kept = 0
    for _key, tids in partition(relation, lhs).items():
        counts: Dict[Any, int] = defaultdict(int)
        usable = [tid for tid in tids if relation.value(tid, rhs) is not None]
        if not usable:
            continue
        total += len(usable)
        for tid in usable:
            counts[relation.value(tid, rhs)] += 1
        kept += max(counts.values())
    if total == 0:
        return 1.0
    return kept / total


def value_frequencies(relation: Relation, attribute: str) -> Dict[Any, int]:
    """Frequency of each non-NULL value of ``attribute``."""
    counts: Dict[Any, int] = defaultdict(int)
    for _tid, row in relation.rows():
        value = row.get(attribute)
        if value is not None:
            counts[value] += 1
    return dict(counts)


def is_superset_of_any(candidate: AttributeSet, minimal_sets: Set[FrozenSet[str]]) -> bool:
    """Whether ``candidate`` contains some already-minimal attribute set."""
    as_set = frozenset(candidate)
    return any(minimal <= as_set for minimal in minimal_sets)
