"""Discovery of constant CFDs from reference data.

The paper notes that the constraint engine's CFDs "may either be explicitly
specified by users or automatically discovered from reference data".  This
module mines *constant* CFDs — rules of the form
``[A1='a1', ..., Ak='ak'] -> [B='b']`` — in the spirit of CFDMiner: a
constant CFD corresponds to an association rule with 100% (or configurably
high) confidence whose LHS itemset is frequent, restricted to minimal LHS
itemsets so the output is not drowned in redundant specialisations.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.cfd import CFD
from ..engine.relation import Relation
from ..errors import DiscoveryError

Item = Tuple[str, Any]  # (attribute, value)


@dataclass(frozen=True)
class DiscoveredRule:
    """A mined constant rule with its support and confidence."""

    lhs_items: Tuple[Item, ...]
    rhs_item: Item
    support: int
    confidence: float

    def to_cfd(self, relation_name: str, name: Optional[str] = None) -> CFD:
        """Convert the rule to a constant CFD."""
        lhs = {attribute: value for attribute, value in self.lhs_items}
        rhs = {self.rhs_item[0]: self.rhs_item[1]}
        return CFD.build(relation_name, lhs, rhs, name=name)


class ConstantCfdMiner:
    """Levelwise miner for constant CFDs."""

    def __init__(
        self,
        min_support: int = 2,
        min_confidence: float = 1.0,
        max_lhs_size: int = 2,
    ):
        if min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        if not 0.0 < min_confidence <= 1.0:
            raise DiscoveryError("min_confidence must be in (0, 1]")
        if max_lhs_size < 1:
            raise DiscoveryError("max_lhs_size must be at least 1")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_lhs_size = max_lhs_size

    # -- mining --------------------------------------------------------------------

    def mine(self, relation: Relation) -> List[DiscoveredRule]:
        """Mine constant rules from ``relation`` (assumed to be reference/clean data)."""
        transactions = self._transactions(relation)
        frequent = self._frequent_itemsets(transactions)
        rules = self._rules(frequent, transactions)
        return self._keep_minimal(rules)

    def mine_cfds(
        self, relation: Relation, name_prefix: str = "discovered"
    ) -> List[CFD]:
        """Mine rules and return them as constant CFDs."""
        rules = self.mine(relation)
        return [
            rule.to_cfd(relation.name, name=f"{name_prefix}{index + 1}")
            for index, rule in enumerate(rules)
        ]

    # -- internals -----------------------------------------------------------------

    def _transactions(self, relation: Relation) -> List[Set[Item]]:
        transactions: List[Set[Item]] = []
        for _tid, row in relation.rows():
            transactions.append(
                {(attribute, value) for attribute, value in row.items() if value is not None}
            )
        return transactions

    def _frequent_itemsets(
        self, transactions: List[Set[Item]]
    ) -> Dict[FrozenSet[Item], int]:
        """Apriori-style levelwise frequent itemsets up to ``max_lhs_size + 1`` items."""
        max_size = self.max_lhs_size + 1  # +1 for the RHS item
        counts: Dict[FrozenSet[Item], int] = defaultdict(int)
        for transaction in transactions:
            for item in transaction:
                counts[frozenset([item])] += 1
        frequent: Dict[FrozenSet[Item], int] = {
            itemset: count
            for itemset, count in counts.items()
            if count >= self.min_support
        }
        current_level = list(frequent)
        for size in range(2, max_size + 1):
            candidates: Set[FrozenSet[Item]] = set()
            singles = [next(iter(itemset)) for itemset in frequent if len(itemset) == 1]
            for itemset in current_level:
                if len(itemset) != size - 1:
                    continue
                for item in singles:
                    if item in itemset:
                        continue
                    candidate = itemset | {item}
                    # one item per attribute
                    if len({attribute for attribute, _ in candidate}) != size:
                        continue
                    candidates.add(candidate)
            level_counts: Dict[FrozenSet[Item], int] = defaultdict(int)
            for transaction in transactions:
                for candidate in candidates:
                    if candidate <= transaction:
                        level_counts[candidate] += 1
            new_level = [
                candidate
                for candidate, count in level_counts.items()
                if count >= self.min_support
            ]
            for candidate in new_level:
                frequent[candidate] = level_counts[candidate]
            if not new_level:
                break
            current_level = new_level
        return frequent

    def _rules(
        self,
        frequent: Dict[FrozenSet[Item], int],
        transactions: List[Set[Item]],
    ) -> List[DiscoveredRule]:
        rules: List[DiscoveredRule] = []
        for itemset, support in frequent.items():
            if len(itemset) < 2:
                continue
            for rhs_item in itemset:
                lhs_items = itemset - {rhs_item}
                if len(lhs_items) > self.max_lhs_size:
                    continue
                lhs_support = frequent.get(frozenset(lhs_items))
                if lhs_support is None:
                    lhs_support = sum(
                        1 for transaction in transactions if lhs_items <= transaction
                    )
                if lhs_support == 0:
                    continue
                confidence = support / lhs_support
                if confidence + 1e-12 < self.min_confidence:
                    continue
                rules.append(
                    DiscoveredRule(
                        lhs_items=tuple(sorted(lhs_items)),
                        rhs_item=rhs_item,
                        support=support,
                        confidence=confidence,
                    )
                )
        return rules

    def _keep_minimal(self, rules: List[DiscoveredRule]) -> List[DiscoveredRule]:
        """Keep only rules whose LHS is minimal for their RHS item."""
        by_rhs: Dict[Item, List[DiscoveredRule]] = defaultdict(list)
        for rule in rules:
            by_rhs[rule.rhs_item].append(rule)
        kept: List[DiscoveredRule] = []
        for rhs_item, group in by_rhs.items():
            group_sorted = sorted(group, key=lambda rule: (len(rule.lhs_items), rule.lhs_items))
            minimal_lhs: List[FrozenSet[Item]] = []
            for rule in group_sorted:
                lhs = frozenset(rule.lhs_items)
                if any(existing <= lhs for existing in minimal_lhs):
                    continue
                minimal_lhs.append(lhs)
                kept.append(rule)
        kept.sort(key=lambda rule: (-rule.support, rule.lhs_items, rule.rhs_item))
        return kept
