"""CFD discovery from reference data: constant rules and conditioned FDs."""

from .cfdminer import ConstantCfdMiner, DiscoveredRule
from .ctane import DiscoveredCfd, VariableCfdDiscoverer
from .lattice import fd_confidence, fd_holds, partition, value_frequencies
from .sampling import sample_relation, split_relation, validate_cfds

__all__ = [
    "ConstantCfdMiner",
    "DiscoveredRule",
    "VariableCfdDiscoverer",
    "DiscoveredCfd",
    "fd_holds",
    "fd_confidence",
    "partition",
    "value_frequencies",
    "sample_relation",
    "split_relation",
    "validate_cfds",
]
