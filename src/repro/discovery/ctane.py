"""Discovery of variable CFDs (conditional FDs) from reference data.

A levelwise search in the spirit of CTANE / TANE:

1. plain FDs ``X -> A`` that hold exactly on the data are emitted as
   all-wildcard CFDs (minimal LHS only);
2. for candidate FDs that *almost* hold, the search looks for conditions —
   constant bindings of one or more LHS attributes — under which the FD does
   hold on the selected subset with at least ``min_support`` matching tuples.
   Each such condition becomes a pattern tuple of a variable CFD, e.g.
   ``[CNT='UK', ZIP=_] -> [STR=_]``.

The search is bounded by ``max_lhs_size`` and ``max_conditions`` to stay
polynomial in practice; discovery of a full minimal cover of all CFDs is
exponential in the number of attributes in the worst case.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.cfd import CFD
from ..core.pattern import PatternTuple, PatternValue
from ..engine.relation import Relation
from ..errors import DiscoveryError
from .lattice import (
    attribute_subsets,
    fd_confidence,
    fd_holds,
    partition,
    value_frequencies,
)


@dataclass(frozen=True)
class DiscoveredCfd:
    """A discovered (possibly conditional) FD with its quality measures."""

    cfd: CFD
    support: int
    confidence: float
    conditional: bool


class VariableCfdDiscoverer:
    """Levelwise discovery of plain FDs and conditioned (variable) CFDs."""

    def __init__(
        self,
        min_support: int = 3,
        min_confidence: float = 1.0,
        max_lhs_size: int = 3,
        max_conditions: int = 1,
    ):
        if min_support < 2:
            raise DiscoveryError("min_support must be at least 2 for variable CFDs")
        if not 0.0 < min_confidence <= 1.0:
            raise DiscoveryError("min_confidence must be in (0, 1]")
        if max_lhs_size < 1:
            raise DiscoveryError("max_lhs_size must be at least 1")
        if max_conditions < 0 or max_conditions > max_lhs_size:
            raise DiscoveryError("max_conditions must be between 0 and max_lhs_size")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_lhs_size = max_lhs_size
        self.max_conditions = max_conditions

    # -- discovery -------------------------------------------------------------------

    def discover(self, relation: Relation) -> List[DiscoveredCfd]:
        """Discover plain FDs and conditioned CFDs from ``relation``."""
        attributes = relation.attribute_names
        results: List[DiscoveredCfd] = []
        minimal_fd_lhs: Dict[str, Set[FrozenSet[str]]] = defaultdict(set)

        for rhs in attributes:
            candidates = [
                lhs
                for lhs in attribute_subsets([a for a in attributes if a != rhs], self.max_lhs_size)
            ]
            for lhs in candidates:
                lhs_frozen = frozenset(lhs)
                # skip non-minimal LHS (a subset already gives the FD)
                if any(existing <= lhs_frozen for existing in minimal_fd_lhs[rhs]):
                    continue
                support = self._support(relation, lhs)
                if support < self.min_support:
                    continue
                if fd_holds(relation, lhs, rhs):
                    minimal_fd_lhs[rhs].add(lhs_frozen)
                    cfd = CFD.from_fd(relation.name, lhs, [rhs])
                    results.append(
                        DiscoveredCfd(
                            cfd=cfd,
                            support=support,
                            confidence=1.0,
                            conditional=False,
                        )
                    )
                    continue
                results.extend(self._conditioned(relation, lhs, rhs))
        return results

    def discover_cfds(self, relation: Relation, name_prefix: str = "ctane") -> List[CFD]:
        """Return just the CFDs, named ``ctane1``, ``ctane2``, …"""
        discovered = self.discover(relation)
        cfds: List[CFD] = []
        for index, item in enumerate(discovered):
            renamed = CFD(
                relation=item.cfd.relation,
                lhs=item.cfd.lhs,
                rhs=item.cfd.rhs,
                patterns=item.cfd.patterns,
                name=f"{name_prefix}{index + 1}",
            )
            cfds.append(renamed)
        return cfds

    # -- conditioning -----------------------------------------------------------------

    def _conditioned(
        self, relation: Relation, lhs: Tuple[str, ...], rhs: str
    ) -> List[DiscoveredCfd]:
        """Find constant bindings of LHS attributes under which the FD holds."""
        if self.max_conditions == 0:
            return []
        results: List[DiscoveredCfd] = []
        for condition_size in range(1, min(self.max_conditions, len(lhs)) + 1):
            for condition_attrs in itertools.combinations(lhs, condition_size):
                for binding in self._bindings(relation, condition_attrs):
                    selected = self._select(relation, dict(zip(condition_attrs, binding)))
                    if len(selected) < self.min_support:
                        continue
                    confidence = self._conditional_confidence(
                        relation, selected, lhs, rhs
                    )
                    if confidence + 1e-12 < self.min_confidence:
                        continue
                    mapping: Dict[str, PatternValue] = {}
                    for attribute in lhs:
                        if attribute in condition_attrs:
                            index = condition_attrs.index(attribute)
                            mapping[attribute] = PatternValue.const(binding[index])
                        else:
                            mapping[attribute] = PatternValue.wildcard()
                    mapping[rhs] = PatternValue.wildcard()
                    cfd = CFD(
                        relation=relation.name,
                        lhs=lhs,
                        rhs=(rhs,),
                        patterns=(PatternTuple.of(mapping),),
                    )
                    results.append(
                        DiscoveredCfd(
                            cfd=cfd,
                            support=len(selected),
                            confidence=confidence,
                            conditional=True,
                        )
                    )
        return results

    def _bindings(
        self, relation: Relation, attributes: Tuple[str, ...]
    ) -> Iterable[Tuple[Any, ...]]:
        """Frequent value combinations of ``attributes`` (support-filtered)."""
        blocks = partition(relation, attributes)
        for key, tids in blocks.items():
            if isinstance(key, tuple) and len(key) == 2 and key[0] == "__null__":
                continue
            if len(tids) >= self.min_support:
                yield key

    def _select(self, relation: Relation, binding: Dict[str, Any]) -> List[int]:
        return [
            tid
            for tid, row in relation.rows()
            if all(row.get(attribute) == value for attribute, value in binding.items())
        ]

    def _conditional_confidence(
        self,
        relation: Relation,
        selected_tids: List[int],
        lhs: Tuple[str, ...],
        rhs: str,
    ) -> float:
        groups: Dict[Tuple[Any, ...], Dict[Any, int]] = defaultdict(lambda: defaultdict(int))
        total = 0
        for tid in selected_tids:
            row = relation.get(tid)
            if any(row.get(attribute) is None for attribute in lhs):
                continue
            value = row.get(rhs)
            if value is None:
                continue
            total += 1
            key = tuple(row.get(attribute) for attribute in lhs)
            groups[key][value] += 1
        if total == 0:
            return 1.0
        kept = sum(max(counts.values()) for counts in groups.values())
        return kept / total

    def _support(self, relation: Relation, lhs: Tuple[str, ...]) -> int:
        return sum(
            1
            for _tid, row in relation.rows()
            if all(row.get(attribute) is not None for attribute in lhs)
        )
