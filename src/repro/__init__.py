"""Semandaq reproduction: a data quality system based on conditional functional dependencies.

The package reproduces the system demonstrated in "Semandaq: A Data Quality
System Based on Conditional Functional Dependencies" (Fan, Geerts, Jia,
VLDB 2008) as a Python library:

* :mod:`repro.engine` — the relational substrate (typed relations, indexes,
  a SQL subset, CSV/JSON I/O);
* :mod:`repro.backends` — pluggable storage backends the detection SQL is
  pushed down to (the embedded engine, or real-DBMS pushdown via the stdlib
  ``sqlite3`` module), selected with ``SemandaqConfig(backend=...)``;
* :mod:`repro.core` — the CFD formalism (pattern tuples, tableaux, parsing,
  semantics);
* :mod:`repro.analysis` — static analysis (consistency, implication, covers);
* :mod:`repro.detection` — SQL-based batch detection and incremental detection;
* :mod:`repro.audit` — quality metrics, quality maps and reports;
* :mod:`repro.repair` — the cost-based heuristic cleanser and incremental repair;
* :mod:`repro.discovery` — CFD discovery from reference data;
* :mod:`repro.monitor` — the data monitor;
* :mod:`repro.obs` — the telemetry layer (spans, statement metrics, query
  plans, ``BENCH_*.json`` emission), enabled with
  ``SemandaqConfig(telemetry=True)``;
* :mod:`repro.explorer` — drill-down exploration and text rendering;
* :mod:`repro.system` — the :class:`~repro.system.semandaq.Semandaq` facade;
* :mod:`repro.datasets` — synthetic workloads with seeded error injection.

Quickstart::

    from repro import Semandaq
    from repro.datasets import generate_customers, paper_cfds, inject_noise

    clean = generate_customers(500, seed=1)
    dirty = inject_noise(clean, rate=0.03, seed=2).dirty

    system = Semandaq()
    system.register_relation(dirty)
    system.add_cfds(paper_cfds())
    report = system.detect("customer")
    print(system.audit("customer").pie_chart())
    repair = system.repair("customer")
"""

import logging as _logging

# Library convention: never emit log records unless the application asks.
# Statement logging (SemandaqConfig(log_sql=True)) records at DEBUG on
# child loggers; attach a handler to "repro" to see it.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from .backends import (
    DeltaBatch,
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
    available_backends,
    create_backend,
    register_backend,
)
from .core.cfd import CFD
from .core.parser import format_cfd, parse_cfd, parse_cfds
from .core.pattern import PatternTuple, PatternValue
from .detection.detector import ErrorDetector
from .detection.violations import Violation, ViolationReport
from .engine.database import Database
from .engine.relation import Relation
from .engine.types import AttributeDef, DataType, RelationSchema
from .errors import SemandaqError
from .obs import Telemetry
from .repair.cost import CostModel
from .repair.repairer import BatchRepairer, Repair
from .system.config import SemandaqConfig
from .system.semandaq import Semandaq

__version__ = "1.0.0"

__all__ = [
    "CFD",
    "PatternTuple",
    "PatternValue",
    "parse_cfd",
    "parse_cfds",
    "format_cfd",
    "Database",
    "StorageBackend",
    "DeltaBatch",
    "MemoryBackend",
    "SqliteBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "Relation",
    "RelationSchema",
    "AttributeDef",
    "DataType",
    "ErrorDetector",
    "Violation",
    "ViolationReport",
    "CostModel",
    "BatchRepairer",
    "Repair",
    "Semandaq",
    "SemandaqConfig",
    "SemandaqError",
    "Telemetry",
    "__version__",
]
