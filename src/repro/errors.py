"""Exception hierarchy for the Semandaq reproduction.

All exceptions raised by the library derive from :class:`SemandaqError`, so
callers can catch a single type at the API boundary.  Sub-hierarchies mirror
the subsystems: the relational engine, the CFD formalism, static analysis,
detection, repair, discovery and the system facade.
"""

from __future__ import annotations


class SemandaqError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------


class EngineError(SemandaqError):
    """Base class for errors raised by the relational engine."""


class SchemaError(EngineError):
    """A schema definition or schema lookup is invalid."""


class UnknownRelationError(SchemaError):
    """A relation name was not found in the database."""

    def __init__(self, name: str):
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(SchemaError):
    """An attribute name was not found in a relation schema."""

    def __init__(self, relation: str, attribute: str):
        super().__init__(f"unknown attribute {attribute!r} in relation {relation!r}")
        self.relation = relation
        self.attribute = attribute


class DuplicateRelationError(SchemaError):
    """Attempted to create a relation whose name already exists."""


class TypeMismatchError(EngineError):
    """A value does not conform to its declared attribute type."""


class ConstraintViolationError(EngineError):
    """A storage-level constraint (e.g. NOT NULL, key) was violated."""


class BackendError(EngineError):
    """A storage backend was mis-configured or misused.

    Raised for unknown backend names in the registry, invalid identifiers,
    and other backend-level contract violations.
    """


class UnknownTupleError(EngineError):
    """A tuple id does not exist in the relation."""

    def __init__(self, tid: int):
        super().__init__(f"unknown tuple id: {tid}")
        self.tid = tid


# ---------------------------------------------------------------------------
# SQL subset
# ---------------------------------------------------------------------------


class SqlError(EngineError):
    """Base class for errors in the SQL subset."""


class SqlLexError(SqlError):
    """The SQL text could not be tokenised."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at position {position})")
        self.position = position


class SqlParseError(SqlError):
    """The SQL token stream could not be parsed."""


class SqlPlanError(SqlError):
    """A parsed query could not be converted into an executable plan."""


class SqlExecutionError(SqlError):
    """A plan failed at execution time."""


# ---------------------------------------------------------------------------
# CFD formalism
# ---------------------------------------------------------------------------


class CfdError(SemandaqError):
    """Base class for errors in the CFD formalism."""


class CfdParseError(CfdError):
    """A textual CFD specification could not be parsed."""


class CfdSchemaError(CfdError):
    """A CFD refers to attributes that do not exist in the target schema."""


class InconsistentCfdsError(CfdError):
    """A set of CFDs has no non-empty satisfying instance."""


# ---------------------------------------------------------------------------
# Detection / repair / discovery / monitor
# ---------------------------------------------------------------------------


class DetectionError(SemandaqError):
    """Violation detection failed."""


class RepairError(SemandaqError):
    """The repair algorithm could not produce a candidate repair."""


class DiscoveryError(SemandaqError):
    """CFD discovery failed or was mis-configured."""


class MonitorError(SemandaqError):
    """The data monitor was used incorrectly."""


class ExplorerError(SemandaqError):
    """The data explorer was asked for an impossible navigation step."""


class ConfigurationError(SemandaqError):
    """The system facade was configured inconsistently."""
