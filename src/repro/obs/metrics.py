"""Counters and histograms: the numeric half of the telemetry layer.

A :class:`MetricsRegistry` is a flat namespace of named :class:`Counter`
and :class:`Histogram` instruments, created on first use.  Names follow a
``family.detail`` convention — ``statement_ms.q_c``,
``plan_cache.hits``, ``delta.ops_shipped`` — so a snapshot groups
naturally when sorted.  Everything is plain Python on purpose: the
registry must import nowhere near the hot path's dependencies and cost
nothing when telemetry is disabled (callers guard on
:attr:`~repro.obs.telemetry.Telemetry.enabled` before touching it).

Snapshots are plain dicts with deterministically sorted keys, so two
identical workloads produce identical counter snapshots — a property the
telemetry test suite pins.

The instruments are shared across the serving layer's worker threads, so
every mutation (increment, observation, lazy creation) happens under one
module-level lock: ``value += amount`` is a read-modify-write that loses
increments under contention otherwise.  A single lock keeps the
uncontended cost to one atomic acquire — these are telemetry updates, not
hot-loop arithmetic — and the concurrency test suite pins "counter totals
under contention equal the single-thread sum" on it.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

#: guards every instrument mutation and registry map across threads
_METRICS_LOCK = threading.Lock()


class Counter:
    """A monotonically increasing integer metric (thread-safe)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with _METRICS_LOCK:
            self.value += amount


class Histogram:
    """A streaming summary of observed values: count/total/min/max.

    Full bucketed histograms are overkill for the per-statement timings
    this layer records; count + total (hence mean) + extremes answer the
    "which statement kind dominates" question the benchmarks ask, in O(1)
    space.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation (thread-safe)."""
        with _METRICS_LOCK:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """The average observed value (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict summary (rounded, JSON-ready)."""
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": None if self.min is None else round(self.min, 6),
            "max": None if self.max is None else round(self.max, 6),
        }


class MetricsRegistry:
    """A named collection of counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created at zero if missing)."""
        counter = self._counters.get(name)
        if counter is None:
            with _METRICS_LOCK:
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter()
        return counter

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created empty if missing)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with _METRICS_LOCK:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
        return histogram

    def counter_value(self, name: str) -> int:
        """Current value of counter ``name`` (0 if it never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def reset(self) -> None:
        """Drop every instrument (a fresh registry)."""
        with _METRICS_LOCK:
            self._counters.clear()
            self._histograms.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of every instrument, keys sorted."""
        with _METRICS_LOCK:
            return {
                "counters": {
                    name: self._counters[name].value
                    for name in sorted(self._counters)
                },
                "histograms": {
                    name: self._histograms[name].to_dict()
                    for name in sorted(self._histograms)
                },
            }
