"""The instrumented storage-backend proxy.

:class:`InstrumentedBackend` wraps any
:class:`~repro.backends.base.StorageBackend` and records, per operation:

* ``execute`` — duration (``statement_ms.<kind>`` histogram), rows
  returned, parameter count, all bucketed by the statement kind the
  detectors announce through
  :meth:`~repro.obs.telemetry.Telemetry.tag_statements`; plus optional
  DEBUG statement logging (``log_sql``) and ``EXPLAIN QUERY PLAN``
  capture (``explain_plans``);
* the write/catalog operations (``insert_many``, ``apply_delta_batch``,
  the single-row delta ops, ``add_relation``, ``ensure_index``) —
  duration histograms under ``backend_ms.<op>`` and rows-affected
  counters under ``backend_rows.<op>``.

The proxy is registered as a virtual subclass of :class:`StorageBackend`
(it delegates rather than inherits — inheriting would re-trigger the
abstract-method contract for methods it forwards via ``__getattr__``), so
``isinstance`` checks across the stack keep working.  Every attribute it
does not instrument — ``dialect``, ``name``, ``schema``, ``row_count``,
the memory backend's ``database`` — passes straight through to the
wrapped backend.
"""

from __future__ import annotations

import logging
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..backends.base import StorageBackend
from .telemetry import Telemetry

logger = logging.getLogger(__name__)


class InstrumentedBackend:
    """A :class:`StorageBackend` proxy recording telemetry per operation."""

    def __init__(self, inner: StorageBackend, telemetry: Telemetry):
        # double-wrapping would double-count every statement
        if isinstance(inner, InstrumentedBackend):
            inner = inner.inner
        self.inner = inner
        self.telemetry = telemetry

    # -- delegation -------------------------------------------------------------

    def __getattr__(self, attribute: str) -> Any:
        return getattr(self.inner, attribute)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstrumentedBackend({self.inner!r})"

    # -- instrumented query path -------------------------------------------------

    def execute(
        self, sql: str, parameters: Optional[Sequence[Any]] = None
    ) -> List[Dict[str, Any]]:
        telemetry = self.telemetry
        kind = telemetry.statement_kind()
        if telemetry.log_sql:
            logger.debug(
                "execute kind=%s params=%d sql=%s",
                kind,
                len(parameters or ()),
                " ".join(sql.split()),
            )
        if telemetry.explain_plans:
            telemetry.capture_plan(self.inner, sql, parameters, kind)
        if not telemetry.enabled:
            return self.inner.execute(sql, parameters)
        with telemetry.span("statement", kind=kind):
            started = time.perf_counter()
            rows = self.inner.execute(sql, parameters)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
        telemetry.record_statement(
            kind, elapsed_ms, rows=len(rows), params=len(parameters or ())
        )
        return rows

    # -- instrumented write/catalog path -------------------------------------------

    def _timed(self, op: str, fn, *args: Any, **kwargs: Any) -> Any:
        telemetry = self.telemetry
        if not telemetry.enabled:
            return fn(*args, **kwargs)
        with telemetry.span(op):
            started = time.perf_counter()
            result = fn(*args, **kwargs)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
        telemetry.metrics.histogram(f"backend_ms.{op}").observe(elapsed_ms)
        return result

    def insert_many(
        self, name: str, rows: Iterable[Mapping[str, Any]]
    ) -> List[int]:
        tids = self._timed("insert_many", self.inner.insert_many, name, rows)
        self.telemetry.inc("backend_rows.insert_many", len(tids))
        return tids

    def apply_delta_batch(self, name: str, batch: Any) -> None:
        self._timed("apply_delta_batch", self.inner.apply_delta_batch, name, batch)
        self.telemetry.inc("backend_rows.apply_delta_batch", batch.statement_count)

    def insert_row(
        self, name: str, row: Mapping[str, Any], tid: Optional[int] = None
    ) -> int:
        return self._timed("insert_row", self.inner.insert_row, name, row, tid)

    def delete_row(self, name: str, tid: int) -> None:
        self._timed("delete_row", self.inner.delete_row, name, tid)

    def update_row(self, name: str, tid: int, changes: Mapping[str, Any]) -> None:
        self._timed("update_row", self.inner.update_row, name, tid, changes)

    def add_relation(self, relation: Any, replace: bool = False) -> None:
        self._timed("add_relation", self.inner.add_relation, relation, replace)

    def create_relation(
        self,
        schema: Any,
        rows: Optional[Iterable[Mapping[str, Any]]] = None,
        replace: bool = False,
    ) -> None:
        self._timed("create_relation", self.inner.create_relation, schema, rows, replace)

    def drop_relation(self, name: str) -> None:
        self._timed("drop_relation", self.inner.drop_relation, name)

    def ensure_index(self, name: str, attributes: Sequence[str]) -> None:
        self._timed("ensure_index", self.inner.ensure_index, name, attributes)

    # -- concurrent serving --------------------------------------------------------

    def read_connection(
        self, snapshot: bool = False, timeout: Optional[float] = None
    ) -> Any:
        """Forward the read-pinning context to the wrapped backend.

        Explicit (rather than via ``__getattr__``) so the concurrent
        serving seam is a stated part of the proxy's contract: statements
        issued through the proxy inside the block still land on the
        pinned connection, because the proxy delegates ``execute`` to the
        same inner backend that did the pinning.
        """
        return self.inner.read_connection(snapshot=snapshot, timeout=timeout)

    def pool_stats(self) -> Dict[str, Any]:
        return self.inner.pool_stats()

    # -- lifecycle (dunder protocol lookups bypass __getattr__) ---------------------

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "InstrumentedBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# isinstance(backend, StorageBackend) must hold for the proxy: the detector
# and facade branch on it when deciding whether an argument is a backend.
StorageBackend.register(InstrumentedBackend)
