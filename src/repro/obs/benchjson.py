"""The persisted ``BENCH_*.json`` performance trajectory.

Every benchmark writes one schema-versioned JSON file under
``benchmarks/results/``; each run *appends* an entry to the file's
``trajectory`` list (bounded to the most recent :data:`MAX_TRAJECTORY`
entries), so the files accumulate a cross-PR record of how the system's
performance numbers move.  The schema:

.. code-block:: json

    {
      "schema_version": 1,
      "benchmark": "BATCH-RESIDENT",
      "trajectory": [
        {
          "recorded_at": 1754500000.0,
          "environment": {"python": "3.11.9", "platform": "...",
                           "sqlite": "3.40.1", "smoke": true},
          "series": [{"size": 1000, "detect_ms": 12.3}, ...],
          "metrics": {"plan_cache.hits": 42, ...}
        }
      ]
    }

``series`` is the benchmark's own row list (the same rows it prints via
``report_series``); ``metrics`` is a flat name → number mapping, typically
counter values from a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot.  The module lives in the library (not the benchmark harness) so
both the benchmarks and the CI validator import one schema definition.
"""

from __future__ import annotations

import json
import os
import platform
import re
import sqlite3
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

#: current schema version of the BENCH_*.json payload
SCHEMA_VERSION = 1

#: trajectory entries retained per file (oldest dropped first)
MAX_TRAJECTORY = 24

#: file-name prefix of every emitted trajectory file
BENCH_FILE_PREFIX = "BENCH_"


def bench_slug(name: str) -> str:
    """Benchmark name → file-name slug (``SQL-DELTA-PLANS`` → ``SQL_DELTA_PLANS``)."""
    slug = re.sub(r"[^A-Za-z0-9]+", "_", name).strip("_").upper()
    if not slug:
        raise ValueError(f"benchmark name {name!r} has no slug characters")
    return slug


def bench_file_name(name: str) -> str:
    """The trajectory file name for benchmark ``name``."""
    return f"{BENCH_FILE_PREFIX}{bench_slug(name)}.json"


def environment_info() -> Dict[str, Any]:
    """The environment fingerprint stamped on every trajectory entry."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "sqlite": sqlite3.sqlite_version,
        "smoke": bool(os.environ.get("BENCH_SMOKE")),
    }


def build_entry(
    series: Sequence[Dict[str, Any]],
    metrics: Optional[Dict[str, Any]] = None,
    environment: Optional[Dict[str, Any]] = None,
    recorded_at: Optional[float] = None,
) -> Dict[str, Any]:
    """One trajectory entry from a benchmark's series rows and counters."""
    return {
        "recorded_at": time.time() if recorded_at is None else float(recorded_at),
        "environment": environment_info() if environment is None else dict(environment),
        "series": [dict(row) for row in series],
        "metrics": dict(metrics or {}),
    }


def load_payload(path: str) -> Dict[str, Any]:
    """Parse one trajectory file (raises on unreadable/invalid JSON)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def append_entry(
    path: str,
    name: str,
    entry: Dict[str, Any],
    max_entries: int = MAX_TRAJECTORY,
) -> Dict[str, Any]:
    """Append ``entry`` to the trajectory at ``path``, creating the file.

    An existing file that fails to parse or validate — e.g. a truncated
    write from a killed run — is replaced by a fresh single-entry
    trajectory instead of poisoning every later benchmark run.  Returns
    the payload written.
    """
    payload: Optional[Dict[str, Any]] = None
    if os.path.exists(path):
        try:
            candidate = load_payload(path)
            if not validate_bench_payload(candidate, name=name):
                payload = candidate
        except (OSError, ValueError):
            payload = None
    if payload is None:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "benchmark": name,
            "trajectory": [],
        }
    payload["trajectory"].append(entry)
    payload["trajectory"] = payload["trajectory"][-max_entries:]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return payload


def validate_bench_payload(
    payload: Any, name: Optional[str] = None
) -> List[str]:
    """Schema-check one parsed payload; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {payload.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    benchmark = payload.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        problems.append("benchmark must be a non-empty string")
    elif name is not None and benchmark != name:
        problems.append(f"benchmark is {benchmark!r}, expected {name!r}")
    trajectory = payload.get("trajectory")
    if not isinstance(trajectory, list) or not trajectory:
        problems.append("trajectory must be a non-empty list")
        return problems
    for index, entry in enumerate(trajectory):
        label = f"trajectory[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{label} is not an object")
            continue
        if not isinstance(entry.get("recorded_at"), (int, float)):
            problems.append(f"{label}.recorded_at must be a number")
        if not isinstance(entry.get("environment"), dict):
            problems.append(f"{label}.environment must be an object")
        series = entry.get("series")
        if not isinstance(series, list) or not all(
            isinstance(row, dict) for row in series
        ):
            problems.append(f"{label}.series must be a list of objects")
        if not isinstance(entry.get("metrics"), dict):
            problems.append(f"{label}.metrics must be an object")
    return problems
