"""Nestable spans: the structural half of the telemetry layer.

A :class:`Tracer` records a forest of :class:`Span` objects — ``detect``
wrapping one span per CFD wrapping one span per executed statement — so a
snapshot shows *where* the wall time of an operation went, not just its
totals.  Spans close correctly on exceptions (the span is marked
``status="error"`` and still receives its duration), and both the root
list and each span's child list are bounded: a long-running monitor
session cannot grow the trace without limit, it just counts what it
dropped.

The open-span stack is **thread-local**: each serving-layer worker
thread nests its own spans under its own roots (a worker's ``detect``
span must not become a child of whatever span another thread happens to
have open).  The shared root list and drop counters are mutated under a
lock, so concurrent workers never lose or corrupt the forest.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List

#: default cap on retained root spans
MAX_ROOT_SPANS = 128
#: default cap on retained children per span
MAX_CHILD_SPANS = 64


class Span:
    """One timed operation, with tags and nested child spans."""

    __slots__ = ("name", "tags", "duration_ms", "status", "children", "dropped_children")

    def __init__(self, name: str, tags: Dict[str, Any]):
        self.name = name
        self.tags = tags
        self.duration_ms: float = 0.0
        self.status = "ok"
        self.children: List["Span"] = []
        self.dropped_children = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view of the span and its children (JSON-ready)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
            "status": self.status,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        if self.dropped_children:
            out["dropped_children"] = self.dropped_children
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f}ms, {self.status}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Records a bounded forest of nested spans."""

    def __init__(
        self,
        max_roots: int = MAX_ROOT_SPANS,
        max_children: int = MAX_CHILD_SPANS,
    ):
        self.max_roots = max_roots
        self.max_children = max_children
        self.roots: List[Span] = []
        self.dropped_roots = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def _stack(self) -> List[Span]:
        """This thread's open-span stack (created empty on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Span]:
        """Open a span; nests under the innermost open span of this tracer.

        The span always closes — on an exception it is marked
        ``status="error"``, receives its duration, and the exception
        propagates.  Dropped spans (past the retention caps) are still
        timed and yielded; they just do not appear in the snapshot beyond
        the parent's ``dropped_children`` count.
        """
        span = Span(name, tags)
        stack = self._stack
        if stack:
            # the parent span belongs to this thread alone: no lock needed
            parent = stack[-1]
            if len(parent.children) < self.max_children:
                parent.children.append(span)
            else:
                parent.dropped_children += 1
        else:
            with self._lock:
                if len(self.roots) < self.max_roots:
                    self.roots.append(span)
                else:
                    self.dropped_roots += 1
        stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.duration_ms = (time.perf_counter() - started) * 1000.0
            self._stack.pop()

    @property
    def depth(self) -> int:
        """Number of currently open spans on *this* thread (0 outside any)."""
        return len(self._stack)

    def reset(self) -> None:
        """Drop every recorded root span (open spans keep nesting correctly)."""
        with self._lock:
            self.roots = []
            self.dropped_roots = 0

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of the recorded span forest."""
        with self._lock:
            roots = list(self.roots)
            dropped = self.dropped_roots
        return {
            "roots": [span.to_dict() for span in roots],
            "dropped_roots": dropped,
        }
