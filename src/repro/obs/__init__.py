"""Observability: spans, metrics, statement instrumentation, plan capture.

A zero-dependency telemetry layer threaded through the whole stack.  One
:class:`Telemetry` object (built by the
:class:`~repro.system.semandaq.Semandaq` facade from
``SemandaqConfig(telemetry=..., explain_plans=..., log_sql=...)``) carries:

* a :class:`~repro.obs.trace.Tracer` of nestable spans
  (``detect`` → per-CFD → per-chunk statement);
* a :class:`~repro.obs.metrics.MetricsRegistry` of counters and
  histograms — per-statement-kind timings, plan-cache hits/misses,
  sync and DeltaBatch coalescing counters;
* opt-in ``EXPLAIN QUERY PLAN`` capture per distinct statement shape;
* opt-in DEBUG statement logging on the ``repro`` logger hierarchy.

:class:`InstrumentedBackend` is the proxy that wraps the storage backend
when any concern is active; :data:`NULL_TELEMETRY` is the shared disabled
default, so the un-instrumented path costs nothing measurable.
:mod:`repro.obs.benchjson` defines the schema of the persisted
``BENCH_*.json`` performance-trajectory files the benchmarks emit.
"""

from .instrument import InstrumentedBackend
from .metrics import Counter, Histogram, MetricsRegistry
from .telemetry import NULL_TELEMETRY, Telemetry
from .trace import Span, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "InstrumentedBackend",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "Span",
    "Telemetry",
    "Tracer",
]
