"""The telemetry context threaded through the whole stack.

One :class:`Telemetry` object travels from the :class:`~repro.system.semandaq.Semandaq`
facade down through the detectors, the SQL generator and the instrumented
storage backend.  It bundles three independently switchable concerns:

* ``enabled`` — spans (:class:`~repro.obs.trace.Tracer`) and metrics
  (:class:`~repro.obs.metrics.MetricsRegistry`): per-statement-kind timing
  histograms, plan-cache hit/miss counters, sync and DeltaBatch counters;
* ``explain_plans`` — capture ``EXPLAIN QUERY PLAN`` output per distinct
  statement shape through the backend's
  :meth:`~repro.backends.base.StorageBackend.explain_query_plan` hook,
  flagging index usage;
* ``log_sql`` — DEBUG-level statement logging on the ``repro`` logger
  hierarchy.

The module-level :data:`NULL_TELEMETRY` singleton is the disabled default
every component falls back to, so the un-instrumented path pays one
attribute check (``telemetry.enabled`` / ``telemetry.active``) and nothing
else — no spans, no registry lookups, no wrapper objects.

Statement *kinds* (``q_c``, ``q_v``, ``covering_members``,
``delta_single``, ...) are carried by the generated
:class:`~repro.detection.sqlgen.SqlQuery` objects and announced to the
instrumented backend through the :meth:`Telemetry.tag_statements` hint,
because the backend's ``execute`` only ever sees SQL text.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from .metrics import MetricsRegistry
from .trace import Tracer

#: statement kind reported when no generator tagged the running statement
UNTAGGED_KIND = "adhoc"

#: plan-detail substrings that mean SQLite drove the probe through an index
_INDEX_MARKERS = ("USING INDEX", "USING COVERING INDEX", "USING INTEGER PRIMARY KEY")


class _NullSpan:
    """The shared no-op span context the disabled path hands out."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Spans, metrics, statement tagging and plan capture for one system."""

    def __init__(
        self,
        enabled: bool = False,
        explain_plans: bool = False,
        log_sql: bool = False,
    ):
        self.enabled = enabled
        self.explain_plans = explain_plans
        self.log_sql = log_sql
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        #: captured EXPLAIN QUERY PLAN output, one entry per distinct SQL text
        self._plans: Dict[str, Dict[str, Any]] = {}
        self._plans_lock = threading.Lock()
        #: statement-kind hint for the next backend ``execute`` calls (set
        #: by the detectors around each generated query).  Thread-local:
        #: a serving-layer worker's tag must not leak into statements other
        #: threads are executing concurrently.
        self._local = threading.local()

    @property
    def _kind_hint(self) -> Optional[str]:
        return getattr(self._local, "kind_hint", None)

    @_kind_hint.setter
    def _kind_hint(self, value: Optional[str]) -> None:
        self._local.kind_hint = value

    # -- activity --------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any concern is on (i.e. the backend needs instrumenting)."""
        return self.enabled or self.explain_plans or self.log_sql

    # -- spans ------------------------------------------------------------------

    def span(self, name: str, **tags: Any):
        """A span context under the tracer; a shared no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, **tags)

    # -- metrics ----------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``; free when telemetry is disabled."""
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation; free when disabled."""
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def record_statement(
        self, kind: str, duration_ms: float, rows: int, params: int
    ) -> None:
        """Record one executed statement's duration, result size and arity."""
        if not self.enabled:
            return
        self.metrics.histogram(f"statement_ms.{kind}").observe(duration_ms)
        self.metrics.counter(f"statement_rows.{kind}").inc(rows)
        self.metrics.counter(f"statement_params.{kind}").inc(params)
        self.metrics.counter("statements").inc()

    # -- statement tagging -------------------------------------------------------

    @contextmanager
    def tag_statements(self, kind: Optional[str]) -> Iterator[None]:
        """Tag backend statements executed inside the block with ``kind``.

        The detectors wrap each generated query's execution in this, so the
        instrumented backend can attribute the statement to its generator
        kind (``q_c``, ``delta_multi``, ...).  A ``None`` kind keeps the
        surrounding hint.
        """
        previous = self._kind_hint
        if kind is not None:
            self._kind_hint = kind
        try:
            yield
        finally:
            self._kind_hint = previous

    def statement_kind(self) -> str:
        """The kind of the statement about to execute (``adhoc`` untagged)."""
        return self._kind_hint or UNTAGGED_KIND

    # -- plan capture -------------------------------------------------------------

    def capture_plan(
        self,
        backend: Any,
        sql: str,
        parameters: Optional[Sequence[Any]],
        kind: str,
    ) -> None:
        """Capture the backend's query plan for ``sql``, once per SQL text.

        Backends without plan introspection return ``None`` from
        :meth:`~repro.backends.base.StorageBackend.explain_query_plan`;
        nothing is recorded for them.  ``uses_index`` is derived from the
        SQLite plan-detail text, so the sargability of a statement shape
        becomes a testable property.
        """
        if sql in self._plans:
            return
        detail = backend.explain_query_plan(sql, parameters)
        if detail is None:
            return
        detail_text = " ".join(
            str(value) for row in detail for value in row.values()
        ).upper()
        entry = {
            "kind": kind,
            "sql": sql,
            "detail": detail,
            "uses_index": any(marker in detail_text for marker in _INDEX_MARKERS),
        }
        with self._plans_lock:
            self._plans.setdefault(sql, entry)

    @property
    def plans(self) -> List[Dict[str, Any]]:
        """Captured plans in capture order (one per distinct SQL text)."""
        with self._plans_lock:
            return list(self._plans.values())

    def plans_for(self, kind: str) -> List[Dict[str, Any]]:
        """Captured plans whose statements the generator tagged ``kind``."""
        with self._plans_lock:
            return [plan for plan in self._plans.values() if plan["kind"] == kind]

    # -- snapshot ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop every recorded metric, span and plan (flags unchanged)."""
        self.tracer.reset()
        self.metrics.reset()
        with self._plans_lock:
            self._plans.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of everything recorded so far (JSON-ready)."""
        metrics = self.metrics.snapshot()
        return {
            "enabled": self.enabled,
            "counters": metrics["counters"],
            "histograms": metrics["histograms"],
            "spans": self.tracer.snapshot(),
            "plans": self.plans,
        }


#: the shared disabled instance every un-instrumented component defaults to
NULL_TELEMETRY = Telemetry()
