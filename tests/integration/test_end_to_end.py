"""End-to-end integration tests across datasets and components."""

import pytest

from repro import Semandaq, SemandaqConfig
from repro.core.satisfaction import satisfies_all
from repro.datasets import (
    generate_hospital,
    generate_orders,
    hospital_cfds,
    inject_noise,
    orders_cfds,
)
from repro.monitor.updates import Update
from repro.repair.repairer import repair_quality


class TestHospitalWorkflow:
    def test_detect_audit_repair_on_hospital_data(self):
        clean = generate_hospital(250, seed=101)
        noise = inject_noise(
            clean, rate=0.03, seed=102,
            attributes=["STATE", "CITY", "MEASURE_NAME", "CONDITION"], kinds=("swap",),
        )
        semandaq = Semandaq()
        semandaq.register_relation(noise.dirty)
        semandaq.add_cfds(hospital_cfds())
        report = semandaq.detect("hospital")
        assert not report.is_clean()
        audit = semandaq.audit("hospital")
        assert audit.dirty_percentage() > 0
        repair = semandaq.repair("hospital")
        quality = repair_quality(repair, clean, noise.dirty)
        assert quality["precision"] > 0.5
        semandaq.apply_repair("hospital")
        assert semandaq.detect("hospital").total_violations() < report.total_violations()

    def test_discovery_recovers_hospital_dependencies(self):
        reference = generate_hospital(200, seed=103)
        semandaq = Semandaq()
        semandaq.register_relation(reference)
        discovered = semandaq.discover_cfds(
            reference, register=False, min_support=10, max_lhs_size=1,
            include_constant=False,
        )
        fds = {(cfd.lhs, cfd.rhs) for cfd in discovered}
        assert (("MEASURE_CODE",), ("MEASURE_NAME",)) in fds
        assert (("ZIP",), ("STATE",)) in fds


class TestOrdersWorkflow:
    def test_monitor_keeps_order_feed_clean(self):
        clean = generate_orders(200, seed=111)
        semandaq = Semandaq()
        semandaq.register_relation(clean)
        semandaq.add_cfds(orders_cfds())
        assert semandaq.detect("orders").is_clean()

        monitor = semandaq.monitor("orders", cleansed=True)
        bad_order = dict(clean.get(0))
        bad_order["ORDER_ID"] = "O999999"
        bad_order["CURRENCY"] = "XXX"  # clashes with COUNTRY -> CURRENCY
        monitor.apply_batch([Update.insert(bad_order)])
        relation = semandaq.database.relation("orders")
        assert satisfies_all(relation, orders_cfds())
        assert monitor.summary()["incremental_repairs"] == 1

    def test_constant_cfd_violations_detected_per_country(self):
        clean = generate_orders(150, seed=112)
        dirty = inject_noise(clean, rate=0.05, seed=113, attributes=["CURRENCY"], kinds=("swap",)).dirty
        semandaq = Semandaq()
        semandaq.register_relation(dirty)
        semandaq.add_cfds(orders_cfds())
        report = semandaq.detect("orders")
        violated = {v.cfd_id for v in report.violations}
        assert "ord1" in violated  # COUNTRY -> CURRENCY


class TestConfigurationMatrix:
    @pytest.mark.parametrize("use_sql", [True, False])
    @pytest.mark.parametrize("strategy", ["linear", "quantile"])
    def test_pipeline_under_different_configurations(self, use_sql, strategy):
        clean = generate_orders(100, seed=121)
        dirty = inject_noise(clean, rate=0.05, seed=122, attributes=["CURRENCY", "REGION"]).dirty
        semandaq = Semandaq(SemandaqConfig(use_sql_detection=use_sql, quality_strategy=strategy))
        semandaq.register_relation(dirty)
        semandaq.add_cfds(orders_cfds())
        summary = semandaq.clean("orders")
        assert summary["violations_after"] <= summary["violations_before"]
