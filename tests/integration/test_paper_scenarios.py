"""Integration tests replaying the demo scenarios of the paper (Figs. 2-5).

Each test corresponds to one demo walkthrough and asserts the *content* that
the corresponding screenshot illustrates, end to end through the public
Semandaq API.
"""

import pytest

from repro import Semandaq
from repro.audit.metrics import Cleanliness
from repro.core.satisfaction import satisfies_all
from repro.datasets import paper_cfds, paper_example_relation


@pytest.fixture
def demo_system():
    semandaq = Semandaq()
    semandaq.register_relation(paper_example_relation())
    semandaq.add_cfds(paper_cfds())
    semandaq.detect("customer")
    return semandaq


class TestFig2DataExploration:
    """Fig. 2: select an FD, a pattern tuple, an LHS match, then RHS values."""

    def test_drill_down_reaches_the_conflicting_streets(self, demo_system):
        session = demo_system.exploration_session("customer")
        # Left table: the CFDs, with violation counts guiding the user to phi2.
        cfd_options = {option.cfd_id: option for option in session.options()}
        assert cfd_options["phi2"].violating_tuples > 0
        # Second table: phi2's pattern tuples ([UK, _, _]).
        patterns = session.select("phi2")
        assert patterns[0].rendered["CNT"] == "'UK'"
        # Third table: LHS matches; the violating UK postcode is ranked first.
        lhs_matches = session.select(patterns[0])
        assert lhs_matches[0].lhs_values == ("UK", "EH4 1DT")
        assert lhs_matches[0].violating_tuples == 2
        # Fourth table: the distinct RHS (street) values for that postcode.
        rhs_values = session.select(lhs_matches[0])
        assert {entry.value for entry in rhs_values} == {"Mayfield Rd", "Crichton St"}
        # Final step: the tuples carrying one of the conflicting values.
        tuples = session.select(rhs_values[0])
        assert len(tuples) == 1

    def test_reverse_exploration_explains_why_a_tuple_is_dirty(self, demo_system):
        explorer = demo_system.explorer("customer")
        explanation = explorer.explain_tuple(4)  # Anna
        violated = {entry["cfd"] for entry in explanation["relevant_cfds"] if entry["violated"]}
        assert "phi4" in violated and "phi3" in violated
        assert explanation["vio"] == 4


class TestFig3QualityMap:
    """Fig. 3: per-tuple vio(t) shown as a colour map."""

    def test_quality_map_shades_track_vio(self, demo_system):
        audit = demo_system.audit("customer")
        quality_map = audit.quality_map
        report = demo_system.last_report("customer")
        vio = report.vio()
        # Clean tuples are in the lightest bucket, the dirtiest tuple in the darkest used.
        assert quality_map.bucket_of(2) == 0
        dirtiest_tid = max(vio, key=vio.get)
        assert quality_map.bucket_of(dirtiest_tid) == max(quality_map.buckets.values())
        # Monotone: more violations never means a lighter shade.
        for tid_a in vio:
            for tid_b in vio:
                if vio[tid_a] > vio[tid_b]:
                    assert quality_map.bucket_of(tid_a) >= quality_map.bucket_of(tid_b)


class TestFig4QualityReport:
    """Fig. 4: verified/probably/arguably clean percentages and the violations pie."""

    def test_report_reproduces_categories(self, demo_system):
        audit = demo_system.audit("customer")
        pie = audit.pie_chart()
        assert pie[Cleanliness.VERIFIED.value] == 2   # Joe, Mary
        assert pie[Cleanliness.ARGUABLY.value] == 1   # Bob
        assert pie[Cleanliness.DIRTY.value] == 3      # Mike, Rick, Anna
        bar = audit.bar_chart()
        # STR is the dirtiest attribute in the bar chart.
        assert audit.worst_attributes(top=1)[0][0] == "STR"
        assert set(bar) == set(paper_example_relation().attribute_names)

    def test_statistics_summarise_multi_tuple_violations(self, demo_system):
        audit = demo_system.audit("customer")
        assert audit.statistics["multi_violations"] == 2
        assert audit.statistics["max_group_size"] == 4


class TestFig5CleansingReview:
    """Fig. 5: modified values highlighted, alternatives ranked, user edits re-checked."""

    def test_review_cycle(self, demo_system):
        repair = demo_system.repair("customer")
        review = demo_system.review("customer")
        # Modified values are tracked per tuple, like the red highlights.
        assert set(review.modified_tuples()) == repair.changed_tids()
        # Each modified cell with alternatives ranks them by cost.
        for change in review.modified_cells():
            costs = [cost for _value, cost in change.alternatives]
            assert costs == sorted(costs)
        # The user overrides one change; the system immediately reports the
        # conflicts that the new value (re-)introduces.
        street_changes = [c for c in review.modified_cells() if c.attribute == "STR"]
        if street_changes:
            change = street_changes[0]
            conflicts = review.override(change.tid, change.attribute, change.old_value)
            assert any(note.kind == "multi" for note in conflicts)
        # Accepting the repair and applying it leaves a consistent database.
        demo_system.apply_repair("customer")
        relation = demo_system.database.relation("customer")
        assert satisfies_all(relation, paper_cfds())
        assert demo_system.detect("customer").is_clean()
