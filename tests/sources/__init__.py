"""Test package (keeps same-named test modules importable side by side)."""
