"""Property: the backend tuple source is observationally identical to the
native oracle on every protocol method.

The audit/explorer/repair refactors all sit on :class:`TupleSource`, so
the read layer's correctness reduces to this one statement: for *any*
relation (NULL cells included) and *any* CFD, every protocol answer of
``BackendTupleSource`` — row counts, fetched rows, value frequencies,
group aggregates, per-pattern applicability histograms, applicable-tuple
counts and keyset pages under every RHS filter — equals the
``NativeTupleSource`` scan, on both storage backends and under a
parameter budget small enough to force chunked plans.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.parser import parse_cfd
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.sources import (
    NO_RHS_FILTER,
    BackendTupleSource,
    NativeTupleSource,
)

ATTRIBUTES = ["A", "B", "C", "D"]

cell_value = st.sampled_from(["a", "b", None])
pattern_value = st.sampled_from(["_", "a", "b"])
row_strategy = st.fixed_dictionaries({name: cell_value for name in ATTRIBUTES})

BACKENDS = {
    "memory": MemoryBackend,
    "sqlite": SqliteBackend,
    # a parameter budget this small forces every key/tid restriction
    # through the chunked multi-statement paths
    "sqlite-chunked": lambda: SqliteBackend(max_parameters=4),
}


def _draw_cfd(data, index):
    lhs = data.draw(
        st.lists(st.sampled_from(ATTRIBUTES), min_size=1, max_size=2, unique=True)
    )
    remaining = [name for name in ATTRIBUTES if name not in lhs]
    rhs = data.draw(st.sampled_from(remaining))
    patterns = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=2))):
        rendered = []
        for name in lhs:
            value = data.draw(pattern_value)
            rendered.append(f"{name}={value}" if value == "_" else f"{name}='{value}'")
        patterns.append(f"[{', '.join(rendered)}] -> [{rhs}=_]")
    return parse_cfd(f"r: {' ; '.join(patterns)}", name=f"cfd{index}")


def _group_keys(relation, cfd):
    """Every distinct NULL-free LHS key, plus one key no tuple carries."""
    keys = set()
    for _tid, row in relation.rows():
        key = tuple(row.get(attr) for attr in cfd.lhs)
        if None not in key:
            keys.add(key)
    return sorted(keys) + [tuple("z" for _ in cfd.lhs)]


def _drain_pages(source, page_size, **filters):
    rows = []
    after_tid = -1
    while True:
        page = source.page(after_tid=after_tid, page_size=page_size, **filters)
        rows.extend(page)
        if len(page) < page_size:
            return rows
        after_tid = page[-1][0]


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_backend_source_matches_native_oracle(backend_name, data):
    rows = data.draw(st.lists(row_strategy, min_size=1, max_size=12))
    cfd = _draw_cfd(data, 0)
    rhs_attribute = cfd.rhs[0]
    page_size = data.draw(st.integers(min_value=1, max_value=5))

    schema = RelationSchema.of("r", ATTRIBUTES)
    relation = Relation.from_rows(schema, rows)
    native = NativeTupleSource(relation)

    backend = BACKENDS[backend_name]()
    try:
        backend.add_relation(relation.copy())
        source = BackendTupleSource(backend, "r")

        assert source.row_count() == native.row_count()
        assert source.attribute_names() == native.attribute_names()
        assert source.schema().attribute_names == schema.attribute_names

        tids = list(range(len(rows))) + [len(rows) + 7]  # one missing tid
        assert source.fetch_rows(tids) == native.fetch_rows(tids)
        assert source.fetch_rows([]) == {}

        assert source.value_frequencies() == native.value_frequencies()

        keys = _group_keys(relation, cfd)
        assert source.group_member_counts(
            cfd, rhs_attribute, keys
        ) == native.group_member_counts(cfd, rhs_attribute, keys)
        assert sorted(
            source.covering_member_tids(cfd, rhs_attribute, keys)
        ) == sorted(native.covering_member_tids(cfd, rhs_attribute, keys))
        assert source.majority_values(
            cfd, rhs_attribute, keys
        ) == native.majority_values(cfd, rhs_attribute, keys)

        for index in range(len(cfd.patterns)):
            assert source.pattern_group_freq(cfd, index) == native.pattern_group_freq(
                cfd, index
            )

        subs = tuple(cfd.normalize())
        assert source.applicable_count(subs) == native.applicable_count(subs)
        assert source.applicable_count([]) == 0

        assert _drain_pages(source, page_size) == _drain_pages(native, page_size)
        for key in keys[:3]:
            for rhs_value in (NO_RHS_FILTER, None, "a"):
                assert _drain_pages(
                    source, page_size, cfd=cfd, lhs_values=key, rhs_value=rhs_value
                ) == _drain_pages(
                    native, page_size, cfd=cfd, lhs_values=key, rhs_value=rhs_value
                )

        assert source.last_sql  # every answer above was a pushed-down statement
    finally:
        backend.close()
