"""Plan-shape tests for the tuple-source aggregate plans.

``majority_value`` / ``attr_freq`` / ``page_fetch`` are the three statement
kinds the shared read layer (``repro.sources``) adds on top of the repair
split's ``value_freq``/``group_stats``/``covering_members``/``row_fetch``:
the resident auditor's applicability counts, the explorer's drill-down
histograms and the keyset-paged tuple listings all compile to them.  The
end-to-end contract lives in ``test_tuple_source.py`` (oracle parity) and
the audit/explorer forbidden-read pins; here the generated SQL itself is
pinned — shapes, plan caching, validation and budget chunking.
"""

import pytest

from repro.backends.sqlite import SqliteBackend
from repro.core.cfd import CFD
from repro.core.parser import parse_cfd
from repro.core.pattern import PatternTuple
from repro.detection.sqlgen import DetectionSqlGenerator
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema


def _schema():
    return RelationSchema.of("r", ["A", "B", "C"])


def _relation(rows):
    return Relation.from_rows(_schema(), rows)


def _sqlite_with(rows, **options):
    backend = SqliteBackend(**options)
    backend.add_relation(_relation(rows))
    return backend


def _constant_only():
    return CFD(
        relation="r", lhs=(), rhs=("B",), patterns=(PatternTuple.of({"B": "x"}),)
    )


class TestMajorityValueQuery:
    def test_shape_and_cache(self):
        generator = DetectionSqlGenerator(_schema())
        cfd = parse_cfd("r: [A=_, B=_] -> [C=_]")
        query = generator.majority_value_query(cfd, "C", 2)
        assert query.kind == "majority_value"
        assert query.rhs_attribute == "C"
        assert "GROUP BY" in query.sql
        assert "AS value" in query.sql and "COUNT(*) AS freq" in query.sql
        assert "lhs_A" in query.sql and "lhs_B" in query.sql
        assert generator.majority_value_query(cfd, "C", 2) is query
        assert generator.majority_value_query(cfd, "C", 3) is not query

    def test_keeps_the_null_bucket(self):
        # no RHS IS NOT NULL guard: the NULL bucket is part of the histogram
        generator = DetectionSqlGenerator(_schema())
        cfd = parse_cfd("r: [A=_] -> [C=_]")
        query = generator.majority_value_query(cfd, "C", 1)
        assert "t.C IS NOT NULL" not in query.sql

    def test_validation(self):
        generator = DetectionSqlGenerator(_schema())
        cfd = parse_cfd("r: [A=_] -> [C=_]")
        with pytest.raises(ValueError, match="at least 1"):
            generator.majority_value_query(cfd, "C", 0)
        with pytest.raises(ValueError, match="non-empty LHS"):
            generator.majority_value_query(_constant_only(), "B", 1)

    def test_plans_chunk_to_the_parameter_budget(self):
        rows = [
            {"A": f"a{i}", "B": f"b{i}", "C": "x" if i % 2 else None}
            for i in range(9)
        ]
        backend = _sqlite_with(rows, max_parameters=8)
        try:
            generator = DetectionSqlGenerator(
                backend.schema("r"), dialect=backend.dialect
            )
            cfd = parse_cfd("r: [A=_, B=_] -> [C=_]")
            keys = [(f"a{i}", f"b{i}") for i in range(9)]
            plans = generator.majority_value_plans(cfd, "C", keys)
            assert len(plans) == 3  # 4 + 4 + 1 keys at 2 params per key
            assert all(len(plan.parameters) <= 8 for plan in plans)
            histogram = {}
            for plan in plans:
                for row in backend.execute(plan.sql, plan.parameters):
                    key = (row["lhs_A"], row["lhs_B"])
                    histogram.setdefault(key, {})[row["value"]] = row["freq"]
            assert histogram == {
                (f"a{i}", f"b{i}"): {("x" if i % 2 else None): 1} for i in range(9)
            }
        finally:
            backend.close()

    def test_plans_empty_for_no_keys(self):
        generator = DetectionSqlGenerator(_schema())
        cfd = parse_cfd("r: [A=_] -> [C=_]")
        assert generator.majority_value_plans(cfd, "C", []) == []


class TestAttrFreqQuery:
    def test_shape_and_cache(self):
        generator = DetectionSqlGenerator(_schema())
        cfd = parse_cfd("r: [A=_, B=_] -> [C=_]")
        query = generator.attr_freq_query(cfd, 0)
        assert query.kind == "attr_freq"
        assert query.pattern_index == 0
        assert "GROUP BY" in query.sql
        assert "lhs_A" in query.sql and "COUNT(*) AS freq" in query.sql
        assert "IS NOT NULL" in query.sql  # wildcard positions guard non-NULL
        assert generator.attr_freq_query(cfd, 0) is query

    def test_pattern_constants_restrict_the_scan(self):
        generator = DetectionSqlGenerator(_schema())
        cfd = parse_cfd("r: [A='x', B=_] -> [C=_] ; [A=_, B=_] -> [C=_]")
        constant = generator.attr_freq_query(cfd, 0)
        wildcard = generator.attr_freq_query(cfd, 1)
        assert constant is not wildcard
        # the memory dialect inlines pattern constants
        assert "'x'" in constant.sql
        assert "'x'" not in wildcard.sql

    def test_validation(self):
        generator = DetectionSqlGenerator(_schema())
        with pytest.raises(ValueError, match="non-empty LHS"):
            generator.attr_freq_query(_constant_only(), 0)


class TestApplicableQueries:
    def _subs(self, *specs):
        subs = []
        for index, spec in enumerate(specs):
            subs.extend(parse_cfd(f"r: {spec}", name=f"sub{index}").normalize())
        return tuple(subs)

    def test_count_query_shape_and_cache(self):
        generator = DetectionSqlGenerator(_schema())
        subs = self._subs("[A='a'] -> [C='c']", "[B='b'] -> [C='c']")
        query = generator.applicable_count_query(subs)
        assert query.kind == "attr_freq"
        assert "COUNT(*) AS freq" in query.sql
        assert " OR " in query.sql  # one disjunct per sub-CFD
        assert generator.applicable_count_query(subs) is query

    def test_tids_query_shape(self):
        generator = DetectionSqlGenerator(_schema())
        subs = self._subs("[A='a'] -> [C='c']")
        query = generator.applicable_tids_query(subs)
        assert "t._tid AS tid" in query.sql
        assert "COUNT" not in query.sql

    def test_validation(self):
        generator = DetectionSqlGenerator(_schema())
        with pytest.raises(ValueError, match="at least one sub-CFD"):
            generator.applicable_count_query(())
        with pytest.raises(ValueError, match="at least one sub-CFD"):
            generator.applicable_tids_query(())

    def test_chunks_follow_the_parameter_budget(self):
        backend = _sqlite_with([], max_parameters=8)
        try:
            generator = DetectionSqlGenerator(
                backend.schema("r"), dialect=backend.dialect
            )
            # each sub binds two pattern constants; 5 subs = 10 > 8
            subs = self._subs(
                *[f"[A='a{i}', B='b{i}'] -> [C=_]" for i in range(5)]
            )
            chunks = generator.applicable_sub_chunks(subs)
            assert [len(chunk) for chunk in chunks] == [4, 1]
            assert [sub for chunk in chunks for sub in chunk] == list(subs)
        finally:
            backend.close()

    def test_chunks_are_single_on_the_memory_dialect(self):
        # no parameter channel: constants are inlined, only the OR-term cap
        # bounds a chunk
        generator = DetectionSqlGenerator(_schema())
        subs = self._subs(*[f"[A='a{i}'] -> [C=_]" for i in range(10)])
        assert generator.applicable_sub_chunks(subs) == [subs]


class TestPageFetchQuery:
    def test_unrestricted_shape_and_cache(self):
        generator = DetectionSqlGenerator(_schema())
        query = generator.page_fetch_query(page_size=50)
        assert query.kind == "page_fetch"
        assert "t._tid > ?" in query.sql
        assert "ORDER BY t._tid" in query.sql
        assert "LIMIT 50" in query.sql
        assert "t._tid AS tid" in query.sql
        assert generator.page_fetch_query(page_size=50) is query
        assert generator.page_fetch_query(page_size=25) is not query

    def test_group_and_rhs_restrictions(self):
        generator = DetectionSqlGenerator(_schema())
        cfd = parse_cfd("r: [A=_] -> [C=_]")
        grouped = generator.page_fetch_query(cfd, page_size=10)
        assert "t.A" in grouped.sql
        eq = generator.page_fetch_query(
            cfd, rhs_attribute="C", rhs_filter="eq", page_size=10
        )
        assert "t.C = ?" in eq.sql
        null = generator.page_fetch_query(
            cfd, rhs_attribute="C", rhs_filter="null", page_size=10
        )
        assert "t.C IS NULL" in null.sql

    def test_validation(self):
        generator = DetectionSqlGenerator(_schema())
        cfd = parse_cfd("r: [A=_] -> [C=_]")
        with pytest.raises(ValueError, match="at least 1"):
            generator.page_fetch_query(page_size=0)
        with pytest.raises(ValueError, match="unknown rhs_filter"):
            generator.page_fetch_query(cfd, rhs_attribute="C", rhs_filter="lt")
        with pytest.raises(ValueError, match="needs an rhs_attribute"):
            generator.page_fetch_query(cfd, rhs_filter="eq")
