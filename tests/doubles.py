"""Shared test doubles pinning the backend-resident detection *and repair* contract.

Two stand-ins enforce "zero working-store reads" from opposite sides:

* :class:`ForbiddenRelation` replaces an in-memory
  :class:`~repro.engine.relation.Relation` — any attribute access fails the
  test.  Used against the incremental detector's ``report()`` and, since
  PR 7, swapped into ``Database._relations`` to pin that the
  backend-resident ``repair()`` plans without ever touching the working
  relation;
* :class:`ForbiddenReadBackend` wraps a real
  :class:`~repro.backends.base.StorageBackend` and fails the test on any
  *row-shipping* read (``to_relation`` / ``get_row`` / ``iter_rows``) while
  delegating catalog ops, query execution and writes — the batch detector
  must run ``detect`` / ``detect_for_tuples`` through it untouched, on
  every backend, and the backend-resident repair path
  (``clean()`` / ``apply_repair``) must do the same.
"""

from __future__ import annotations

from repro.backends.base import StorageBackend


class ForbiddenRelation:
    """A stand-in that fails the test on any working-store access.

    The dunder hooks Python resolves on the *type* (``len``, ``in``,
    iteration) are spelled out explicitly — ``__getattr__`` alone would
    let ``tid in relation`` surface as a ``TypeError`` instead of the
    diagnostic assertion.
    """

    def __init__(self, name):
        self._name = name

    def _forbidden(self, access):
        raise AssertionError(
            f"working store was read: {access} on forbidden relation {self._name!r}"
        )

    def __getattr__(self, attribute):
        self._forbidden(f"{self._name}.{attribute}")

    def __len__(self):
        self._forbidden(f"len({self._name})")

    def __contains__(self, tid):
        self._forbidden(f"{tid} in {self._name}")

    def __iter__(self):
        self._forbidden(f"iter({self._name})")


class ForbiddenReadBackend(StorageBackend):
    """Delegating backend wrapper that forbids row-shipping reads.

    ``schema``/``row_count`` stay allowed — the paper's pushdown needs the
    catalog, not the rows — as do ``execute`` (the queries run *inside*
    the backend) and the write/catalog ops the detector uses to
    materialise tableaux and indexes.
    """

    def __init__(self, inner: StorageBackend):
        self.inner = inner
        self.name = inner.name
        self.dialect = inner.dialect

    def _forbidden(self, what: str):
        raise AssertionError(f"detection read the working store: {what}")

    # -- forbidden row reads ---------------------------------------------------

    def to_relation(self, name):
        self._forbidden(f"to_relation({name!r})")

    def get_row(self, name, tid):
        self._forbidden(f"get_row({name!r}, {tid})")

    def iter_rows(self, name):
        self._forbidden(f"iter_rows({name!r})")

    # -- delegated catalog / write / query ops ---------------------------------

    def create_relation(self, schema, rows=None, replace=False):
        return self.inner.create_relation(schema, rows=rows, replace=replace)

    def add_relation(self, relation, replace=False):
        return self.inner.add_relation(relation, replace=replace)

    def drop_relation(self, name):
        return self.inner.drop_relation(name)

    def has_relation(self, name):
        return self.inner.has_relation(name)

    def relation_names(self):
        return self.inner.relation_names()

    def schema(self, name):
        return self.inner.schema(name)

    def insert_many(self, name, rows):
        return self.inner.insert_many(name, rows)

    def insert_row(self, name, row, tid=None):
        return self.inner.insert_row(name, row, tid=tid)

    def delete_row(self, name, tid):
        return self.inner.delete_row(name, tid)

    def update_row(self, name, tid, changes):
        return self.inner.update_row(name, tid, changes)

    def apply_delta_batch(self, name, batch):
        return self.inner.apply_delta_batch(name, batch)

    def row_count(self, name):
        return self.inner.row_count(name)

    def execute(self, sql, parameters=None):
        return self.inner.execute(sql, parameters)

    def ensure_index(self, name, attributes):
        return self.inner.ensure_index(name, attributes)

    def close(self):
        return self.inner.close()
