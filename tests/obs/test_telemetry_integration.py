"""End-to-end telemetry through the Semandaq facade on the SQLite backend."""

import logging

from repro import Semandaq, SemandaqConfig
from repro.obs import InstrumentedBackend


def _sqlite_system(customer_relation, customer_cfds, **flags):
    semandaq = Semandaq(SemandaqConfig(backend="sqlite", **flags))
    semandaq.register_relation(customer_relation)
    semandaq.add_cfds(customer_cfds)
    return semandaq


class TestDisabledDefault:
    def test_backend_not_wrapped_and_metrics_empty(self, customer_relation, customer_cfds):
        semandaq = _sqlite_system(customer_relation, customer_cfds)
        try:
            assert not isinstance(semandaq.backend, InstrumentedBackend)
            assert not semandaq.telemetry.active
            semandaq.detect("customer")
            snapshot = semandaq.metrics()
            assert snapshot["enabled"] is False
            assert snapshot["counters"] == {}
            assert snapshot["histograms"] == {}
            assert snapshot["plans"] == []
        finally:
            semandaq.close()


class TestEnabledMetrics:
    def test_detect_records_per_kind_histograms_and_counters(
        self, customer_relation, customer_cfds
    ):
        # pin the legacy plan family explicitly: this test is about the
        # classic Q_C/Q_V/covering-members statement kinds
        semandaq = _sqlite_system(
            customer_relation, customer_cfds, telemetry=True, detect_plan="legacy"
        )
        try:
            assert isinstance(semandaq.backend, InstrumentedBackend)
            report = semandaq.detect("customer")
            assert report.total_violations() >= 3
            snapshot = semandaq.metrics()
            assert snapshot["enabled"] is True
            # per-kind statement timings: the paper example exercises the
            # constant (Q_C), variable (Q_V) and member-enumeration shapes
            for kind in ("q_c", "q_v", "covering_members"):
                histogram = snapshot["histograms"][f"statement_ms.{kind}"]
                assert histogram["count"] >= 1
                assert histogram["total"] >= 0.0
                assert snapshot["counters"][f"statement_params.{kind}"] >= 0
            assert snapshot["counters"]["statements"] >= 3
            assert snapshot["counters"]["statement_rows.covering_members"] >= 2
            # plan-cache accounting: a cold detect compiles every plan
            assert snapshot["counters"]["plan_cache.misses"] >= 1
            assert snapshot["counters"]["detect.plan_variant.legacy"] >= 1
            # one bulk load shipped the relation into the backend
            assert snapshot["counters"]["sync.full"] >= 1
            # backend write instrumentation saw the bulk load and the
            # tableau materialisations
            assert snapshot["histograms"]["backend_ms.add_relation"]["count"] >= 1
        finally:
            semandaq.close()

    def test_detect_records_one_pass_kinds_under_auto(
        self, customer_relation, customer_cfds
    ):
        # auto on a modern SQLite resolves to the window family: sargable
        # Q_C plus the one-pass Q_V, no covering-members round trip
        # (detect_plan pinned so the SEMANDAQ_DETECT_PLAN CI leg cannot
        # flip the default under this test)
        semandaq = _sqlite_system(
            customer_relation, customer_cfds, telemetry=True, detect_plan="auto"
        )
        try:
            report = semandaq.detect("customer")
            assert report.total_violations() >= 3
            snapshot = semandaq.metrics()
            for kind in ("q_c_sargable", "q_window"):
                assert snapshot["histograms"][f"statement_ms.{kind}"]["count"] >= 1
            assert "statement_ms.covering_members" not in snapshot["histograms"]
            assert snapshot["counters"]["detect.plan_variant.window"] >= 1
        finally:
            semandaq.close()

    def test_repeated_detect_hits_the_plan_cache(self, customer_relation, customer_cfds):
        semandaq = _sqlite_system(customer_relation, customer_cfds, telemetry=True)
        try:
            semandaq.detect("customer")
            misses_after_first = semandaq.metrics()["counters"]["plan_cache.misses"]
            semandaq.detect("customer")
            snapshot = semandaq.metrics()
            assert snapshot["counters"]["plan_cache.hits"] >= 1
            # the warm detect compiled nothing new
            assert snapshot["counters"]["plan_cache.misses"] == misses_after_first
        finally:
            semandaq.close()

    def test_detect_span_recorded_with_statement_children(
        self, customer_relation, customer_cfds
    ):
        semandaq = _sqlite_system(customer_relation, customer_cfds, telemetry=True)
        try:
            semandaq.detect("customer")
            roots = semandaq.metrics()["spans"]["roots"]
            detect_spans = [root for root in roots if root["name"] == "detect"]
            assert detect_spans
            children = detect_spans[0].get("children", [])
            assert any(child["name"] == "statement" for child in children)
        finally:
            semandaq.close()

    def test_trace_and_reset_metrics_facade(self, customer_relation, customer_cfds):
        semandaq = _sqlite_system(customer_relation, customer_cfds, telemetry=True)
        try:
            with semandaq.trace("session", user="analyst"):
                semandaq.detect("customer")
            roots = semandaq.metrics()["spans"]["roots"]
            session_roots = [root for root in roots if root["name"] == "session"]
            assert session_roots
            assert any(
                child["name"] == "detect"
                for child in session_roots[0].get("children", [])
            )
            semandaq.reset_metrics()
            snapshot = semandaq.metrics()
            assert snapshot["counters"] == {}
            assert snapshot["spans"]["roots"] == []
        finally:
            semandaq.close()

    def test_identical_runs_have_identical_counters(
        self, customer_relation, customer_cfds
    ):
        def run():
            semandaq = _sqlite_system(
                customer_relation.copy(), customer_cfds, telemetry=True
            )
            try:
                semandaq.detect("customer")
                return semandaq.metrics()["counters"]
            finally:
                semandaq.close()

        assert run() == run()


class TestExplainPlans:
    def test_covering_members_plan_captured_with_index_usage(
        self, customer_relation, customer_cfds
    ):
        semandaq = _sqlite_system(
            customer_relation,
            customer_cfds,
            telemetry=True,
            explain_plans=True,
            detect_plan="legacy",
        )
        try:
            semandaq.detect("customer")
            plans = semandaq.metrics()["plans"]
            assert plans, "explain_plans mode captured nothing"
            covering = [plan for plan in plans if plan["kind"] == "covering_members"]
            assert covering, "no covering-members plan captured"
            # the detector builds the CFD-LHS index before executing, so the
            # member enumeration must be driven by an index
            assert any(plan["uses_index"] for plan in covering)
        finally:
            semandaq.close()

    def test_plans_not_captured_when_mode_off(self, customer_relation, customer_cfds):
        semandaq = _sqlite_system(customer_relation, customer_cfds, telemetry=True)
        try:
            semandaq.detect("customer")
            assert semandaq.metrics()["plans"] == []
        finally:
            semandaq.close()


class TestLogSql:
    def test_log_sql_emits_debug_statements(
        self, customer_relation, customer_cfds, caplog
    ):
        semandaq = _sqlite_system(customer_relation, customer_cfds, log_sql=True)
        try:
            # log_sql alone activates the instrumented backend…
            assert isinstance(semandaq.backend, InstrumentedBackend)
            with caplog.at_level(logging.DEBUG, logger="repro.obs.instrument"):
                semandaq.detect("customer")
            messages = [record.getMessage() for record in caplog.records]
            assert any("execute kind=q_c" in message for message in messages)
            # …but spans and metrics stay off
            snapshot = semandaq.metrics()
            assert snapshot["enabled"] is False
            assert snapshot["counters"] == {}
        finally:
            semandaq.close()

    def test_silent_without_log_sql(self, customer_relation, customer_cfds, caplog):
        semandaq = _sqlite_system(customer_relation, customer_cfds, telemetry=True)
        try:
            with caplog.at_level(logging.DEBUG, logger="repro.obs.instrument"):
                semandaq.detect("customer")
            assert not caplog.records
        finally:
            semandaq.close()
