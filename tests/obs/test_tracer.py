"""Tests for the span/tracer half of the telemetry layer."""

import pytest

from repro.obs import Tracer


class TestSpanNesting:
    def test_spans_nest_under_the_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("detect", relation="customer"):
            with tracer.span("statement", kind="q_c"):
                pass
            with tracer.span("statement", kind="q_v"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "detect"
        assert root.tags == {"relation": "customer"}
        assert [child.name for child in root.children] == ["statement", "statement"]
        assert [child.tags["kind"] for child in root.children] == ["q_c", "q_v"]

    def test_sibling_roots_do_not_nest(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in tracer.roots] == ["first", "second"]
        assert tracer.roots[0].children == []

    def test_depth_tracks_open_spans(self):
        tracer = Tracer()
        assert tracer.depth == 0
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.depth == 2
        assert tracer.depth == 0


class TestSpanClosing:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.duration_ms >= 0.0
        assert span.status == "ok"

    def test_span_closes_with_error_status_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.depth == 0  # both spans closed despite the raise
        root = tracer.roots[0]
        assert root.status == "error"
        assert root.children[0].status == "error"
        assert root.children[0].duration_ms >= 0.0

    def test_nesting_recovers_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failed"):
                raise RuntimeError
        with tracer.span("next"):
            pass
        assert [span.name for span in tracer.roots] == ["failed", "next"]
        assert tracer.roots[1].children == []


class TestRetentionCaps:
    def test_root_spans_are_bounded(self):
        tracer = Tracer(max_roots=2)
        for index in range(5):
            with tracer.span(f"root{index}"):
                pass
        assert [span.name for span in tracer.roots] == ["root0", "root1"]
        assert tracer.dropped_roots == 3
        assert tracer.snapshot()["dropped_roots"] == 3

    def test_child_spans_are_bounded(self):
        tracer = Tracer(max_children=2)
        with tracer.span("root"):
            for index in range(5):
                with tracer.span(f"child{index}"):
                    pass
        root = tracer.roots[0]
        assert [span.name for span in root.children] == ["child0", "child1"]
        assert root.dropped_children == 3
        assert root.to_dict()["dropped_children"] == 3

    def test_dropped_spans_still_nest_correctly(self):
        tracer = Tracer(max_roots=1)
        with tracer.span("kept"):
            pass
        with tracer.span("dropped"):
            with tracer.span("grandchild") as grandchild:
                pass
        # the dropped root still parented its child; nothing leaked into the
        # retained forest
        assert [span.name for span in tracer.roots] == ["kept"]
        assert grandchild.name == "grandchild"
        assert tracer.depth == 0


class TestSnapshot:
    def test_snapshot_is_plain_dicts(self):
        tracer = Tracer()
        with tracer.span("detect", cfds=4):
            with tracer.span("statement"):
                pass
        snapshot = tracer.snapshot()
        assert set(snapshot) == {"roots", "dropped_roots"}
        root = snapshot["roots"][0]
        assert root["name"] == "detect"
        assert root["status"] == "ok"
        assert root["tags"] == {"cfds": 4}
        assert root["children"][0]["name"] == "statement"
        assert "tags" not in root["children"][0]  # empty tags are elided

    def test_reset_drops_recorded_roots(self):
        tracer = Tracer(max_roots=1)
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        assert tracer.dropped_roots == 1
        tracer.reset()
        assert tracer.snapshot() == {"roots": [], "dropped_roots": 0}
        with tracer.span("after"):
            pass
        assert [span.name for span in tracer.roots] == ["after"]
