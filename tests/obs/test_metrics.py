"""Tests for the counter/histogram half of the telemetry layer."""

from repro.obs import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc()
        assert counter.value == 2

    def test_increment_by_amount(self):
        counter = Counter()
        counter.inc(7)
        counter.inc(3)
        assert counter.value == 10


class TestHistogram:
    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.to_dict() == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": None,
            "max": None,
        }

    def test_observe_tracks_count_total_extremes(self):
        histogram = Histogram()
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0

    def test_to_dict_rounds(self):
        histogram = Histogram()
        histogram.observe(1.23456789)
        summary = histogram.to_dict()
        assert summary["total"] == 1.234568
        assert summary["min"] == summary["max"] == 1.234568


class TestMetricsRegistry:
    def test_instruments_created_on_first_use(self):
        registry = MetricsRegistry()
        counter = registry.counter("plan_cache.hits")
        assert counter.value == 0
        assert registry.counter("plan_cache.hits") is counter
        histogram = registry.histogram("statement_ms.q_c")
        histogram.observe(1.5)
        assert registry.histogram("statement_ms.q_c").count == 1

    def test_counter_value_defaults_to_zero(self):
        registry = MetricsRegistry()
        assert registry.counter_value("never.incremented") == 0
        registry.counter("sync.full").inc(4)
        assert registry.counter_value("sync.full") == 4

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc(2)
        registry.histogram("m.b").observe(1.0)
        registry.histogram("m.a").observe(2.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        assert list(snapshot["histograms"]) == ["m.a", "m.b"]
        assert snapshot["counters"] == {"alpha": 2, "zeta": 1}
        assert snapshot["histograms"]["m.a"]["count"] == 1

    def test_identical_workloads_snapshot_identically(self):
        def run():
            registry = MetricsRegistry()
            for _ in range(3):
                registry.counter("statements").inc()
                registry.histogram("statement_ms.q_v").observe(2.5)
            registry.counter("statement_rows.q_v").inc(12)
            return registry.snapshot()

        assert run() == run()

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(1.0)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "histograms": {}}
        assert registry.counter_value("a") == 0
