"""Tests for the persisted BENCH_*.json trajectory schema and writer."""

import json
import os

import pytest

from repro.obs import benchjson


def _entry(marker):
    return benchjson.build_entry(
        series=[{"size": 100, "detect_ms": 1.5, "marker": marker}],
        metrics={"plan_cache.hits": 3},
        recorded_at=1754500000.0 + marker,
    )


class TestNaming:
    def test_bench_slug(self):
        assert benchjson.bench_slug("SQL-DELTA-PLANS") == "SQL_DELTA_PLANS"
        assert benchjson.bench_slug("incr sync") == "INCR_SYNC"
        assert benchjson.bench_slug("Fig2") == "FIG2"

    def test_bench_slug_rejects_empty(self):
        with pytest.raises(ValueError):
            benchjson.bench_slug("--/--")

    def test_bench_file_name(self):
        assert benchjson.bench_file_name("BATCH-RESIDENT") == "BENCH_BATCH_RESIDENT.json"


class TestBuildEntry:
    def test_entry_shape(self):
        entry = _entry(0)
        assert entry["recorded_at"] == 1754500000.0
        assert entry["series"] == [{"size": 100, "detect_ms": 1.5, "marker": 0}]
        assert entry["metrics"] == {"plan_cache.hits": 3}
        environment = entry["environment"]
        assert set(environment) >= {"python", "implementation", "platform", "sqlite", "smoke"}

    def test_entry_copies_inputs(self):
        row = {"size": 1}
        metrics = {"a": 1}
        entry = benchjson.build_entry([row], metrics, recorded_at=1.0)
        row["size"] = 2
        metrics["a"] = 2
        assert entry["series"] == [{"size": 1}]
        assert entry["metrics"] == {"a": 1}


class TestAppendEntry:
    def test_creates_and_appends(self, tmp_path):
        path = str(tmp_path / benchjson.bench_file_name("DEMO"))
        benchjson.append_entry(path, "DEMO", _entry(0))
        payload = benchjson.append_entry(path, "DEMO", _entry(1))
        assert payload["schema_version"] == benchjson.SCHEMA_VERSION
        assert payload["benchmark"] == "DEMO"
        markers = [entry["series"][0]["marker"] for entry in payload["trajectory"]]
        assert markers == [0, 1]
        # the written file round-trips and validates
        loaded = benchjson.load_payload(path)
        assert benchjson.validate_bench_payload(loaded, name="DEMO") == []

    def test_trajectory_trimmed_to_newest_entries(self, tmp_path):
        path = str(tmp_path / "BENCH_DEMO.json")
        for marker in range(5):
            benchjson.append_entry(path, "DEMO", _entry(marker), max_entries=3)
        payload = benchjson.load_payload(path)
        markers = [entry["series"][0]["marker"] for entry in payload["trajectory"]]
        assert markers == [2, 3, 4]

    def test_corrupt_file_replaced_fresh(self, tmp_path):
        path = str(tmp_path / "BENCH_DEMO.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema_version": 1, "benchmark": "DEMO", "trajecto')
        payload = benchjson.append_entry(path, "DEMO", _entry(9))
        assert len(payload["trajectory"]) == 1
        assert benchjson.validate_bench_payload(benchjson.load_payload(path)) == []

    def test_wrong_benchmark_name_starts_fresh(self, tmp_path):
        path = str(tmp_path / "BENCH_DEMO.json")
        benchjson.append_entry(path, "OTHER", _entry(0))
        payload = benchjson.append_entry(path, "DEMO", _entry(1))
        assert payload["benchmark"] == "DEMO"
        assert len(payload["trajectory"]) == 1

    def test_file_ends_with_newline(self, tmp_path):
        path = str(tmp_path / "BENCH_DEMO.json")
        benchjson.append_entry(path, "DEMO", _entry(0))
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read().endswith("}\n")


class TestValidate:
    def test_valid_payload_has_no_problems(self):
        payload = {
            "schema_version": benchjson.SCHEMA_VERSION,
            "benchmark": "DEMO",
            "trajectory": [_entry(0)],
        }
        assert benchjson.validate_bench_payload(payload) == []
        assert benchjson.validate_bench_payload(payload, name="DEMO") == []

    def test_non_object_payload(self):
        assert benchjson.validate_bench_payload([1, 2]) == ["payload is not a JSON object"]

    def test_schema_version_mismatch(self):
        payload = {"schema_version": 99, "benchmark": "DEMO", "trajectory": [_entry(0)]}
        problems = benchjson.validate_bench_payload(payload)
        assert any("schema_version" in problem for problem in problems)

    def test_benchmark_name_mismatch(self):
        payload = {
            "schema_version": benchjson.SCHEMA_VERSION,
            "benchmark": "DEMO",
            "trajectory": [_entry(0)],
        }
        problems = benchjson.validate_bench_payload(payload, name="OTHER")
        assert problems == ["benchmark is 'DEMO', expected 'OTHER'"]

    def test_empty_trajectory_rejected(self):
        payload = {
            "schema_version": benchjson.SCHEMA_VERSION,
            "benchmark": "DEMO",
            "trajectory": [],
        }
        problems = benchjson.validate_bench_payload(payload)
        assert problems == ["trajectory must be a non-empty list"]

    def test_malformed_entries_reported_individually(self):
        payload = {
            "schema_version": benchjson.SCHEMA_VERSION,
            "benchmark": "DEMO",
            "trajectory": [
                "not-an-object",
                {
                    "recorded_at": "yesterday",
                    "environment": [],
                    "series": [1, 2],
                    "metrics": None,
                },
            ],
        }
        problems = benchjson.validate_bench_payload(payload)
        assert "trajectory[0] is not an object" in problems
        assert "trajectory[1].recorded_at must be a number" in problems
        assert "trajectory[1].environment must be an object" in problems
        assert "trajectory[1].series must be a list of objects" in problems
        assert "trajectory[1].metrics must be an object" in problems


class TestValidatorScript:
    """The CI entry point over a real results directory."""

    def _run(self, argv):
        import importlib.util
        import sys

        script = os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            os.pardir,
            os.pardir,
            "benchmarks",
            "validate_bench_json.py",
        )
        spec = importlib.util.spec_from_file_location("validate_bench_json", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.main(argv)

    def test_passes_on_valid_directory(self, tmp_path, capsys):
        path = str(tmp_path / benchjson.bench_file_name("DEMO"))
        benchjson.append_entry(path, "DEMO", _entry(0))
        assert self._run(["--results-dir", str(tmp_path), "--expect", "DEMO"]) == 0
        assert "1 trajectory file(s) valid" in capsys.readouterr().out

    def test_fails_on_missing_expected_benchmark(self, tmp_path, capsys):
        path = str(tmp_path / benchjson.bench_file_name("DEMO"))
        benchjson.append_entry(path, "DEMO", _entry(0))
        assert self._run(["--results-dir", str(tmp_path), "--expect", "MISSING"]) == 1
        assert "BENCH_MISSING.json" in capsys.readouterr().err

    def test_fails_on_invalid_file(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_BROKEN.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema_version": 0, "benchmark": "", "trajectory": []}, handle)
        assert self._run(["--results-dir", str(tmp_path)]) == 1
        errors = capsys.readouterr().err
        assert "BENCH_BROKEN.json" in errors

    def test_fails_on_empty_directory(self, tmp_path):
        assert self._run(["--results-dir", str(tmp_path)]) == 1
