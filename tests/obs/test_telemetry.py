"""Tests for the Telemetry context: flags, tagging, plan capture, snapshots."""

import pytest

from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.telemetry import UNTAGGED_KIND, _NULL_SPAN


class _PlanBackend:
    """A stub backend whose explain hook returns canned plan rows."""

    def __init__(self, detail):
        self.detail = detail
        self.calls = []

    def explain_query_plan(self, sql, parameters=None):
        self.calls.append((sql, parameters))
        return self.detail


class TestFlags:
    def test_disabled_by_default(self):
        telemetry = Telemetry()
        assert not telemetry.enabled
        assert not telemetry.active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"enabled": True},
            {"explain_plans": True},
            {"log_sql": True},
        ],
    )
    def test_any_concern_makes_it_active(self, kwargs):
        assert Telemetry(**kwargs).active

    def test_null_telemetry_is_a_disabled_shared_instance(self):
        assert not NULL_TELEMETRY.active
        NULL_TELEMETRY.inc("should.be.noop")
        NULL_TELEMETRY.observe("also.noop", 1.0)
        NULL_TELEMETRY.record_statement("q_c", 1.0, rows=1, params=0)
        assert NULL_TELEMETRY.metrics.snapshot() == {"counters": {}, "histograms": {}}


class TestSpans:
    def test_span_is_shared_noop_when_disabled(self):
        telemetry = Telemetry(explain_plans=True)  # active but not enabled
        assert telemetry.span("detect") is _NULL_SPAN
        with telemetry.span("detect"):
            pass
        assert telemetry.tracer.roots == []

    def test_span_records_when_enabled(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("detect", relation="customer"):
            with telemetry.span("statement"):
                pass
        assert len(telemetry.tracer.roots) == 1
        assert telemetry.tracer.roots[0].children[0].name == "statement"


class TestMetricsHelpers:
    def test_inc_and_observe_only_when_enabled(self):
        off = Telemetry()
        off.inc("sync.full")
        off.observe("statement_ms.q_c", 5.0)
        assert off.metrics.snapshot() == {"counters": {}, "histograms": {}}

        on = Telemetry(enabled=True)
        on.inc("sync.full")
        on.inc("sync.full", 2)
        on.observe("statement_ms.q_c", 5.0)
        assert on.metrics.counter_value("sync.full") == 3
        assert on.metrics.histogram("statement_ms.q_c").count == 1

    def test_record_statement_metric_names(self):
        telemetry = Telemetry(enabled=True)
        telemetry.record_statement("q_v", 2.0, rows=7, params=3)
        telemetry.record_statement("q_v", 4.0, rows=1, params=3)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["counters"] == {
            "statement_params.q_v": 6,
            "statement_rows.q_v": 8,
            "statements": 2,
        }
        assert snapshot["histograms"]["statement_ms.q_v"]["count"] == 2
        assert snapshot["histograms"]["statement_ms.q_v"]["total"] == 6.0


class TestStatementTagging:
    def test_untagged_kind(self):
        assert Telemetry().statement_kind() == UNTAGGED_KIND

    def test_tag_applies_inside_block_and_restores(self):
        telemetry = Telemetry()
        with telemetry.tag_statements("q_c"):
            assert telemetry.statement_kind() == "q_c"
            with telemetry.tag_statements("covering_members"):
                assert telemetry.statement_kind() == "covering_members"
            assert telemetry.statement_kind() == "q_c"
        assert telemetry.statement_kind() == UNTAGGED_KIND

    def test_none_kind_keeps_surrounding_hint(self):
        telemetry = Telemetry()
        with telemetry.tag_statements("delta_multi"):
            with telemetry.tag_statements(None):
                assert telemetry.statement_kind() == "delta_multi"
            assert telemetry.statement_kind() == "delta_multi"

    def test_hint_restored_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.tag_statements("q_c"):
                raise RuntimeError
        assert telemetry.statement_kind() == UNTAGGED_KIND


class TestPlanCapture:
    def test_capture_records_detail_and_index_verdict(self):
        telemetry = Telemetry(explain_plans=True)
        backend = _PlanBackend([{"detail": "SEARCH t USING INDEX idx_customer (CC=?)"}])
        telemetry.capture_plan(backend, "SELECT 1", ("44",), "covering_members")
        (plan,) = telemetry.plans
        assert plan["kind"] == "covering_members"
        assert plan["sql"] == "SELECT 1"
        assert plan["uses_index"] is True
        assert plan["detail"] == backend.detail
        assert telemetry.plans_for("covering_members") == [plan]
        assert telemetry.plans_for("q_c") == []

    def test_full_scan_flagged_as_no_index(self):
        telemetry = Telemetry(explain_plans=True)
        backend = _PlanBackend([{"detail": "SCAN t"}])
        telemetry.capture_plan(backend, "SELECT 1", None, "q_v")
        assert telemetry.plans[0]["uses_index"] is False

    def test_capture_dedupes_per_sql_text(self):
        telemetry = Telemetry(explain_plans=True)
        backend = _PlanBackend([{"detail": "SCAN t"}])
        telemetry.capture_plan(backend, "SELECT 1", None, "q_c")
        telemetry.capture_plan(backend, "SELECT 1", None, "q_c")
        telemetry.capture_plan(backend, "SELECT 2", None, "q_c")
        assert len(backend.calls) == 2
        assert len(telemetry.plans) == 2

    def test_backend_without_introspection_records_nothing(self):
        telemetry = Telemetry(explain_plans=True)
        telemetry.capture_plan(_PlanBackend(None), "SELECT 1", None, "q_c")
        assert telemetry.plans == []


class TestSnapshotAndReset:
    def test_snapshot_shape(self):
        telemetry = Telemetry(enabled=True, explain_plans=True)
        with telemetry.span("detect"):
            pass
        telemetry.record_statement("q_c", 1.0, rows=2, params=1)
        telemetry.capture_plan(
            _PlanBackend([{"detail": "SCAN t"}]), "SELECT 1", None, "q_c"
        )
        snapshot = telemetry.snapshot()
        assert set(snapshot) == {"enabled", "counters", "histograms", "spans", "plans"}
        assert snapshot["enabled"] is True
        assert snapshot["counters"]["statements"] == 1
        assert "statement_ms.q_c" in snapshot["histograms"]
        assert snapshot["spans"]["roots"][0]["name"] == "detect"
        assert snapshot["plans"][0]["sql"] == "SELECT 1"

    def test_reset_clears_recordings_but_not_flags(self):
        telemetry = Telemetry(enabled=True, explain_plans=True)
        with telemetry.span("detect"):
            pass
        telemetry.inc("statements")
        telemetry.capture_plan(
            _PlanBackend([{"detail": "SCAN t"}]), "SELECT 1", None, "q_c"
        )
        telemetry.reset()
        snapshot = telemetry.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == {"roots": [], "dropped_roots": 0}
        assert snapshot["plans"] == []
        assert telemetry.active
