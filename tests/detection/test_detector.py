"""Tests for the batch error detector (SQL path and native path)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_cfd
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.detection.detector import ErrorDetector
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.errors import DetectionError


@pytest.fixture
def detector(customer_database):
    return ErrorDetector(customer_database, use_sql=True)


@pytest.fixture
def native_detector(customer_database):
    return ErrorDetector(customer_database, use_sql=False)


class TestDetectExample:
    def test_detects_single_and_multi_violations(self, detector, customer_cfds):
        report = detector.detect("customer", customer_cfds)
        assert report.tuple_count == 6
        singles = report.single_violations()
        assert len(singles) == 1 and singles[0].tids == (4,)
        multis = report.multi_violations()
        # phi2 (UK zip -> street) on tuples 0,1 and phi3 (CC -> CNT) on the CC=44 group
        assert any(set(v.tids) == {0, 1} and v.rhs_attribute == "STR" for v in multis)
        assert any(v.rhs_attribute == "CNT" and 4 in v.tids for v in multis)

    def test_vio_counts_match_paper_definition(self, detector, customer_cfds):
        report = detector.detect("customer", customer_cfds)
        vio = report.vio()
        # Anna (tid 4): single phi4 violation + member of the CC=44 phi3 group of 4 tuples
        assert vio[4] == 1 + 3
        # Joe and Mary (US, agree everywhere) are clean
        assert report.vio_of(2) == 0 and report.vio_of(3) == 0

    def test_clean_relation_produces_empty_report(self, customer_cfds):
        database = Database()
        database.add_relation(generate_customers(50, seed=3))
        detector = ErrorDetector(database)
        report = detector.detect("customer", customer_cfds)
        assert report.is_clean()

    def test_sql_statements_recorded(self, detector, customer_cfds):
        detector.detect("customer", customer_cfds)
        assert detector.last_sql
        assert any("GROUP BY" in sql for sql in detector.last_sql)

    def test_cached_tableaux_released_on_demand(
        self, detector, customer_cfds, customer_database
    ):
        # tableaux stay cached between detections (repeat detects are pure
        # reads — the concurrent serving contract), live in the reserved
        # __semandaq_ namespace, and drop on release_cached_tableaux()
        before = set(customer_database.relation_names())
        detector.detect("customer", customer_cfds)
        lingering = set(customer_database.relation_names()) - before
        assert lingering
        assert all(name.startswith("__semandaq_tableau") for name in lingering)
        detector.detect("customer", customer_cfds)  # reuses the cache
        detector.release_cached_tableaux()
        assert set(customer_database.relation_names()) == before

    def test_wrong_relation_rejected(self, detector):
        with pytest.raises(DetectionError):
            detector.detect("customer", [parse_cfd("orders: [A=_] -> [B=_]")])

    def test_detect_for_tuples_filters(self, detector, customer_cfds):
        report = detector.detect_for_tuples("customer", customer_cfds, [4])
        assert all(4 in violation.tids for violation in report.violations)
        assert report.total_violations() >= 1

    def test_multi_rhs_cfd_detected_per_attribute(self, customer_database):
        cfd = parse_cfd("customer: [CC=_] -> [CNT=_, AC=_]")
        detector = ErrorDetector(customer_database)
        report = detector.detect("customer", [cfd])
        attrs = {violation.rhs_attribute for violation in report.violations}
        assert "CNT" in attrs  # CC=44 group disagrees on CNT


class TestSqlVsNative:
    def test_same_result_on_example(self, detector, native_detector, customer_cfds):
        sql_report = detector.detect("customer", customer_cfds)
        native_report = native_detector.detect("customer", customer_cfds)
        assert sql_report.vio() == native_report.vio()
        assert sql_report.dirty_tids() == native_report.dirty_tids()

    def test_same_result_on_noisy_generated_data(self, customer_cfds):
        clean = generate_customers(150, seed=5)
        dirty = inject_noise(clean, rate=0.05, seed=6, attributes=["CNT", "CITY", "STR", "CC"]).dirty
        database = Database()
        database.add_relation(dirty)
        sql_report = ErrorDetector(database, use_sql=True).detect("customer", customer_cfds)
        native_report = ErrorDetector(database, use_sql=False).detect("customer", customer_cfds)
        assert sql_report.vio() == native_report.vio()

    small_value = st.sampled_from(["a", "b", None])

    @given(
        rows=st.lists(
            st.fixed_dictionaries(
                {"CNT": small_value, "ZIP": small_value, "STR": small_value, "CC": small_value}
            ),
            min_size=0,
            max_size=10,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_sql_equals_native(self, rows):
        schema = RelationSchema.of("customer", ["CNT", "ZIP", "STR", "CC"])
        relation = Relation.from_rows(schema, rows)
        database = Database()
        database.add_relation(relation)
        cfds = [
            parse_cfd("customer: [CNT='a', ZIP=_] -> [STR=_]"),
            parse_cfd("customer: [CC='a'] -> [CNT='b']"),
            parse_cfd("customer: [CC=_] -> [CNT=_]"),
        ]
        sql_report = ErrorDetector(database, use_sql=True).detect("customer", cfds)
        native_report = ErrorDetector(database, use_sql=False).detect("customer", cfds)
        assert sql_report.vio() == native_report.vio()
        assert sql_report.dirty_tids() == native_report.dirty_tids()
