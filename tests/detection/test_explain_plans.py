"""EXPLAIN QUERY PLAN regressions: the covering-members query must stay sargable.

PR 5 reduced violating-group member enumeration to an index-only probe of
the auto-built CFD-LHS index (``covering_members_query``).  Nothing in the
test suite pinned that property — a harmless-looking rewrite of the SQL
could silently fall back to a full scan and only show up as a benchmark
regression.  These tests ask SQLite's planner directly.
"""

import pytest

from repro.backends import MemoryBackend, SqliteBackend
from repro.core.parser import parse_cfd
from repro.detection.sqlgen import DetectionSqlGenerator

#: plan-detail substrings that mean the probe went through an index
INDEX_MARKERS = ("USING INDEX", "USING COVERING INDEX")


def _plan_text(detail):
    return " ".join(str(value) for row in detail for value in row.values()).upper()


@pytest.fixture
def sqlite_customer(customer_relation):
    backend = SqliteBackend()
    backend.add_relation(customer_relation)
    yield backend
    backend.close()


class TestCoveringMembersPlan:
    @pytest.mark.parametrize(
        "cfd_text, rhs",
        [
            ("customer: [CC=_, AC=_] -> [CITY=_]", "CITY"),
            ("customer: [CC='44', ZIP=_] -> [STR=_]", "STR"),
        ],
    )
    def test_uses_cfd_lhs_index(self, sqlite_customer, customer_relation, cfd_text, rhs):
        cfd = parse_cfd(cfd_text)
        sqlite_customer.ensure_index("customer", cfd.lhs)
        generator = DetectionSqlGenerator(
            customer_relation.schema, dialect=sqlite_customer.dialect
        )
        query = generator.covering_members_query(cfd, "tab", rhs, group_count=1)
        # one group's LHS values, caller-bound like the detector binds them
        parameters = tuple("0" for _ in cfd.lhs)
        detail = sqlite_customer.explain_query_plan(query.sql, parameters)
        if not detail:
            pytest.skip("this SQLite build returns no EXPLAIN QUERY PLAN rows")
        text = _plan_text(detail)
        if "USING" not in text:
            pytest.skip("plan detail carries no index information")
        assert any(marker in text for marker in INDEX_MARKERS), text

    def test_without_index_the_plan_scans(self, sqlite_customer, customer_relation):
        # sanity for the regression above: the index, not SQLite luck, is
        # what makes the probe sargable
        cfd = parse_cfd("customer: [CC=_, AC=_] -> [CITY=_]")
        generator = DetectionSqlGenerator(
            customer_relation.schema, dialect=sqlite_customer.dialect
        )
        query = generator.covering_members_query(cfd, "tab", "CITY", group_count=1)
        detail = sqlite_customer.explain_query_plan(query.sql, ("0", "0"))
        if not detail:
            pytest.skip("this SQLite build returns no EXPLAIN QUERY PLAN rows")
        text = _plan_text(detail)
        assert not any(marker in text for marker in INDEX_MARKERS), text


class TestSargableSinglePlan:
    """The constant-bound ``Q_C`` specialization must ride the CFD-LHS index.

    The per-pattern statement turns a constant LHS position into a bare
    ``t.CC = ?`` equality — exactly the shape the auto-built index answers.
    A rewrite that re-wrapped the column in an expression would degrade to
    a scan; ask the planner directly, like the covering-members pin above.
    """

    def test_constant_lhs_pattern_uses_cfd_lhs_index(
        self, sqlite_customer, customer_relation
    ):
        cfd = parse_cfd("customer: [CC='44', AC='131'] -> [CITY='EDI']")
        sqlite_customer.ensure_index("customer", cfd.lhs)
        generator = DetectionSqlGenerator(
            customer_relation.schema,
            dialect=sqlite_customer.dialect,
            detect_plan="sargable",
        )
        queries = generator.plan_single_queries(cfd, "tab")
        assert len(queries) == 1
        query = queries[0]
        assert query.kind == "q_c_sargable"
        assert "t.CC = ?" in query.sql and "t.AC = ?" in query.sql
        detail = sqlite_customer.explain_query_plan(query.sql, query.parameters)
        if not detail:
            pytest.skip("this SQLite build returns no EXPLAIN QUERY PLAN rows")
        text = _plan_text(detail)
        if "USING" not in text:
            pytest.skip("plan detail carries no index information")
        assert any(marker in text for marker in INDEX_MARKERS), text

    def test_without_index_the_plan_scans(self, sqlite_customer, customer_relation):
        cfd = parse_cfd("customer: [CC='44', AC='131'] -> [CITY='EDI']")
        generator = DetectionSqlGenerator(
            customer_relation.schema,
            dialect=sqlite_customer.dialect,
            detect_plan="sargable",
        )
        query = generator.plan_single_queries(cfd, "tab")[0]
        detail = sqlite_customer.explain_query_plan(query.sql, query.parameters)
        if not detail:
            pytest.skip("this SQLite build returns no EXPLAIN QUERY PLAN rows")
        text = _plan_text(detail)
        assert not any(marker in text for marker in INDEX_MARKERS), text


class TestExplainHook:
    def test_memory_backend_has_no_plan_introspection(self, customer_relation):
        backend = MemoryBackend()
        backend.add_relation(customer_relation)
        assert backend.explain_query_plan("SELECT 1") is None

    def test_sqlite_returns_rows_for_plain_select(self, sqlite_customer):
        detail = sqlite_customer.explain_query_plan("SELECT * FROM customer")
        assert detail is None or isinstance(detail, list)
        if detail:
            assert all(isinstance(row, dict) for row in detail)

    def test_sqlite_invalid_sql_returns_none(self, sqlite_customer):
        assert sqlite_customer.explain_query_plan("SELECT * FROM no_such_table") is None
