"""Tests for incremental detection: equivalence with batch detection and cost locality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_cfd
from repro.datasets import generate_customers, paper_cfds
from repro.detection.detector import ErrorDetector
from repro.detection.incremental import IncrementalDetector
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.errors import DetectionError


def reports_equal(left, right):
    """Order-insensitive comparison of two violation reports."""
    def canon(report):
        return {
            (v.cfd_id, v.kind, v.tids, v.rhs_attribute) for v in report.violations
        }
    return canon(left) == canon(right) and left.vio() == right.vio()


@pytest.fixture
def incremental(customer_database, customer_cfds):
    return IncrementalDetector(customer_database, "customer", customer_cfds)


class TestInitialState:
    def test_initial_report_matches_batch(self, customer_database, customer_cfds, incremental):
        batch = ErrorDetector(customer_database, use_sql=False).detect("customer", customer_cfds)
        assert reports_equal(incremental.report(), batch)

    def test_wrong_relation_rejected(self, customer_database):
        with pytest.raises(DetectionError):
            IncrementalDetector(customer_database, "customer", [parse_cfd("orders: [A=_] -> [B=_]")])


class TestUpdates:
    def test_insert_violating_tuple_detected(self, incremental):
        tid = incremental.insert(
            {"NAME": "Zed", "CNT": "FR", "CITY": "PAR", "ZIP": "75001",
             "STR": "Rue", "CC": "44", "AC": "01"}
        )
        report = incremental.report()
        assert any(v.is_single and v.tids == (tid,) for v in report.violations)

    def test_delete_removes_violations(self, incremental):
        incremental.delete(4)  # Anna, the single-tuple violator
        report = incremental.report()
        assert not report.single_violations()

    def test_update_fixing_violation(self, incremental):
        incremental.update(4, {"CNT": "UK"})
        report = incremental.report()
        assert not report.single_violations()

    def test_update_creating_multi_violation(self, incremental):
        # Change Mary's street so the US zip group now disagrees.
        incremental.update(3, {"STR": "Elsewhere Blvd"})
        report = incremental.report()
        assert any(
            v.is_multi and set(v.tids) == {2, 3} and v.rhs_attribute == "CITY"
            for v in report.violations
        ) is False  # city still agrees
        # phi1 does not fire, but the plain FD inside phi3 is untouched; check
        # that the update itself did not corrupt other state.
        assert report.tuple_count == 6

    def test_apply_dispatch(self, incremental):
        tid = incremental.apply("insert", row={"NAME": "N", "CNT": "US", "CITY": "NYC",
                                               "ZIP": "01202", "STR": "Mountain Ave",
                                               "CC": "01", "AC": "212"})
        incremental.apply("update", tid=tid, changes={"STR": "Other St"})
        incremental.apply("delete", tid=tid)
        with pytest.raises(DetectionError):
            incremental.apply("merge", tid=tid)

    def test_cost_counter_and_reset(self, incremental):
        incremental.reset_cost_counter()
        incremental.insert(
            {"NAME": "A", "CNT": "US", "CITY": "NYC", "ZIP": "01202",
             "STR": "Mountain Ave", "CC": "01", "AC": "212"}
        )
        assert incremental.tuples_examined > 0
        examined = incremental.tuples_examined
        # One insert examines the tuple once per CFD pattern, far fewer times
        # than a full re-detection over all tuples would.
        assert examined <= 20


class TestEquivalenceWithBatch:
    def test_after_update_sequence(self, customer_database, customer_cfds):
        incremental = IncrementalDetector(customer_database, "customer", customer_cfds)
        incremental.update(4, {"CNT": "UK"})
        incremental.insert(
            {"NAME": "New", "CNT": "UK", "CITY": "EDI", "ZIP": "EH4 1DT",
             "STR": "Third Street", "CC": "44", "AC": "131"}
        )
        incremental.delete(5)
        batch = ErrorDetector(customer_database, use_sql=False).detect("customer", customer_cfds)
        assert reports_equal(incremental.report(), batch)

    value = st.sampled_from(["a", "b", None])
    operation = st.sampled_from(["insert", "delete", "update"])

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_random_update_sequences(self, data):
        schema = RelationSchema.of("customer", ["CNT", "ZIP", "STR", "CC"])
        initial = data.draw(
            st.lists(
                st.fixed_dictionaries(
                    {"CNT": self.value, "ZIP": self.value, "STR": self.value, "CC": self.value}
                ),
                min_size=1,
                max_size=8,
            )
        )
        relation = Relation.from_rows(schema, initial)
        database = Database()
        database.add_relation(relation)
        cfds = [
            parse_cfd("customer: [CNT='a', ZIP=_] -> [STR=_]"),
            parse_cfd("customer: [CC='a'] -> [CNT='b']"),
            parse_cfd("customer: [CC=_] -> [CNT=_]"),
        ]
        incremental = IncrementalDetector(database, "customer", cfds)
        for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
            op = data.draw(self.operation)
            tids = relation.tids()
            if op == "insert" or not tids:
                incremental.insert(
                    data.draw(
                        st.fixed_dictionaries(
                            {"CNT": self.value, "ZIP": self.value,
                             "STR": self.value, "CC": self.value}
                        )
                    )
                )
            elif op == "delete":
                incremental.delete(data.draw(st.sampled_from(tids)))
            else:
                tid = data.draw(st.sampled_from(tids))
                attribute = data.draw(st.sampled_from(["CNT", "ZIP", "STR", "CC"]))
                incremental.update(tid, {attribute: data.draw(self.value)})
        batch = ErrorDetector(database, use_sql=False).detect("customer", cfds)
        assert reports_equal(incremental.report(), batch)


class TestCostLocality:
    def test_incremental_examines_fewer_tuples_than_batch(self, customer_cfds):
        relation = generate_customers(300, seed=9)
        database = Database()
        database.add_relation(relation)
        incremental = IncrementalDetector(database, "customer", customer_cfds)
        initial_cost = incremental.tuples_examined
        incremental.reset_cost_counter()
        incremental.update(0, {"CITY": "WRONG"})
        assert incremental.tuples_examined < initial_cost / 10
