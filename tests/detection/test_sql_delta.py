"""Parity of the ``sql_delta`` incremental mode with the ``native`` mode.

The ``sql_delta`` evaluation mode compiles the incremental detector's
affected-group re-checks to parameterised delta variants of ``Q_C``/``Q_V``
and runs them against a storage backend's resident copy.  The acceptance
bar is report identity with the pure-Python ``native`` mode — same
violations, same pattern indices, same LHS values — across update
sequences, on both query backends (the embedded engine and SQLite),
including the overlapping-pattern and multi-wildcard-RHS tableaux that
historically broke SQL/native parity.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import SqliteBackend
from repro.backends.dialect import SqliteDialect, sqlite_row_values_supported
from repro.core.cfd import CFD
from repro.core.parser import parse_cfd
from repro.core.pattern import PatternTuple
from repro.datasets import generate_customers, paper_cfds
from repro.detection.detector import ErrorDetector
from repro.detection.incremental import (
    NATIVE_MODE,
    SQL_DELTA_MODE,
    IncrementalDetector,
)
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.errors import DetectionError
from tests.doubles import ForbiddenRelation
from tests.tableaux import NULL_CELL_CFD, ROW_VALUE_SKIP_REASON, null_cell_relation


def _violation_keys(report):
    """Full violation identity, including pattern index and LHS values."""
    return sorted(
        (
            violation.cfd_id,
            violation.kind,
            violation.tids,
            violation.rhs_attribute,
            violation.pattern_index,
            violation.lhs_values,
        )
        for violation in report.violations
    )


def _make_detector(relation, cfds, mode, backend_kind):
    """A detector over a private working copy, with its query/mirror backend."""
    database = Database()
    database.add_relation(relation.copy())
    if backend_kind == "sqlite":
        mirror = SqliteBackend()
        mirror.add_relation(database.relation(relation.name))
    else:
        mirror = None  # the shared-memory configuration
    detector = IncrementalDetector(
        database, relation.name, cfds, mirror=mirror, mode=mode
    )
    return detector, mirror


def _replay(script, relation, cfds, backend_kind):
    """Run ``script`` against a native and a sql_delta detector in lockstep.

    ``script(detector)`` applies the update sequence; reports must be
    identical after the whole sequence, and the sql_delta mirror copy must
    match the working store row for row.
    """
    native, _ = _make_detector(relation, cfds, NATIVE_MODE, "memory")
    sql_delta, mirror = _make_detector(relation, cfds, SQL_DELTA_MODE, backend_kind)
    script(native)
    script(sql_delta)
    assert _violation_keys(sql_delta.report()) == _violation_keys(native.report())
    if mirror is not None:
        assert dict(mirror.iter_rows(relation.name)) == dict(
            sql_delta.relation.rows()
        )
        mirror.close()
    return native, sql_delta


OVERLAP_RELATION = Relation.from_rows(
    RelationSchema.of("r", ["A", "B", "C"]),
    [
        {"A": "x", "B": "1", "C": "c1"},
        {"A": "x", "B": "1", "C": "c2"},  # violates patterns 0 and 1
        {"A": "y", "B": "1", "C": "c1"},
        {"A": "y", "B": "1", "C": "c3"},  # violates pattern 1 only
        {"A": "x", "B": "2", "C": "c1"},
        {"A": "x", "B": "2", "C": "c1"},  # agrees: no violation
    ],
)

OVERLAP_CFD = CFD(
    relation="r",
    lhs=("A", "B"),
    rhs=("C",),
    patterns=(
        PatternTuple.of({"A": "x", "B": "_", "C": "_"}),
        PatternTuple.of({"A": "_", "B": "_", "C": "_"}),
    ),
    name="phi_overlap",
)

TWO_RHS_RELATION = Relation.from_rows(
    RelationSchema.of("r", ["A", "B", "C"]),
    [
        {"A": "x", "B": "b1", "C": "c1"},
        {"A": "x", "B": "b1", "C": "c2"},  # B agrees, C disagrees
        {"A": "y", "B": "b1", "C": "c1"},
        {"A": "y", "B": "b2", "C": "c1"},  # B disagrees, C agrees
    ],
)

TWO_RHS_CFD = CFD(
    relation="r",
    lhs=("A",),
    rhs=("B", "C"),
    patterns=(PatternTuple.of({"A": "_", "B": "_", "C": "_"}),),
    name="phi_two_rhs",
)


@pytest.fixture(params=["memory", "sqlite"])
def backend_kind(request):
    return request.param


class TestInitialState:
    def test_initial_report_matches_native(self, backend_kind):
        dirty = generate_customers(80, seed=91)
        relation = Relation.from_rows(dirty.schema, dirty.to_list())
        relation.update(0, {"CNT": "Narnia"})
        relation.update(1, {"STR": "Wrong Street"})
        native, _ = _make_detector(relation, paper_cfds(), NATIVE_MODE, "memory")
        sql_delta, mirror = _make_detector(
            relation, paper_cfds(), SQL_DELTA_MODE, backend_kind
        )
        assert _violation_keys(sql_delta.report()) == _violation_keys(native.report())
        assert sql_delta.report().total_violations() > 0
        # the initial build is SQL all the way down: full Q_C/Q_V, no
        # native per-tuple state construction
        assert sql_delta.delta_queries > 0
        assert sql_delta.tuples_examined == 0
        if mirror is not None:
            mirror.close()

    def test_unknown_mode_rejected(self):
        database = Database()
        database.add_relation(generate_customers(5, seed=1))
        with pytest.raises(DetectionError):
            IncrementalDetector(database, "customer", paper_cfds(), mode="psychic")


class TestUpdateParity:
    def test_customer_update_sequence(self, backend_kind):
        relation = generate_customers(60, seed=47)
        template = dict(relation.get(0))

        def script(detector):
            with detector.batch():
                detector.insert(dict(template, STR="A Brand New Street"))
                detector.update(1, {"CNT": "Narnia"})
                detector.delete(2)
            detector.update(3, {"CC": "99"})
            with detector.batch():
                detector.update(1, {"CNT": template["CNT"]})  # revert
                detector.delete(relation_last_tid(detector))

        def relation_last_tid(detector):
            return detector.relation.tids()[-1]

        native, sql_delta = _replay(script, relation, paper_cfds(), backend_kind)
        # and both agree with a from-scratch batch detection oracle
        oracle = ErrorDetector(sql_delta.database, use_sql=False).detect(
            "customer", paper_cfds()
        )
        assert _violation_keys(sql_delta.report()) == _violation_keys(oracle)

    def test_overlapping_pattern_tableau(self, backend_kind):
        def script(detector):
            with detector.batch():
                # flip group (x, 2) into violation, heal group (y, 1)
                detector.update(5, {"C": "c9"})
                detector.update(3, {"C": "c1"})
            # touch the doubly-covered group: delete one of its members
            detector.delete(1)
            # and re-create the disagreement through an insert
            detector.insert({"A": "x", "B": "1", "C": "c7"})

        native, sql_delta = _replay(
            script, OVERLAP_RELATION, [OVERLAP_CFD], backend_kind
        )
        by_group = {
            violation.lhs_values: violation.pattern_index
            for violation in sql_delta.report().violations
        }
        # each group once, under the lowest pattern that covers it
        assert by_group == {("x", "1"): 0, ("x", "2"): 0}

    def test_two_wildcard_rhs_tableau(self, backend_kind):
        def script(detector):
            with detector.batch():
                detector.update(1, {"C": "c1"})  # heal the C disagreement
                detector.update(2, {"B": "b2"})  # heal the B disagreement
            detector.insert({"A": "y", "B": "b9", "C": "c9"})  # break both for A=y

        native, sql_delta = _replay(
            script, TWO_RHS_RELATION, [TWO_RHS_CFD], backend_kind
        )
        report = sql_delta.report()
        assert {v.rhs_attribute for v in report.violations} == {"B", "C"}
        assert all(v.lhs_values == ("y",) for v in report.violations)

    def test_delete_then_reinsert_same_tid_in_one_batch(self, backend_kind):
        # nets out to a replace: one delete + one insert under the same tid
        relation = generate_customers(20, seed=53)

        def script(detector):
            replacement = dict(detector.relation.get(0), CNT="Narnia")
            with detector.batch():
                detector.delete(0)
                new_tid = detector.insert(replacement)
                detector.update(new_tid, {"CITY": "Nowhere"})

        _replay(script, relation, paper_cfds(), backend_kind)

    value = st.sampled_from(["a", "b", None])
    operation = st.sampled_from(["insert", "delete", "update"])

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_property_random_batches(self, data):
        schema = RelationSchema.of("customer", ["CNT", "ZIP", "STR", "CC"])
        row_strategy = st.fixed_dictionaries(
            {"CNT": self.value, "ZIP": self.value, "STR": self.value, "CC": self.value}
        )
        initial = data.draw(st.lists(row_strategy, min_size=1, max_size=8))
        relation = Relation.from_rows(schema, initial)
        cfds = [
            parse_cfd("customer: [CNT='a', ZIP=_] -> [STR=_]"),
            parse_cfd("customer: [CC='a'] -> [CNT='b']"),
            parse_cfd("customer: [CC=_] -> [CNT=_]"),
        ]
        native, _ = _make_detector(relation, cfds, NATIVE_MODE, "memory")
        sql_delta, mirror = _make_detector(relation, cfds, SQL_DELTA_MODE, "sqlite")
        for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
            with native.batch(), sql_delta.batch():
                for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
                    op = data.draw(self.operation)
                    tids = native.relation.tids()
                    if op == "insert" or not tids:
                        row = data.draw(row_strategy)
                        native.insert(row)
                        sql_delta.insert(row)
                    elif op == "delete":
                        tid = data.draw(st.sampled_from(tids))
                        native.delete(tid)
                        sql_delta.delete(tid)
                    else:
                        tid = data.draw(st.sampled_from(tids))
                        attribute = data.draw(
                            st.sampled_from(["CNT", "ZIP", "STR", "CC"])
                        )
                        change = {attribute: data.draw(self.value)}
                        native.update(tid, change)
                        sql_delta.update(tid, change)
            assert _violation_keys(sql_delta.report()) == _violation_keys(
                native.report()
            )
        assert dict(mirror.iter_rows("customer")) == dict(sql_delta.relation.rows())
        mirror.close()


NULL_RELATION = null_cell_relation()
NULL_CFD = NULL_CELL_CFD


class TestNullParity:
    """NULL LHS/RHS cells: SQL-path detection must match the native rules.

    The native detector keeps NULL-LHS tuples out of every group and
    treats a NULL RHS under a constant pattern as a single-tuple violation;
    the SQL plans must agree on both dialects, including through the delta
    re-checks and the backend-resident member enumeration.
    """

    def test_static_null_tableau_parity(self, backend_kind):
        native, _ = _make_detector(NULL_RELATION, [NULL_CFD], NATIVE_MODE, "memory")
        sql_delta, mirror = _make_detector(
            NULL_RELATION, [NULL_CFD], SQL_DELTA_MODE, backend_kind
        )
        assert _violation_keys(sql_delta.report()) == _violation_keys(native.report())
        report = sql_delta.report()
        # the NULL-RHS constant-pattern tuple is a single violation; only
        # the fully non-NULL group violates the FD part
        assert {v.kind for v in report.violations} == {"single", "multi"}
        assert {v.lhs_values for v in report.violations} == {("w", "3"), ("x", "1")}
        if mirror is not None:
            mirror.close()

    def test_null_updates_parity(self, backend_kind):
        def script(detector):
            with detector.batch():
                detector.update(0, {"A": None})      # NULL an LHS cell
                detector.update(6, {"C": "c6"})      # un-NULL an RHS cell
            detector.update(8, {"C": "c9"})          # heal the constant violation
            with detector.batch():
                detector.update(0, {"A": "x"})       # restore the LHS cell
                detector.insert({"A": "q", "B": None, "C": "c1"})
                detector.update(4, {"C": None})      # NULL an RHS cell
        native, sql_delta = _replay(script, NULL_RELATION, [NULL_CFD], backend_kind)
        # the re-created group and the un-NULLed RHS group both violate now
        assert {v.lhs_values for v in sql_delta.report().violations} == {
            ("x", "1"),
            ("z", "2"),
        }

    def test_null_parity_against_batch_oracle(self, backend_kind):
        def script(detector):
            detector.update(2, {"A": "x"})  # pull a NULL-LHS tuple into a group
        native, sql_delta = _replay(script, NULL_RELATION, [NULL_CFD], backend_kind)
        oracle = ErrorDetector(sql_delta.database, use_sql=False).detect(
            "r", [NULL_CFD]
        )
        assert _violation_keys(sql_delta.report()) == _violation_keys(oracle)


class TestParameterBudget:
    """Chunking by bound parameters, not group count (the wide-LHS bug)."""

    WIDE_ATTRS = tuple(f"A{index}" for index in range(1, 7))

    def _wide_setup(self, groups=300):
        schema = RelationSchema.of("w", list(self.WIDE_ATTRS) + ["C"])
        rows = []
        for index in range(groups):
            row = {attr: f"v{index}_{attr}" for attr in self.WIDE_ATTRS}
            rows.append(dict(row, C="x"))
            rows.append(dict(row, C="x"))
        relation = Relation.from_rows(schema, rows)
        cfd = CFD(
            relation="w",
            lhs=self.WIDE_ATTRS,
            rhs=("C",),
            patterns=(
                PatternTuple.of({attr: "_" for attr in self.WIDE_ATTRS + ("C",)}),
            ),
            name="phi_wide",
        )
        return relation, cfd

    @pytest.mark.parametrize("delta_plan", ["auto", "portable"])
    def test_wide_lhs_regression_under_999_variable_cap(self, delta_plan):
        # a 6-attribute LHS at 300 affected groups used to ship
        # 200 * 6 + pattern placeholders per statement — over SQLite's
        # default 999-variable cap; chunks are now sized by the dialect's
        # parameter budget
        relation, cfd = self._wide_setup()
        database = Database()
        database.add_relation(relation.copy())
        mirror = SqliteBackend(max_parameters=999)
        if hasattr(mirror._conn, "setlimit"):
            # make SQLite actually enforce the historical cap
            mirror._conn.setlimit(sqlite3.SQLITE_LIMIT_VARIABLE_NUMBER, 999)
        mirror.add_relation(database.relation("w"))
        sql_delta = IncrementalDetector(
            database, "w", [cfd], mirror=mirror, mode=SQL_DELTA_MODE,
            delta_plan=delta_plan,
        )
        with sql_delta.batch():
            for tid in range(0, 2 * 300, 2):
                sql_delta.update(tid, {"C": f"y{tid % 3}"})
        native, _ = _make_detector(
            sql_delta.relation, [cfd], NATIVE_MODE, "memory"
        )
        assert _violation_keys(sql_delta.report()) == _violation_keys(native.report())
        assert sql_delta.report().total_violations() == 300
        mirror.close()

    def test_one_statement_never_exceeds_the_budget(self):
        relation, cfd = self._wide_setup(groups=50)
        database = Database()
        database.add_relation(relation.copy())
        mirror = SqliteBackend(max_parameters=120)
        mirror.add_relation(database.relation("w"))
        seen = []
        original = mirror.execute

        def counting_execute(sql, parameters=None):
            seen.append(len(tuple(parameters or ())))
            return original(sql, parameters)

        mirror.execute = counting_execute
        sql_delta = IncrementalDetector(
            database, "w", [cfd], mirror=mirror, mode=SQL_DELTA_MODE
        )
        with sql_delta.batch():
            for tid in range(0, 100, 2):
                sql_delta.update(tid, {"C": f"y{tid % 3}"})
        sql_delta.report()
        assert seen and max(seen) <= 120
        mirror.close()


class TestBackendResidentAssembly:
    """sql_delta report assembly must never read the working store."""

    _ForbiddenRelation = ForbiddenRelation

    def test_report_reads_zero_working_store(self, backend_kind):
        relation = generate_customers(60, seed=101)
        relation.update(0, {"CNT": "Narnia"})
        sql_delta, mirror = _make_detector(
            relation, paper_cfds(), SQL_DELTA_MODE, backend_kind
        )
        sql_delta.update(1, {"STR": "Elsewhere Road"})
        with sql_delta.batch():
            sql_delta.insert(dict(relation.get(2), CC="99"))
            sql_delta.delete(3)
        live = sql_delta.relation
        sql_delta.relation = self._ForbiddenRelation("customer")
        try:
            report = sql_delta.report()
        finally:
            sql_delta.relation = live
        assert report.total_violations() > 0
        assert report.tuple_count == len(live)
        native, _ = _make_detector(live, paper_cfds(), NATIVE_MODE, "memory")
        assert _violation_keys(report) == _violation_keys(native.report())
        if mirror is not None:
            mirror.close()

    def test_monitored_report_reads_zero_working_store(self):
        from repro.monitor.monitor import DataMonitor
        from repro.monitor.updates import Update

        relation = generate_customers(40, seed=103)
        database = Database()
        database.add_relation(relation.copy())
        mirror = SqliteBackend()
        mirror.add_relation(database.relation("customer"))
        monitor = DataMonitor(
            database, "customer", paper_cfds(), backend=mirror, mode=SQL_DELTA_MODE
        )
        monitor.apply(Update.modify(0, {"CNT": "Narnia"}))
        live = monitor._detector.relation
        monitor._detector.relation = self._ForbiddenRelation("customer")
        try:
            report = monitor.current_report()
        finally:
            monitor._detector.relation = live
        assert report.total_violations() > 0
        mirror.close()


class TestRowValuePlanGate:
    """The row-value semi-join path and its version/env gate."""

    @pytest.mark.skipif(
        not sqlite_row_values_supported(), reason=ROW_VALUE_SKIP_REASON
    )
    def test_row_value_plans_run_against_sqlite(self):
        relation = OVERLAP_RELATION.copy()
        database = Database()
        database.add_relation(relation)
        mirror = SqliteBackend()
        mirror.add_relation(database.relation("r"))
        sql_delta = IncrementalDetector(
            database, "r", [OVERLAP_CFD], mirror=mirror, mode=SQL_DELTA_MODE
        )
        assert sql_delta._generator.uses_row_values(
            sql_delta._units[0].cfd
        )
        seen = []
        original = mirror.execute

        def recording_execute(sql, parameters=None):
            seen.append(sql)
            return original(sql, parameters)

        mirror.execute = recording_execute
        sql_delta.update(0, {"C": "c9"})
        assert any("IN (VALUES" in sql for sql in seen)
        native, _ = _make_detector(
            sql_delta.relation, [OVERLAP_CFD], NATIVE_MODE, "memory"
        )
        assert _violation_keys(sql_delta.report()) == _violation_keys(native.report())
        mirror.close()

    def test_forced_portable_backend_skips_row_values(self):
        mirror = SqliteBackend(row_values=False)
        assert not mirror.dialect.supports_row_values
        database = Database()
        database.add_relation(OVERLAP_RELATION.copy())
        mirror.add_relation(database.relation("r"))
        sql_delta = IncrementalDetector(
            database, "r", [OVERLAP_CFD], mirror=mirror, mode=SQL_DELTA_MODE
        )
        assert not sql_delta._generator.uses_row_values(sql_delta._units[0].cfd)
        sql_delta.update(0, {"C": "c9"})
        native, _ = _make_detector(
            sql_delta.relation, [OVERLAP_CFD], NATIVE_MODE, "memory"
        )
        assert _violation_keys(sql_delta.report()) == _violation_keys(native.report())
        mirror.close()

    def test_env_gate_forces_portable(self, monkeypatch):
        monkeypatch.setenv("SEMANDAQ_SQLITE_ROW_VALUES", "0")
        assert not sqlite_row_values_supported()
        assert not SqliteDialect().supports_row_values
        monkeypatch.delenv("SEMANDAQ_SQLITE_ROW_VALUES")
        assert SqliteDialect(supports_row_values=False).supports_row_values is False


class TestLifecycle:
    def test_orphaned_tableaux_dropped_on_reopen(self, tmp_path):
        # a crash leaves the resident tableaux behind in a file-backed
        # store; reopening must not adopt them as user relations
        path = tmp_path / "orphan.db"
        mirror = SqliteBackend(path=str(path))
        relation = generate_customers(10, seed=57)
        mirror.add_relation(relation.copy())
        database = Database()
        database.add_relation(relation.copy())
        IncrementalDetector(
            database, "customer", paper_cfds(), mirror=mirror, mode=SQL_DELTA_MODE
        )
        assert any(
            name.startswith("__semandaq_incr_") for name in mirror.relation_names()
        )
        mirror.close()  # without detector.close(): the tableaux leak
        with SqliteBackend(path=str(path)) as reopened:
            assert reopened.relation_names() == ["customer"]

    def test_monitor_mode_tracks_detector_fallback(self):
        from repro.monitor.monitor import DataMonitor

        relation = generate_customers(10, seed=58)
        database = Database()
        database.add_relation(relation.copy())
        mirror = SqliteBackend()
        mirror.add_relation(database.relation("customer"))
        monitor = DataMonitor(
            database, "customer", paper_cfds(), backend=mirror, mode=SQL_DELTA_MODE
        )
        assert monitor.mode == SQL_DELTA_MODE
        monitor.detach_backend()
        assert monitor.mode == NATIVE_MODE
        assert monitor.summary()["incremental_mode"] == NATIVE_MODE
        mirror.close()

    def test_detach_falls_back_to_native(self):
        relation = generate_customers(30, seed=59)
        sql_delta, mirror = _make_detector(
            relation, paper_cfds(), SQL_DELTA_MODE, "sqlite"
        )
        sql_delta.update(0, {"CNT": "Narnia"})
        before = _violation_keys(sql_delta.report())
        sql_delta.detach_mirror()
        assert sql_delta.mode == NATIVE_MODE
        assert sql_delta.mirror is None
        # the resident tableaux were dropped from the former query backend
        assert not any(
            name.startswith("__semandaq_incr_") for name in mirror.relation_names()
        )
        # detached detectors keep working, against the working store only
        assert _violation_keys(sql_delta.report()) == before
        sql_delta.update(0, {"CNT": relation.get(0)["CNT"]})
        assert sql_delta.report().is_clean()
        mirror.close()

    def test_mark_resynced_rebuilds_from_backend(self):
        relation = generate_customers(30, seed=61)
        sql_delta, mirror = _make_detector(
            relation, paper_cfds(), SQL_DELTA_MODE, "sqlite"
        )

        def exploding(name, batch):
            raise RuntimeError("disk full")

        original = mirror.apply_delta_batch
        mirror.apply_delta_batch = exploding
        with pytest.raises(RuntimeError):
            sql_delta.update(0, {"CNT": "Narnia"})
        mirror.apply_delta_batch = original
        assert sql_delta.mirror_desynced
        # the owner's recovery path: bulk re-sync, then rebuild the state
        mirror.add_relation(sql_delta.relation, replace=True)
        sql_delta.mark_resynced()
        assert not sql_delta.mirror_desynced
        native, _ = _make_detector(
            sql_delta.relation, paper_cfds(), NATIVE_MODE, "memory"
        )
        assert _violation_keys(sql_delta.report()) == _violation_keys(native.report())
        mirror.close()

    def test_close_drops_resident_tableaux(self):
        relation = generate_customers(10, seed=67)
        sql_delta, mirror = _make_detector(
            relation, paper_cfds(), SQL_DELTA_MODE, "sqlite"
        )
        assert any(
            name.startswith("__semandaq_incr_") for name in mirror.relation_names()
        )
        sql_delta.close()
        assert not any(
            name.startswith("__semandaq_incr_") for name in mirror.relation_names()
        )
        mirror.close()

    def test_detector_stays_usable_after_close(self):
        # close() releases the tableaux but the detector keeps working:
        # updates still ship to the mirror and detection falls back to the
        # (lazily rebuilt) native state, with no spurious desync flag
        relation = generate_customers(20, seed=69)
        sql_delta, mirror = _make_detector(
            relation, paper_cfds(), SQL_DELTA_MODE, "sqlite"
        )
        sql_delta.close()
        assert sql_delta.mode == NATIVE_MODE
        sql_delta.update(0, {"CNT": "Narnia"})
        assert not sql_delta.mirror_desynced
        assert mirror.get_row("customer", 0)["CNT"] == "Narnia"
        native, _ = _make_detector(
            sql_delta.relation, paper_cfds(), NATIVE_MODE, "memory"
        )
        assert _violation_keys(sql_delta.report()) == _violation_keys(native.report())
        mirror.close()

    def test_nested_batch_rejected(self):
        relation = generate_customers(5, seed=71)
        native, _ = _make_detector(relation, paper_cfds(), NATIVE_MODE, "memory")
        with native.batch():
            with pytest.raises(DetectionError):
                with native.batch():
                    pass  # pragma: no cover

    def test_shared_memory_mode_keeps_user_catalog_clean(self):
        # with no mirror, the resident tableaux live in a private shadow
        # catalog sharing the live relation — never in the user's database
        relation = generate_customers(20, seed=73)
        sql_delta, _ = _make_detector(relation, paper_cfds(), SQL_DELTA_MODE, "memory")
        assert sql_delta.database.relation_names() == ["customer"]
        # the shadow still sees working-store mutations live
        sql_delta.update(0, {"CNT": "Narnia"})
        assert sql_delta.report().total_violations() > 0

    def test_failed_recheck_rebuilds_consistent_state(self):
        relation = generate_customers(30, seed=79)
        sql_delta, mirror = _make_detector(
            relation, paper_cfds(), SQL_DELTA_MODE, "sqlite"
        )
        original_execute = mirror.execute
        calls = {"remaining_failures": 1}

        def flaky_execute(sql, parameters=None):
            if calls["remaining_failures"] > 0:
                calls["remaining_failures"] -= 1
                raise RuntimeError("database is locked")
            return original_execute(sql, parameters)

        mirror.execute = flaky_execute
        with pytest.raises(RuntimeError):
            sql_delta.update(0, {"CNT": "Narnia"})
        # the batch shipped and the torn re-check state was rebuilt from
        # full queries, so the detector is consistent, not desynced
        assert not sql_delta.mirror_desynced
        native, _ = _make_detector(
            sql_delta.relation, paper_cfds(), NATIVE_MODE, "memory"
        )
        assert _violation_keys(sql_delta.report()) == _violation_keys(native.report())
        mirror.close()

    def test_large_batch_recheck_is_chunked(self):
        # an OR-chain with one disjunct per touched tuple would blow
        # SQLite's expression-depth cap (1000) on big batches; re-checks
        # run in chunks instead
        schema = RelationSchema.of("r", ["A", "B"])
        rows = [{"A": f"g{i % 600}", "B": "x"} for i in range(1200)]
        relation = Relation.from_rows(schema, rows)
        cfd = parse_cfd("r: [A=_] -> [B=_]")
        native, _ = _make_detector(relation, [cfd], NATIVE_MODE, "memory")
        sql_delta, mirror = _make_detector(relation, [cfd], SQL_DELTA_MODE, "sqlite")
        for detector in (native, sql_delta):
            with detector.batch():
                for tid in range(1100):
                    detector.update(tid, {"B": f"y{tid % 3}"})
        assert _violation_keys(sql_delta.report()) == _violation_keys(native.report())
        assert sql_delta.report().total_violations() > 0
        mirror.close()

    def test_two_detectors_on_one_backend_do_not_clobber(self):
        # a retired detector (still held by user code) and its replacement
        # share the relation and the backend; each owns its own resident
        # tableaux, so closing one must not break the other
        relation = generate_customers(20, seed=97)
        database = Database()
        database.add_relation(relation.copy())
        mirror = SqliteBackend()
        mirror.add_relation(database.relation("customer"))
        old = IncrementalDetector(
            database, "customer", paper_cfds(), mirror=mirror, mode=SQL_DELTA_MODE
        )
        new = IncrementalDetector(
            database, "customer", paper_cfds(), mirror=mirror, mode=SQL_DELTA_MODE
        )
        old.close()
        # the new detector's tableaux survived the old one's teardown
        new.update(0, {"CNT": "Narnia"})
        assert new.report().total_violations() > 0
        new.close()
        mirror.close()

    def test_constant_rhs_units_skip_delta_qv(self):
        # a constant-RHS-only CFD can never have multi-tuple violations:
        # each update batch should cost exactly one delta Q_C round trip
        schema = RelationSchema.of("r", ["A", "C"])
        relation = Relation.from_rows(
            schema, [{"A": "x", "C": "c1"}, {"A": "y", "C": "c2"}]
        )
        cfd = CFD(
            relation="r",
            lhs=("A",),
            rhs=("C",),
            patterns=(PatternTuple.of({"A": "x", "C": "c1"}),),
            name="phi_const",
        )
        sql_delta, mirror = _make_detector(relation, [cfd], SQL_DELTA_MODE, "sqlite")
        sql_delta.reset_cost_counter()
        sql_delta.update(0, {"C": "zz"})
        assert sql_delta.delta_queries == 1
        assert [v.kind for v in sql_delta.report().violations] == ["single"]
        mirror.close()
