"""The detection plan-variant layer: selection, shapes, cache keys, parity.

Three plan families compile the paper's ``Q_C``/``Q_V`` pair: the legacy
tableau-joined form, the sargable per-pattern specialization, and the
one-pass window family.  These tests pin (a) the auto-selection and its
clean fallback on dialects without window support, (b) the generated SQL
shapes, (c) the variant-carrying prepared-plan cache keys — flipping
``detect_plan`` mid-session must never serve a stale shape — and (d)
report identity across every family on both backends, including the
restricted ``detect_for_tuples`` path and the ``sql_delta`` re-checks.
"""

import pytest

from repro import Semandaq, SemandaqConfig
from repro.backends import MemoryBackend, SqliteBackend
from repro.backends.dialect import MEMORY_DIALECT, SqliteDialect
from repro.core.cfd import CFD
from repro.core.parser import parse_cfd
from repro.core.pattern import PatternTuple
from repro.detection.detector import ErrorDetector
from repro.detection.incremental import IncrementalDetector
from repro.detection.sqlgen import (
    DETECT_PLAN_ENV,
    DETECT_PLANS,
    DetectionSqlGenerator,
    default_detect_plan,
    resolve_detect_plan,
)
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.errors import ConfigurationError, DetectionError

SCHEMA = RelationSchema.of("r", ["A", "B", "C", "D"])


def _relation():
    return Relation.from_rows(
        SCHEMA,
        [
            {"A": "x", "B": "1", "C": "c1", "D": "d1"},
            {"A": "x", "B": "1", "C": "c2", "D": "d1"},  # group (x,1) disagrees on C
            {"A": "y", "B": "2", "C": "c1", "D": "d9"},  # wrong D under pattern 1
            {"A": "y", "B": "2", "C": "c1", "D": "d2"},
            {"A": "z", "B": None, "C": "c3", "D": "d3"},  # NULL LHS: in no group
            {"A": "z", "B": "3", "C": None, "D": "d3"},  # NULL RHS
        ],
    )


def _cfds():
    # overlapping patterns, a constant-LHS + constant-RHS pattern, and a
    # wildcard-only pattern — exercises both Q_C and Q_V in every family
    return [
        CFD(
            relation="r",
            lhs=("A", "B"),
            rhs=("C",),
            patterns=(
                PatternTuple.of({"A": "_", "B": "_", "C": "_"}),
                PatternTuple.of({"A": "x", "B": "_", "C": "_"}),
            ),
            name="phi_var",
        ),
        CFD(
            relation="r",
            lhs=("A", "B"),
            rhs=("D",),
            patterns=(
                PatternTuple.of({"A": "y", "B": "2", "D": "d2"}),
                PatternTuple.of({"A": "_", "B": "_", "D": "_"}),
            ),
            name="phi_const",
        ),
    ]


def _keys(report):
    return sorted(
        (v.cfd_id, v.kind, v.tids, v.rhs_attribute, v.pattern_index, v.lhs_values)
        for v in report.violations
    )


class TestResolution:
    def test_legacy_and_sargable_pass_through_everywhere(self):
        for dialect in (MEMORY_DIALECT, SqliteDialect()):
            assert resolve_detect_plan("legacy", dialect) == "legacy"
            assert resolve_detect_plan("sargable", dialect) == "sargable"

    def test_auto_resolves_to_window_on_modern_sqlite(self):
        dialect = SqliteDialect(supports_window_functions=True)
        assert resolve_detect_plan("auto", dialect) == "window"
        assert resolve_detect_plan("window", dialect) == "window"

    def test_window_falls_back_to_legacy_without_support(self):
        # the embedded engine and a simulated pre-3.25 SQLite
        old_sqlite = SqliteDialect(supports_window_functions=False)
        for dialect in (MEMORY_DIALECT, old_sqlite):
            assert resolve_detect_plan("auto", dialect) == "legacy"
            assert resolve_detect_plan("window", dialect) == "legacy"

    def test_unknown_plan_rejected(self):
        with pytest.raises(DetectionError, match="unknown detect_plan"):
            resolve_detect_plan("bogus", MEMORY_DIALECT)

    def test_env_variable_is_the_default(self, monkeypatch):
        monkeypatch.delenv(DETECT_PLAN_ENV, raising=False)
        assert default_detect_plan() == "auto"
        monkeypatch.setenv(DETECT_PLAN_ENV, "legacy")
        assert default_detect_plan() == "legacy"
        monkeypatch.setenv(DETECT_PLAN_ENV, "nonsense")
        assert default_detect_plan() == "auto"

    def test_sqlite_backend_window_functions_override(self):
        backend = SqliteBackend(window_functions=False)
        try:
            generator = DetectionSqlGenerator(
                SCHEMA, dialect=backend.dialect, detect_plan="auto"
            )
            assert generator.detect_plan == "legacy"
        finally:
            backend.close()

    def test_config_validates_detect_plan(self):
        SemandaqConfig(detect_plan="sargable").validate()
        SemandaqConfig(detect_plan=None).validate()
        with pytest.raises(ConfigurationError, match="unknown detect_plan"):
            SemandaqConfig(detect_plan="bogus").validate()


class TestGeneratedShapes:
    @pytest.fixture
    def generator(self):
        def make(plan):
            return DetectionSqlGenerator(
                SCHEMA, dialect=SqliteDialect(), detect_plan=plan
            )

        return make

    def test_sargable_splits_constant_patterns(self, generator):
        gen = generator("sargable")
        cfd = _cfds()[1]  # one constant-RHS pattern, one wildcard-only
        queries = gen.plan_single_queries(cfd, "tab")
        assert [q.kind for q in queries] == ["q_c_sargable"]
        assert queries[0].pattern_index == 0
        # the constants are bound, the tableau is gone
        assert "tab" not in queries[0].sql
        assert "t.A = ?" in queries[0].sql and "t.B = ?" in queries[0].sql
        assert queries[0].parameters == ("y", "2", "d2")

    def test_wildcard_only_patterns_collapse_to_one_grouped_query(self, generator):
        gen = generator("sargable")
        cfd = CFD(
            relation="r",
            lhs=("A",),
            rhs=("C",),
            patterns=(
                PatternTuple.of({"A": "_", "C": "_"}),
                PatternTuple.of({"A": "_", "C": "_"}),
            ),
            name="phi_dup",
        )
        queries = gen.plan_multi_queries(cfd, "tab")
        # identical renderings dedupe to the lowest pattern index
        assert len(queries) == 1
        assert queries[0].pattern_index == 0
        assert queries[0].kind == "q_v_sargable"

    def test_window_multi_is_one_pass(self, generator):
        gen = generator("window")
        assert gen.one_pass_multi
        cfd = _cfds()[0]
        queries = gen.plan_multi_queries(cfd, "tab")
        assert {q.kind for q in queries} == {"q_window"}
        # member rows come back directly: tid + lhs_* carry columns
        for query in queries:
            assert "t._tid AS tid" in query.sql
            assert "lhs_A" in query.sql and "lhs_B" in query.sql
            assert "HAVING COUNT(DISTINCT" in query.sql

    def test_legacy_keeps_the_tableau_join(self, generator):
        gen = generator("legacy")
        assert not gen.one_pass_multi
        cfd = _cfds()[0]
        queries = gen.plan_multi_queries(cfd, "tab")
        assert len(queries) == 1
        assert queries[0].kind == "q_v"
        assert "tab" in queries[0].sql


class TestVariantCacheKeys:
    def test_flipping_detect_plan_never_serves_a_stale_shape(self):
        # satellite 6: the cache key carries the variant, so the same CFD
        # compiled under two families yields two distinct cached plans —
        # and flipping back is a hit, not a rebuild
        gen = DetectionSqlGenerator(
            SCHEMA, dialect=SqliteDialect(), detect_plan="legacy"
        )
        cfd = _cfds()[0]
        legacy = gen.plan_multi_queries(cfd, "tab")
        size_after_legacy = gen.plan_cache_size()
        gen.set_detect_plan("window")
        window = gen.plan_multi_queries(cfd, "tab")
        assert {q.sql for q in legacy}.isdisjoint({q.sql for q in window})
        assert gen.plan_cache_size() > size_after_legacy
        gen.set_detect_plan("legacy")
        again = gen.plan_multi_queries(cfd, "tab")
        assert [q.sql for q in again] == [q.sql for q in legacy]
        # the flip-back compiled nothing new
        assert gen.plan_cache_size() == size_after_legacy + len(window)

    def test_per_variant_cache_counters(self):
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry(enabled=True)
        gen = DetectionSqlGenerator(
            SCHEMA,
            dialect=SqliteDialect(),
            detect_plan="sargable",
            telemetry=telemetry,
        )
        cfd = _cfds()[0]
        gen.plan_multi_queries(cfd, "tab")
        gen.plan_multi_queries(cfd, "tab")
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["plan_cache.misses.sargable"] >= 1
        assert counters["plan_cache.hits.sargable"] >= 1


class TestCrossVariantParity:
    @pytest.mark.parametrize("make_backend", [None, SqliteBackend], ids=["memory", "sqlite"])
    def test_batch_reports_identical_across_families(self, make_backend):
        relation = _relation()
        cfds = _cfds()
        reports = {}
        for plan in DETECT_PLANS:
            if make_backend is None:
                database = Database()
                database.add_relation(relation.copy())
                backend = MemoryBackend(database)
            else:
                backend = make_backend()
                backend.add_relation(relation.copy())
            detector = ErrorDetector(backend, detect_plan=plan)
            reports[plan] = _keys(detector.detect("r", cfds))
            backend.close()
        assert (
            reports["legacy"]
            == reports["sargable"]
            == reports["window"]
            == reports["auto"]
        )
        assert reports["legacy"]  # the workload does violate

    @pytest.mark.parametrize("plan", ["legacy", "sargable", "window"])
    def test_detect_for_tuples_matches_filtered_full_detect(self, plan):
        backend = SqliteBackend()
        backend.add_relation(_relation())
        cfds = _cfds()
        detector = ErrorDetector(backend, detect_plan=plan)
        full = detector.detect("r", cfds)
        for tid in range(6):
            restricted = detector.detect_for_tuples("r", cfds, [tid])
            expected = sorted(
                key
                for key in _keys(full)
                if tid in key[2]
            )
            assert _keys(restricted) == expected, (plan, tid)
        backend.close()

    @pytest.mark.parametrize("plan", ["legacy", "sargable", "window"])
    def test_sql_delta_rechecks_agree_with_batch(self, plan):
        database = Database()
        database.add_relation(_relation())
        cfds = _cfds()
        mirror = SqliteBackend()
        mirror.add_relation(database.relation("r").copy())
        detector = IncrementalDetector(
            database, "r", cfds, mirror=mirror, mode="sql_delta", detect_plan=plan
        )
        detector.update(1, {"C": "c1"})  # heal group (x, 1)
        detector.update(3, {"D": "d9"})  # new single + D-group split
        incremental = _keys(detector.report())
        batch = ErrorDetector(mirror, detect_plan=plan).detect("r", cfds)
        assert incremental == _keys(batch)
        detector.close()
        mirror.close()

    def test_facade_config_threads_the_plan(self, customer_relation, customer_cfds):
        reports = {}
        for plan in ("legacy", "window"):
            system = Semandaq(
                SemandaqConfig(backend="sqlite", telemetry=True, detect_plan=plan)
            )
            system.register_relation(customer_relation.copy())
            system.add_cfds(customer_cfds)
            reports[plan] = _keys(system.detect("customer"))
            counters = system.metrics()["counters"]
            assert counters[f"detect.plan_variant.{plan}"] >= 1
            system.close()
        assert reports["legacy"] == reports["window"]
