"""Tests for violation records and the violation report."""

import pytest

from repro.detection.violations import MULTI, SINGLE, Violation, ViolationReport


def single(cfd_id, tid, attr="CNT", lhs=("CC",), lhs_values=("44",)):
    return Violation(
        cfd_id=cfd_id, kind=SINGLE, tids=(tid,), rhs_attribute=attr,
        lhs_attributes=lhs, lhs_values=lhs_values,
    )


def multi(cfd_id, tids, attr="STR", lhs=("CNT", "ZIP"), lhs_values=("UK", "EH1")):
    return Violation(
        cfd_id=cfd_id, kind=MULTI, tids=tuple(tids), rhs_attribute=attr,
        lhs_attributes=lhs, lhs_values=lhs_values,
    )


@pytest.fixture
def report():
    return ViolationReport(
        relation="customer",
        violations=[
            single("phi4", 4),
            multi("phi2", (0, 1)),
            multi("phi3", (0, 1, 4)),
        ],
        tuple_count=6,
        cfd_ids=("phi2", "phi3", "phi4"),
    )


class TestViolation:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            Violation(cfd_id="x", kind="weird", tids=(1,), rhs_attribute="A")
        with pytest.raises(ValueError):
            Violation(cfd_id="x", kind=SINGLE, tids=(1, 2), rhs_attribute="A")
        with pytest.raises(ValueError):
            Violation(cfd_id="x", kind=MULTI, tids=(1,), rhs_attribute="A")

    def test_involves_and_flags(self):
        violation = multi("phi2", (0, 1))
        assert violation.involves(0) and not violation.involves(5)
        assert violation.is_multi and not violation.is_single

    def test_to_dict(self):
        data = single("phi4", 4).to_dict()
        assert data["cfd"] == "phi4" and data["tids"] == [4]


class TestViolationReport:
    def test_vio_follows_paper_definition(self, report):
        vio = report.vio()
        # tuple 0: phi2 group of 2 (+1) and phi3 group of 3 (+2) = 3
        assert vio[0] == 3
        assert vio[1] == 3
        # tuple 4: one single violation (+1) and phi3 group of 3 (+2) = 3
        assert vio[4] == 3
        assert report.vio_of(2) == 0

    def test_dirty_and_clean_counts(self, report):
        assert report.dirty_tids() == {0, 1, 4}
        assert report.clean_tid_count() == 3
        assert not report.is_clean()

    def test_single_and_multi_views(self, report):
        assert len(report.single_violations()) == 1
        assert len(report.multi_violations()) == 2

    def test_violations_for_and_cfds_violated_by(self, report):
        assert len(report.violations_for(0)) == 2
        assert report.cfds_violated_by(0) == ["phi2", "phi3"]
        assert report.cfds_violated_by(2) == []

    def test_attributes_implicated(self, report):
        assert report.attributes_implicated(4) == {"CNT", "CC", "STR", "ZIP"}

    def test_per_cfd_counts(self, report):
        counts = report.per_cfd_counts()
        assert counts["phi4"] == {"single": 1, "multi": 0, "tuples": 1}
        assert counts["phi3"]["tuples"] == 3

    def test_to_dict_round(self, report):
        data = report.to_dict()
        assert data["tuple_count"] == 6
        assert len(data["violations"]) == 3
        assert data["vio"]["0"] == 3

    def test_merged_with_deduplicates(self, report):
        other = ViolationReport(
            relation="customer",
            violations=[single("phi4", 4), single("phi4", 2)],
            tuple_count=6,
            cfd_ids=("phi4",),
        )
        merged = report.merged_with(other)
        assert merged.total_violations() == 4
        assert set(merged.cfd_ids) == {"phi2", "phi3", "phi4"}

    def test_empty_report_is_clean(self):
        empty = ViolationReport(relation="r", tuple_count=0)
        assert empty.is_clean()
        assert empty.vio() == {}
        assert empty.clean_tid_count() == 0
