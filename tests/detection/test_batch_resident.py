"""Backend-resident batch detection: zero working-store reads and the
pushed-down ``detect_for_tuples``.

The batch ``ErrorDetector``'s SQL path must behave like the paper's
pushdown end to end: schema and row count come from catalog ops, the
``Q_C``/``Q_V``/members queries run inside the backend, and the report is
assembled from backend rows alone — enforced here by the
:class:`~tests.doubles.ForbiddenReadBackend` double on both backends.
``detect_for_tuples`` ships the tuple restriction down as delta plans and
must reproduce the old filter-after-detect semantics exactly, including
under an enforced 999-variable cap.
"""

import sqlite3

import pytest

from repro.backends import MemoryBackend, SqliteBackend
from repro.core.cfd import CFD
from repro.core.pattern import PatternTuple
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.detection.detector import ErrorDetector
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from tests.doubles import ForbiddenReadBackend
from tests.tableaux import NULL_CELL_CFD, null_cell_relation


def _violation_keys(report):
    """Full violation identity, including pattern index and LHS values."""
    return sorted(
        (
            violation.cfd_id,
            violation.kind,
            violation.tids,
            violation.rhs_attribute,
            violation.pattern_index,
            violation.lhs_values,
        )
        for violation in report.violations
    )


def _dirty_customers(size=120, seed=131):
    clean = generate_customers(size, seed=seed)
    return inject_noise(
        clean, rate=0.08, seed=seed + 1, attributes=["CNT", "CITY", "STR", "CC"]
    ).dirty


def _backend_for(kind, relation):
    """A loaded backend of ``kind`` plus a private native-oracle database."""
    database = Database()
    database.add_relation(relation.copy())
    if kind == "sqlite":
        backend = SqliteBackend()
        backend.add_relation(relation.copy())
    else:
        backend = MemoryBackend(database)
    return backend, database


def _filtered_oracle(database, relation_name, cfds, tids):
    """The old semantics: a full native detection filtered to ``tids``."""
    report = ErrorDetector(database, use_sql=False).detect(relation_name, cfds)
    wanted = set(tids)
    return sorted(
        key
        for key in _violation_keys(report)
        if wanted & set(key[2])
    )


@pytest.fixture(params=["memory", "sqlite"])
def backend_kind(request):
    return request.param


class TestZeroWorkingStoreReads:
    """detect() and detect_for_tuples() on the SQL path never ship rows back."""

    def test_detect_zero_reads(self, backend_kind):
        relation = _dirty_customers()
        backend, database = _backend_for(backend_kind, relation)
        detector = ErrorDetector(ForbiddenReadBackend(backend))
        report = detector.detect("customer", paper_cfds())
        assert report.total_violations() > 0
        assert report.tuple_count == len(relation)
        oracle = ErrorDetector(database, use_sql=False).detect(
            "customer", paper_cfds()
        )
        assert _violation_keys(report) == _violation_keys(oracle)
        backend.close()

    def test_detect_for_tuples_zero_reads(self, backend_kind):
        relation = _dirty_customers()
        backend, database = _backend_for(backend_kind, relation)
        detector = ErrorDetector(ForbiddenReadBackend(backend))
        full = ErrorDetector(database, use_sql=False).detect("customer", paper_cfds())
        wanted = sorted(full.dirty_tids())[:5] + [0, 1]
        report = detector.detect_for_tuples("customer", paper_cfds(), wanted)
        assert report.tuple_count == len(relation)
        assert _violation_keys(report) == _filtered_oracle(
            database, "customer", paper_cfds(), wanted
        )
        assert report.total_violations() > 0
        backend.close()

    def test_repeated_detect_zero_reads(self, backend_kind):
        # the per-relation generator and its plan cache persist across
        # calls; the second detect must stay backend-resident too
        relation = _dirty_customers(60, seed=137)
        backend, database = _backend_for(backend_kind, relation)
        detector = ErrorDetector(ForbiddenReadBackend(backend))
        first = detector.detect("customer", paper_cfds())
        second = detector.detect("customer", paper_cfds())
        assert _violation_keys(first) == _violation_keys(second)
        backend.close()


class TestDetectForTuplesPushdown:
    """Pushdown parity with the old filter-after-full-detect semantics."""

    def test_matches_filter_after_detect_on_customers(self, backend_kind):
        relation = _dirty_customers()
        backend, database = _backend_for(backend_kind, relation)
        detector = ErrorDetector(backend)
        full = ErrorDetector(database, use_sql=False).detect("customer", paper_cfds())
        dirty = sorted(full.dirty_tids())
        for wanted in ([], dirty[:1], dirty[:4], [0, 1, 2], list(relation.tids())):
            report = detector.detect_for_tuples("customer", paper_cfds(), wanted)
            assert _violation_keys(report) == _filtered_oracle(
                database, "customer", paper_cfds(), wanted
            )
            assert report.tuple_count == len(relation)
        backend.close()

    def test_restriction_travels_in_the_sql(self, backend_kind):
        relation = _dirty_customers(40, seed=139)
        backend, _database = _backend_for(backend_kind, relation)
        detector = ErrorDetector(backend)
        detector.detect_for_tuples("customer", paper_cfds(), [0, 1])
        assert detector.last_sql
        assert any("_tid IN" in sql for sql in detector.last_sql)
        backend.close()

    def test_unknown_tids_produce_empty_report(self, backend_kind):
        relation = _dirty_customers(30, seed=141)
        backend, _database = _backend_for(backend_kind, relation)
        detector = ErrorDetector(backend)
        report = detector.detect_for_tuples("customer", paper_cfds(), [10_000, 10_001])
        assert report.total_violations() == 0
        assert report.tuple_count == len(relation)
        backend.close()

    def test_null_rhs_tuple_does_not_drag_its_group_in(self, backend_kind):
        # tid 6 shares LHS values with the violating-adjacent (z, 2) group
        # but carries a NULL RHS, so it is not a *member*: the old filter
        # semantics exclude any group it does not belong to
        relation = null_cell_relation()
        backend, database = _backend_for(backend_kind, relation)
        detector = ErrorDetector(backend)
        for wanted in ([6], [2], [0], [8], [0, 6]):
            report = detector.detect_for_tuples("r", [NULL_CELL_CFD], wanted)
            assert _violation_keys(report) == _filtered_oracle(
                database, "r", [NULL_CELL_CFD], wanted
            )
        backend.close()

    def test_overlapping_patterns_keep_lowest_pattern_index(self, backend_kind):
        schema = RelationSchema.of("r", ["A", "B", "C"])
        relation = Relation.from_rows(
            schema,
            [
                {"A": "x", "B": "1", "C": "c1"},
                {"A": "x", "B": "1", "C": "c2"},  # violates patterns 0 and 1
                {"A": "y", "B": "1", "C": "c1"},
                {"A": "y", "B": "1", "C": "c3"},  # violates pattern 1 only
            ],
        )
        cfd = CFD(
            relation="r",
            lhs=("A", "B"),
            rhs=("C",),
            patterns=(
                PatternTuple.of({"A": "x", "B": "_", "C": "_"}),
                PatternTuple.of({"A": "_", "B": "_", "C": "_"}),
            ),
            name="phi_overlap",
        )
        backend, database = _backend_for(backend_kind, relation)
        report = ErrorDetector(backend).detect_for_tuples("r", [cfd], [0, 2])
        assert _violation_keys(report) == _filtered_oracle(
            database, "r", [cfd], [0, 2]
        )
        by_group = {v.lhs_values: v.pattern_index for v in report.violations}
        assert by_group == {("x", "1"): 0, ("y", "1"): 1}
        backend.close()

    WIDE_ATTRS = tuple(f"A{index}" for index in range(1, 7))

    def test_wide_lhs_chunking_under_999_variable_cap(self):
        # 300 wanted tuples over a 6-attribute LHS: the tid lists, group
        # restrictions and covering-members plans must all chunk by the
        # enforced parameter budget instead of blowing the variable cap
        schema = RelationSchema.of("w", list(self.WIDE_ATTRS) + ["C"])
        rows = []
        for index in range(300):
            row = {attr: f"v{index}_{attr}" for attr in self.WIDE_ATTRS}
            rows.append(dict(row, C="x"))
            rows.append(dict(row, C=f"y{index % 3}"))
        relation = Relation.from_rows(schema, rows)
        cfd = CFD(
            relation="w",
            lhs=self.WIDE_ATTRS,
            rhs=("C",),
            patterns=(
                PatternTuple.of({attr: "_" for attr in self.WIDE_ATTRS + ("C",)}),
            ),
            name="phi_wide",
        )
        database = Database()
        database.add_relation(relation.copy())
        backend = SqliteBackend(max_parameters=999)
        if hasattr(backend._conn, "setlimit"):
            backend._conn.setlimit(sqlite3.SQLITE_LIMIT_VARIABLE_NUMBER, 999)
        backend.add_relation(relation.copy())
        seen = []
        original = backend.execute

        def counting_execute(sql, parameters=None):
            seen.append(len(tuple(parameters or ())))
            return original(sql, parameters)

        backend.execute = counting_execute
        wanted = list(range(0, 600, 2))  # one member of every group
        report = ErrorDetector(backend).detect_for_tuples("w", [cfd], wanted)
        assert seen and max(seen) <= 999
        assert report.total_violations() == 300
        assert _violation_keys(report) == _filtered_oracle(
            database, "w", [cfd], wanted
        )
        backend.close()


class TestPreparedPlanCache:
    """The per-detector plan cache and its stale-plan invalidation."""

    def test_repeated_detect_hits_the_cache(self, backend_kind):
        relation = _dirty_customers(60, seed=149)
        backend, _database = _backend_for(backend_kind, relation)
        detector = ErrorDetector(backend)
        first = detector.detect("customer", paper_cfds())
        generator = detector._generators["customer"]
        misses_after_first = generator.plan_cache_misses
        second = detector.detect("customer", paper_cfds())
        assert _violation_keys(first) == _violation_keys(second)
        assert generator.plan_cache_hits > 0
        # the second pass re-rendered nothing (chunk shapes repeat exactly)
        assert generator.plan_cache_misses == misses_after_first
        backend.close()

    def test_reused_tableau_name_does_not_serve_stale_plans(self, backend_kind):
        # two different CFDs under the same registration slot get the same
        # positional tableau name; the first has no constant-RHS pattern
        # (its Q_C is a cached None), the second does — a stale cache hit
        # would silently drop its single-tuple violations
        schema = RelationSchema.of("r", ["A", "C"])
        relation = Relation.from_rows(
            schema, [{"A": "x", "C": "zz"}, {"A": "x", "C": "c1"}]
        )
        wildcard_only = CFD(
            relation="r",
            lhs=("A",),
            rhs=("C",),
            patterns=(PatternTuple.of({"A": "_", "C": "_"}),),
            name="phi_same_name",
        )
        constant_rhs = CFD(
            relation="r",
            lhs=("A",),
            rhs=("C",),
            patterns=(PatternTuple.of({"A": "x", "C": "c1"}),),
            name="phi_same_name",
        )
        backend, _database = _backend_for(backend_kind, relation)
        detector = ErrorDetector(backend)
        detector.detect("r", [wildcard_only])
        report = detector.detect("r", [constant_rhs])
        assert [v.kind for v in report.violations] == ["single"]
        assert report.violations[0].tids == (0,)
        backend.close()

    def test_claim_and_invalidate_sweep_tableau_scoped_plans(self):
        from repro.detection.sqlgen import DetectionSqlGenerator

        schema = RelationSchema.of("r", ["A", "C"])
        cfd = CFD(
            relation="r",
            lhs=("A",),
            rhs=("C",),
            patterns=(PatternTuple.of({"A": "x", "C": "c1"}),),
            name="phi_cache",
        )
        other = CFD(
            relation="r",
            lhs=("A",),
            rhs=("C",),
            patterns=(PatternTuple.of({"A": "_", "C": "_"}),),
            name="phi_cache",
        )
        generator = DetectionSqlGenerator(schema)
        generator.claim_tableau("__semandaq_tableau_0_C", cfd)
        first = generator.single_tuple_query(cfd, "__semandaq_tableau_0_C")
        assert first is not None
        assert generator.plan_cache_size() == 1
        # same CFD re-claims: plans survive and hit
        generator.claim_tableau("__semandaq_tableau_0_C", cfd)
        assert generator.single_tuple_query(cfd, "__semandaq_tableau_0_C") is first
        assert generator.plan_cache_hits == 1
        # a different CFD (same name!) takes the tableau: plans swept
        generator.claim_tableau("__semandaq_tableau_0_C", other)
        assert generator.plan_cache_size() == 0
        assert generator.single_tuple_query(other, "__semandaq_tableau_0_C") is None
        # explicit invalidation clears the cached None as well
        generator.invalidate_plans("__semandaq_tableau_0_C")
        assert generator.plan_cache_size() == 0
