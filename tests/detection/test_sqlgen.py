"""Tests for the CFD-to-SQL compiler."""

import pytest

from repro.backends.dialect import (
    MEMORY_DIALECT,
    SQLITE_DIALECT,
    SqliteDialect,
    sqlite_row_values_supported,
)
from repro.core.cfd import CFD
from repro.core.parser import parse_cfd
from repro.core.pattern import PatternTuple
from repro.core.tableau import tableau_to_relation
from repro.detection.sqlgen import DetectionSqlGenerator, tableau_relation_name
from repro.engine.database import Database
from repro.engine.types import AttributeDef, DataType, RelationSchema
from repro.errors import DetectionError
from tests.tableaux import ROW_VALUE_SKIP_REASON

SCHEMA = RelationSchema.of("customer", ["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"])


@pytest.fixture
def generator():
    return DetectionSqlGenerator(SCHEMA)


class TestSingleTupleQuery:
    def test_constant_rhs_produces_query(self, generator):
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        sql = generator.single_tuple_query(cfd, "tab")
        assert sql is not None
        assert "FROM customer t, tab tab" in sql
        assert "tab.CC IS NULL OR tab.CC = t.CC" in sql
        assert "t._tid AS tid" in sql

    def test_wildcard_rhs_produces_none(self, generator):
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        assert generator.single_tuple_query(cfd, "tab") is None

    def test_escapes_quotes_in_wildcards_and_constants(self):
        schema = RelationSchema.of("r", ["A", "B"])
        generator = DetectionSqlGenerator(schema)
        cfd = parse_cfd("r: [A='it''s'] -> [B='x']")
        sql = generator.single_tuple_query(cfd, "tab")
        assert "'it''s'" not in sql  # constants live in the tableau, not the SQL
        assert "IS NOT NULL" in sql


class TestMultiTupleQuery:
    def test_variable_rhs_produces_group_query(self, generator):
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        sql = generator.multi_tuple_query(cfd, "tab")
        assert "GROUP BY" in sql
        assert "HAVING COUNT(DISTINCT t.STR) > 1" in sql
        assert "t.CNT IS NOT NULL" in sql and "t.ZIP IS NOT NULL" in sql

    def test_constant_rhs_produces_none(self, generator):
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        assert generator.multi_tuple_query(cfd, "tab") is None

    def test_non_string_attributes_wrapped_in_concat(self):
        schema = RelationSchema(
            "orders",
            [AttributeDef("QUANTITY", DataType.INTEGER), AttributeDef("PRODUCT")],
        )
        generator = DetectionSqlGenerator(schema)
        cfd = parse_cfd("orders: [QUANTITY=_] -> [PRODUCT=_]")
        sql = generator.multi_tuple_query(cfd, "tab")
        assert "CONCAT(t.QUANTITY)" in sql

    def test_one_query_per_wildcard_rhs_attribute(self):
        from repro.core.cfd import CFD
        from repro.core.pattern import PatternTuple

        schema = RelationSchema.of("r", ["A", "B", "C"])
        generator = DetectionSqlGenerator(schema)
        merged = CFD(
            relation="r",
            lhs=("A",),
            rhs=("B", "C"),
            patterns=(PatternTuple.of({"A": "_", "B": "_", "C": "_"}),),
            name="phi",
        )
        queries = generator.multi_tuple_queries(merged, "tab")
        assert [query.rhs_attribute for query in queries] == ["B", "C"]
        assert "HAVING COUNT(DISTINCT t.B) > 1" in queries[0]
        assert "HAVING COUNT(DISTINCT t.C) > 1" in queries[1]
        # the bundle carries every Q_V, not just the first wildcard RHS
        bundle = generator.generate(merged, "tab")
        assert len(bundle.multi_sqls) == 2
        assert bundle.multi_sql is bundle.multi_sqls[0]
        assert bundle.all_sql() == [query.sql for query in queries]

    def test_explicit_rhs_attribute_selection(self, generator):
        from repro.core.cfd import CFD
        from repro.core.pattern import PatternTuple

        merged = CFD(
            relation="customer",
            lhs=("ZIP",),
            rhs=("STR", "CITY"),
            patterns=(
                PatternTuple.of({"ZIP": "_", "STR": "_", "CITY": "London"}),
            ),
            name="phi",
        )
        query = generator.multi_tuple_query(merged, "tab", rhs_attribute="STR")
        assert query.rhs_attribute == "STR"
        # CITY has no wildcard pattern, so no Q_V covers it
        assert generator.multi_tuple_query(merged, "tab", rhs_attribute="CITY") is None
        assert [q.rhs_attribute for q in generator.multi_tuple_queries(merged, "tab")] == [
            "STR"
        ]


class TestGeneratedSqlRuns:
    def test_queries_execute_on_engine(self, customer_relation):
        database = Database()
        database.add_relation(customer_relation)
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        tableau = tableau_to_relation(cfd, "tab_phi4")
        database.add_relation(tableau)
        generator = DetectionSqlGenerator(customer_relation.schema)
        queries = generator.generate(cfd, "tab_phi4")
        result = database.execute(queries.single_sql.sql, queries.single_sql.parameters)
        assert [row["tid"] for row in result.rows] == [4]

    def test_multi_query_executes_and_groups(self, customer_relation):
        database = Database()
        database.add_relation(customer_relation)
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        tableau = tableau_to_relation(cfd, "tab_phi2")
        database.add_relation(tableau)
        generator = DetectionSqlGenerator(customer_relation.schema)
        query = generator.multi_tuple_query(cfd, "tab_phi2")
        result = database.execute(query.sql, query.parameters)
        assert len(result.rows) == 1
        assert result.rows[0]["CNT"] == "UK"
        assert result.rows[0]["distinct_rhs"] == 2

    def test_group_members_query_parameterised(self, customer_relation):
        database = Database()
        database.add_relation(customer_relation)
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        generator = DetectionSqlGenerator(customer_relation.schema)
        query = generator.group_members_query(cfd)
        assert query.parameters == ()  # placeholders are bound by the caller
        result = database.execute(query.sql, ["UK", "EH4 1DT"])
        assert {row["tid"] for row in result.rows} == {0, 1}


class TestNaming:
    def test_tableau_relation_name_unique_per_index(self):
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        assert tableau_relation_name(cfd, 0) != tableau_relation_name(cfd, 1)

    def test_generate_bundles_everything(self, generator):
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        queries = generator.generate(cfd, "tab")
        assert queries.single_sql is not None
        assert queries.multi_sql is None
        assert queries.group_members_sql is not None
        assert queries.all_sql() == [queries.single_sql.sql]


def _two_lhs_cfd(relation="r"):
    return CFD(
        relation=relation,
        lhs=("A", "B"),
        rhs=("C",),
        patterns=(PatternTuple.of({"A": "_", "B": "_", "C": "_"}),),
        name="phi_two_lhs",
    )


TWO_LHS_SCHEMA = RelationSchema.of("r", ["A", "B", "C"])

_NO_ROW_VALUES = not sqlite_row_values_supported()


class TestDeltaPlans:
    """The dialect-branched, budget-chunked delta query plans."""

    def test_delta_qc_uses_in_list_and_carries_lhs(self):
        generator = DetectionSqlGenerator(TWO_LHS_SCHEMA, dialect=SqliteDialect())
        cfd = parse_cfd("r: [A='x', B=_] -> [C='c1']")
        query = generator.single_tuple_query_delta(cfd, "tab", 3)
        assert "t._tid IN (?, ?, ?)" in query.sql
        assert "t.A AS lhs_A" in query.sql and "t.B AS lhs_B" in query.sql
        # the non-delta Q_C keeps its historical column list
        assert "lhs_A" not in generator.single_tuple_query(cfd, "tab").sql

    def test_single_attribute_groups_use_flat_in_list_everywhere(self):
        cfd = parse_cfd("r: [A=_] -> [C=_]")
        for dialect in (MEMORY_DIALECT, SqliteDialect()):
            generator = DetectionSqlGenerator(TWO_LHS_SCHEMA, dialect=dialect)
            query = generator.multi_tuple_query_delta(cfd, "tab", "C", 4)
            assert "t.A IN (?, ?, ?, ?)" in query.sql
            assert "VALUES" not in query.sql

    @pytest.mark.skipif(_NO_ROW_VALUES, reason=ROW_VALUE_SKIP_REASON)
    def test_multi_attribute_groups_use_row_values_on_sqlite(self):
        generator = DetectionSqlGenerator(TWO_LHS_SCHEMA, dialect=SqliteDialect())
        cfd = _two_lhs_cfd()
        assert generator.uses_row_values(cfd)
        query = generator.multi_tuple_query_delta(cfd, "tab", "C", 2)
        assert "(t.A, t.B) IN (VALUES (?, ?), (?, ?))" in query.sql

    def test_portable_plan_forces_or_form(self):
        generator = DetectionSqlGenerator(
            TWO_LHS_SCHEMA, dialect=SqliteDialect(), delta_plan="portable"
        )
        cfd = _two_lhs_cfd()
        assert not generator.uses_row_values(cfd)
        query = generator.multi_tuple_query_delta(cfd, "tab", "C", 2)
        assert "VALUES" not in query.sql
        # SQLite's NULL-safe equality is its IS operator, bound once
        assert "t.A IS ?" in query.sql
        assert generator.flatten_group_keys(cfd, [("x", "y")]) == ("x", "y")

    def test_memory_or_form_is_null_safe_and_repeats_binds(self):
        generator = DetectionSqlGenerator(TWO_LHS_SCHEMA, dialect=MEMORY_DIALECT)
        cfd = _two_lhs_cfd()
        query = generator.multi_tuple_query_delta(cfd, "tab", "C", 1)
        assert "(t.A = ? OR (t.A IS NULL AND ? IS NULL))" in query.sql
        # the portable expansion mentions each bound value twice
        assert generator.flatten_group_keys(cfd, [("x", "y")]) == ("x", "x", "y", "y")

    def test_chunking_respects_parameter_budget(self):
        generator = DetectionSqlGenerator(
            TWO_LHS_SCHEMA, dialect=SqliteDialect(max_parameters=20)
        )
        cfd = _two_lhs_cfd()
        keys = [(f"a{i}", f"b{i}") for i in range(30)]
        plans = generator.delta_plans_multi(cfd, "tab", "C", keys)
        assert len(plans) > 1
        for plan in plans:
            assert plan.sql.count("?") == len(plan.parameters) <= 20
        # every group appears in exactly one plan
        bound = [value for plan in plans for value in plan.parameters]
        for key in keys:
            assert key[0] in bound and key[1] in bound

    def test_tid_chunking_respects_parameter_budget(self):
        generator = DetectionSqlGenerator(
            TWO_LHS_SCHEMA, dialect=SqliteDialect(max_parameters=10)
        )
        cfd = parse_cfd("r: [A=_, B=_] -> [C='c1']")
        plans = generator.delta_plans_single(cfd, "tab", list(range(25)))
        assert len(plans) > 1
        for plan in plans:
            assert plan.sql.count("?") == len(plan.parameters) <= 10

    def test_memory_dialect_is_unbounded_but_caps_or_chains(self):
        generator = DetectionSqlGenerator(TWO_LHS_SCHEMA, dialect=MEMORY_DIALECT)
        cfd = _two_lhs_cfd()
        # flat tid restriction: one statement regardless of batch size
        assert len(generator.delta_plans_single(
            parse_cfd("r: [A=_] -> [C='c1']"), "tab", list(range(1000))
        )) == 1
        # OR-of-conjunctions: chunked at the expression-depth cap
        keys = [(f"a{i}", f"b{i}") for i in range(450)]
        plans = generator.delta_plans_multi(cfd, "tab", "C", keys)
        assert len(plans) == 3  # ceil(450 / max_or_terms=200)

    def test_members_plans_execute_on_engine(self):
        database = Database()
        relation_rows = [
            {"A": "x", "B": "1", "C": "c1"},
            {"A": "x", "B": "1", "C": "c2"},
            {"A": "x", "B": "1", "C": None},  # NULL RHS: not a member
            {"A": "y", "B": "2", "C": "c1"},
        ]
        from repro.engine.relation import Relation

        database.add_relation(Relation.from_rows(TWO_LHS_SCHEMA, relation_rows))
        cfd = _two_lhs_cfd()
        database.add_relation(tableau_to_relation(cfd, "tab_members"))
        generator = DetectionSqlGenerator(TWO_LHS_SCHEMA, dialect=MEMORY_DIALECT)
        plans = generator.delta_plans_members(
            cfd, "tab_members", "C", 0, [("x", "1"), ("y", "2")]
        )
        rows = [
            row for plan in plans for row in database.query(plan.sql, plan.parameters)
        ]
        by_group = {}
        for row in rows:
            by_group.setdefault((row["lhs_A"], row["lhs_B"]), []).append(row["tid"])
        assert by_group == {("x", "1"): [0, 1], ("y", "2"): [3]}

    def test_empty_inputs_produce_no_plans(self):
        generator = DetectionSqlGenerator(TWO_LHS_SCHEMA, dialect=SqliteDialect())
        cfd = _two_lhs_cfd()
        assert generator.delta_plans_single(cfd, "tab", []) == []
        assert generator.delta_plans_multi(cfd, "tab", "C", []) == []
        assert generator.delta_plans_members(cfd, "tab", "C", 0, []) == []
        # a wildcard-RHS-only CFD has no Q_C, so no single plans either
        assert generator.delta_plans_single(cfd, "tab", [1, 2]) == []

    def test_invalid_delta_plan_rejected(self):
        with pytest.raises(DetectionError):
            DetectionSqlGenerator(TWO_LHS_SCHEMA, delta_plan="quantum")

    def test_budget_too_small_for_one_item_raises(self):
        # silently emitting an over-budget statement would only defer the
        # failure to an opaque "too many SQL variables" execution error
        generator = DetectionSqlGenerator(
            TWO_LHS_SCHEMA, dialect=SqliteDialect(max_parameters=1)
        )
        cfd = _two_lhs_cfd()  # each restricted group binds 2 values
        with pytest.raises(DetectionError, match="parameter budget"):
            generator.delta_plans_multi(cfd, "tab", "C", [("x", "y")])


class TestDialects:
    def test_memory_dialect_null_wildcard_and_uses_concat(self):
        schema = RelationSchema(
            "orders",
            [AttributeDef("QUANTITY", DataType.INTEGER), AttributeDef("PRODUCT")],
        )
        generator = DetectionSqlGenerator(schema, dialect=MEMORY_DIALECT)
        cfd = parse_cfd("orders: [QUANTITY='5'] -> [PRODUCT='gadget']")
        query = generator.single_tuple_query(cfd, "tab")
        assert "CONCAT(t.QUANTITY)" in query.sql
        assert "tab.QUANTITY IS NULL" in query.sql
        assert query.parameters == ()

    def test_sqlite_dialect_casts_and_parameterises(self):
        schema = RelationSchema(
            "orders",
            [AttributeDef("QUANTITY", DataType.INTEGER), AttributeDef("PRODUCT")],
        )
        generator = DetectionSqlGenerator(schema, dialect=SQLITE_DIALECT)
        cfd = parse_cfd("orders: [QUANTITY='5'] -> [PRODUCT='gadget']")
        query = generator.single_tuple_query(cfd, "tab")
        assert "CAST(t.QUANTITY AS TEXT)" in query.sql
        assert "CONCAT" not in query.sql
        # the NULL wildcard encoding binds nothing — the tableau join
        # tests tab.X IS NULL instead of comparing against a token
        assert query.parameters == ()
        assert query.sql.count("?") == 0

    def test_sqlite_multi_query_parameters_match_placeholders(self, customer_relation):
        generator = DetectionSqlGenerator(customer_relation.schema, dialect=SQLITE_DIALECT)
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        query = generator.multi_tuple_query(cfd, "tab")
        assert query.sql.count("?") == len(query.parameters) == 0
