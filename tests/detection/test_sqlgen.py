"""Tests for the CFD-to-SQL compiler."""

import pytest

from repro.backends.dialect import MEMORY_DIALECT, SQLITE_DIALECT
from repro.core.parser import parse_cfd
from repro.core.tableau import tableau_to_relation
from repro.detection.sqlgen import DetectionSqlGenerator, tableau_relation_name
from repro.engine.database import Database
from repro.engine.types import AttributeDef, DataType, RelationSchema

SCHEMA = RelationSchema.of("customer", ["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"])


@pytest.fixture
def generator():
    return DetectionSqlGenerator(SCHEMA)


class TestSingleTupleQuery:
    def test_constant_rhs_produces_query(self, generator):
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        sql = generator.single_tuple_query(cfd, "tab")
        assert sql is not None
        assert "FROM customer t, tab tab" in sql
        assert "tab.CC = '_' OR tab.CC = t.CC" in sql
        assert "t._tid AS tid" in sql

    def test_wildcard_rhs_produces_none(self, generator):
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        assert generator.single_tuple_query(cfd, "tab") is None

    def test_escapes_quotes_in_wildcards_and_constants(self):
        schema = RelationSchema.of("r", ["A", "B"])
        generator = DetectionSqlGenerator(schema)
        cfd = parse_cfd("r: [A='it''s'] -> [B='x']")
        sql = generator.single_tuple_query(cfd, "tab")
        assert "'it''s'" not in sql  # constants live in the tableau, not the SQL
        assert "IS NOT NULL" in sql


class TestMultiTupleQuery:
    def test_variable_rhs_produces_group_query(self, generator):
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        sql = generator.multi_tuple_query(cfd, "tab")
        assert "GROUP BY" in sql
        assert "HAVING COUNT(DISTINCT t.STR) > 1" in sql
        assert "t.CNT IS NOT NULL" in sql and "t.ZIP IS NOT NULL" in sql

    def test_constant_rhs_produces_none(self, generator):
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        assert generator.multi_tuple_query(cfd, "tab") is None

    def test_non_string_attributes_wrapped_in_concat(self):
        schema = RelationSchema(
            "orders",
            [AttributeDef("QUANTITY", DataType.INTEGER), AttributeDef("PRODUCT")],
        )
        generator = DetectionSqlGenerator(schema)
        cfd = parse_cfd("orders: [QUANTITY=_] -> [PRODUCT=_]")
        sql = generator.multi_tuple_query(cfd, "tab")
        assert "CONCAT(t.QUANTITY)" in sql

    def test_one_query_per_wildcard_rhs_attribute(self):
        from repro.core.cfd import CFD
        from repro.core.pattern import PatternTuple

        schema = RelationSchema.of("r", ["A", "B", "C"])
        generator = DetectionSqlGenerator(schema)
        merged = CFD(
            relation="r",
            lhs=("A",),
            rhs=("B", "C"),
            patterns=(PatternTuple.of({"A": "_", "B": "_", "C": "_"}),),
            name="phi",
        )
        queries = generator.multi_tuple_queries(merged, "tab")
        assert [query.rhs_attribute for query in queries] == ["B", "C"]
        assert "HAVING COUNT(DISTINCT t.B) > 1" in queries[0]
        assert "HAVING COUNT(DISTINCT t.C) > 1" in queries[1]
        # the bundle carries every Q_V, not just the first wildcard RHS
        bundle = generator.generate(merged, "tab")
        assert len(bundle.multi_sqls) == 2
        assert bundle.multi_sql is bundle.multi_sqls[0]
        assert bundle.all_sql() == [query.sql for query in queries]

    def test_explicit_rhs_attribute_selection(self, generator):
        from repro.core.cfd import CFD
        from repro.core.pattern import PatternTuple

        merged = CFD(
            relation="customer",
            lhs=("ZIP",),
            rhs=("STR", "CITY"),
            patterns=(
                PatternTuple.of({"ZIP": "_", "STR": "_", "CITY": "London"}),
            ),
            name="phi",
        )
        query = generator.multi_tuple_query(merged, "tab", rhs_attribute="STR")
        assert query.rhs_attribute == "STR"
        # CITY has no wildcard pattern, so no Q_V covers it
        assert generator.multi_tuple_query(merged, "tab", rhs_attribute="CITY") is None
        assert [q.rhs_attribute for q in generator.multi_tuple_queries(merged, "tab")] == [
            "STR"
        ]


class TestGeneratedSqlRuns:
    def test_queries_execute_on_engine(self, customer_relation):
        database = Database()
        database.add_relation(customer_relation)
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        tableau = tableau_to_relation(cfd, "tab_phi4")
        database.add_relation(tableau)
        generator = DetectionSqlGenerator(customer_relation.schema)
        queries = generator.generate(cfd, "tab_phi4")
        result = database.execute(queries.single_sql.sql, queries.single_sql.parameters)
        assert [row["tid"] for row in result.rows] == [4]

    def test_multi_query_executes_and_groups(self, customer_relation):
        database = Database()
        database.add_relation(customer_relation)
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        tableau = tableau_to_relation(cfd, "tab_phi2")
        database.add_relation(tableau)
        generator = DetectionSqlGenerator(customer_relation.schema)
        query = generator.multi_tuple_query(cfd, "tab_phi2")
        result = database.execute(query.sql, query.parameters)
        assert len(result.rows) == 1
        assert result.rows[0]["CNT"] == "UK"
        assert result.rows[0]["distinct_rhs"] == 2

    def test_group_members_query_parameterised(self, customer_relation):
        database = Database()
        database.add_relation(customer_relation)
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        generator = DetectionSqlGenerator(customer_relation.schema)
        query = generator.group_members_query(cfd)
        assert query.parameters == ()  # placeholders are bound by the caller
        result = database.execute(query.sql, ["UK", "EH4 1DT"])
        assert {row["tid"] for row in result.rows} == {0, 1}


class TestNaming:
    def test_tableau_relation_name_unique_per_index(self):
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        assert tableau_relation_name(cfd, 0) != tableau_relation_name(cfd, 1)

    def test_generate_bundles_everything(self, generator):
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        queries = generator.generate(cfd, "tab")
        assert queries.single_sql is not None
        assert queries.multi_sql is None
        assert queries.group_members_sql is not None
        assert queries.all_sql() == [queries.single_sql.sql]


class TestDialects:
    def test_memory_dialect_inlines_wildcard_and_uses_concat(self):
        schema = RelationSchema(
            "orders",
            [AttributeDef("QUANTITY", DataType.INTEGER), AttributeDef("PRODUCT")],
        )
        generator = DetectionSqlGenerator(schema, dialect=MEMORY_DIALECT)
        cfd = parse_cfd("orders: [QUANTITY='5'] -> [PRODUCT='gadget']")
        query = generator.single_tuple_query(cfd, "tab")
        assert "CONCAT(t.QUANTITY)" in query.sql
        assert "'_'" in query.sql
        assert query.parameters == ()

    def test_sqlite_dialect_casts_and_parameterises(self):
        schema = RelationSchema(
            "orders",
            [AttributeDef("QUANTITY", DataType.INTEGER), AttributeDef("PRODUCT")],
        )
        generator = DetectionSqlGenerator(schema, dialect=SQLITE_DIALECT)
        cfd = parse_cfd("orders: [QUANTITY='5'] -> [PRODUCT='gadget']")
        query = generator.single_tuple_query(cfd, "tab")
        assert "CAST(t.QUANTITY AS TEXT)" in query.sql
        assert "CONCAT" not in query.sql
        assert "'_'" not in query.sql  # wildcard travels as a parameter
        assert query.parameters == ("_", "_")
        assert query.sql.count("?") == len(query.parameters)

    def test_sqlite_multi_query_parameters_match_placeholders(self, customer_relation):
        generator = DetectionSqlGenerator(customer_relation.schema, dialect=SQLITE_DIALECT)
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        query = generator.multi_tuple_query(cfd, "tab")
        assert query.sql.count("?") == len(query.parameters) == 3
