"""Regression: a literal ``'_'`` constant must never be misread as a wildcard.

The pattern tableau used to encode wildcards as the literal ``_`` token,
so a pattern constant whose value is literally ``'_'`` (built with
``PatternValue.const("_")``, or parsed from data containing underscores)
satisfied the old SQL predicate ``(tab.X = '_' OR tab.X = t.X)`` for
*every* data value — the SQL paths treated it as a wildcard while the
native detector treated it as the constant it is, and the paths diverged.
Wildcards are now encoded as SQL NULL (``const(None)`` is rejected, so no
constant can collide); these tests pin the fix across every detection
path and the tableau round-trip.
"""

import pytest

from repro.backends import MemoryBackend, SqliteBackend
from repro.core.cfd import CFD
from repro.core.pattern import PatternTuple, PatternValue
from repro.core.tableau import relation_to_tableau, tableau_to_relation
from repro.detection.detector import ErrorDetector
from repro.detection.incremental import IncrementalDetector
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema

SCHEMA = RelationSchema.of("r", ["A", "B"])


def _relation():
    return Relation.from_rows(
        SCHEMA,
        [
            {"A": "_", "B": "ok"},     # matches the '_' constant, right B
            {"A": "_", "B": "bad"},    # matches the '_' constant, wrong B: violates
            {"A": "other", "B": "bad"},  # does NOT match: a wildcard misread
            {"A": "other", "B": "bad"},  # would drag these two in
        ],
    )


def _underscore_cfd():
    # [A='_'] -> [B='ok']: the LHS constant is the literal underscore
    return CFD(
        relation="r",
        lhs=("A",),
        rhs=("B",),
        patterns=(
            PatternTuple.of(
                {"A": PatternValue.const("_"), "B": PatternValue.const("ok")}
            ),
        ),
        name="phi_underscore",
    )


def _keys(report):
    return sorted(
        (v.cfd_id, v.kind, v.tids, v.rhs_attribute, v.pattern_index, v.lhs_values)
        for v in report.violations
    )


class TestEncoding:
    def test_underscore_constant_and_wildcard_encode_differently(self):
        cfd = CFD(
            relation="r",
            lhs=("A",),
            rhs=("B",),
            patterns=(
                PatternTuple.of(
                    {"A": PatternValue.const("_"), "B": PatternValue.wildcard()}
                ),
            ),
            name="phi",
        )
        row = tableau_to_relation(cfd).to_list()[0]
        assert row["A"] == "_"  # the constant stays the literal string
        assert row["B"] is None  # the wildcard is NULL

    def test_roundtrip_preserves_the_distinction(self):
        cfd = _underscore_cfd()
        rebuilt = relation_to_tableau(cfd, tableau_to_relation(cfd))
        value = rebuilt.patterns[0].value("A")
        assert value.is_constant and value.constant == "_"

    def test_const_none_rejected(self):
        # NULL is reserved for the wildcard encoding
        with pytest.raises(Exception):
            PatternValue.const(None)


class TestAllDetectionPaths:
    """Native, memory-SQL, sqlite-SQL (every plan family), incremental
    native and sql_delta must agree: only the genuine ``'_'`` rows violate."""

    def _expected(self):
        # tid 1 is the only violation: A='_' matches the constant, B != 'ok'
        return [("phi_underscore", "single", (1,), "B", 0, ("_",))]

    def test_native_path(self):
        database = Database()
        database.add_relation(_relation())
        report = ErrorDetector(database, use_sql=False).detect(
            "r", [_underscore_cfd()]
        )
        assert _keys(report) == self._expected()

    @pytest.mark.parametrize("plan", ["legacy", "sargable", "window"])
    def test_sql_paths_on_both_backends(self, plan):
        for make_backend in (None, SqliteBackend):
            if make_backend is None:
                database = Database()
                database.add_relation(_relation())
                backend = MemoryBackend(database)
            else:
                backend = make_backend()
                backend.add_relation(_relation())
            report = ErrorDetector(backend, detect_plan=plan).detect(
                "r", [_underscore_cfd()]
            )
            assert _keys(report) == self._expected(), (plan, backend.name)
            backend.close()

    @pytest.mark.parametrize("plan", ["legacy", "sargable", "window"])
    def test_restricted_detection(self, plan):
        backend = SqliteBackend()
        backend.add_relation(_relation())
        detector = ErrorDetector(backend, detect_plan=plan)
        restricted = detector.detect_for_tuples("r", [_underscore_cfd()], [1, 2])
        assert _keys(restricted) == self._expected()
        backend.close()

    def test_incremental_modes(self):
        for mode in ("native", "sql_delta"):
            database = Database()
            database.add_relation(_relation())
            mirror = None
            if mode == "sql_delta":
                mirror = SqliteBackend()
                mirror.add_relation(database.relation("r").copy())
            detector = IncrementalDetector(
                database, "r", [_underscore_cfd()], mirror=mirror, mode=mode
            )
            assert _keys(detector.report()) == self._expected(), mode
            # an update that makes a non-matching row match the constant
            detector.update(2, {"A": "_"})
            assert _keys(detector.report()) == [
                ("phi_underscore", "single", (1,), "B", 0, ("_",)),
                ("phi_underscore", "single", (2,), "B", 0, ("_",)),
            ], mode
            detector.close()
            if mirror is not None:
                mirror.close()

    def test_wildcard_rhs_with_underscore_data_groups_correctly(self):
        # wildcard-RHS Q_V over data whose LHS value is literally '_'
        relation = Relation.from_rows(
            SCHEMA,
            [
                {"A": "_", "B": "x"},
                {"A": "_", "B": "y"},  # group ('_') disagrees: violates
                {"A": "u", "B": "x"},
                {"A": "u", "B": "x"},  # agrees: clean
            ],
        )
        cfd = CFD(
            relation="r",
            lhs=("A",),
            rhs=("B",),
            patterns=(
                PatternTuple.of(
                    {"A": PatternValue.wildcard(), "B": PatternValue.wildcard()}
                ),
            ),
            name="phi_fd",
        )
        expected = [("phi_fd", "multi", (0, 1), "B", 0, ("_",))]
        database = Database()
        database.add_relation(relation.copy())
        assert _keys(ErrorDetector(database, use_sql=False).detect("r", [cfd])) == expected
        for plan in ("legacy", "sargable", "window"):
            backend = SqliteBackend()
            backend.add_relation(relation.copy())
            report = ErrorDetector(backend, detect_plan=plan).detect("r", [cfd])
            assert _keys(report) == expected, plan
            backend.close()
