"""Tests for the auditor's cleanliness classifications and statistics."""

import pytest

from repro.audit.metrics import (
    Cleanliness,
    classify_cells,
    classify_tuples,
    violation_statistics,
)
from repro.core.parser import parse_cfd
from repro.detection.detector import ErrorDetector
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema


@pytest.fixture
def report(customer_database, customer_cfds):
    return ErrorDetector(customer_database).detect("customer", customer_cfds)


class TestTupleClassification:
    def test_categories_follow_paper_definitions(self, customer_relation, customer_cfds, report):
        classification = classify_tuples(customer_relation, customer_cfds, report)
        # Joe and Mary (US) violate nothing; phi4 has a constant-RHS pattern
        # [CC='01'] -> [CNT='US'] that applies to them, so they are verified.
        assert classification.of(2) is Cleanliness.VERIFIED
        assert classification.of(3) is Cleanliness.VERIFIED
        # Anna has a single-tuple violation: dirty.
        assert classification.of(4) is Cleanliness.DIRTY
        # Bob is only involved in the phi3 multi-tuple violation and the bulk
        # of that group (Mike, Rick) agrees with his CNT=UK: arguably clean.
        assert classification.of(5) is Cleanliness.ARGUABLY

    def test_mike_and_rick_are_dirty(self, customer_relation, customer_cfds, report):
        classification = classify_tuples(customer_relation, customer_cfds, report)
        # Their phi2 violation is a 2-tuple group with no majority, so neither
        # can be argued clean.
        assert classification.of(0) is Cleanliness.DIRTY
        assert classification.of(1) is Cleanliness.DIRTY

    def test_counts_and_percentages(self, customer_relation, customer_cfds, report):
        classification = classify_tuples(customer_relation, customer_cfds, report)
        counts = classification.counts()
        assert sum(counts.values()) == 6
        percentages = classification.percentages()
        assert sum(percentages.values()) == pytest.approx(100.0)

    def test_cumulative_percentages_monotone(self, customer_relation, customer_cfds, report):
        classification = classify_tuples(customer_relation, customer_cfds, report)
        cumulative = classification.cumulative_percentages()
        assert (
            cumulative[Cleanliness.VERIFIED]
            <= cumulative[Cleanliness.PROBABLY]
            <= cumulative[Cleanliness.ARGUABLY]
        )

    def test_probably_clean_without_constant_cfd(self):
        schema = RelationSchema.of("r", ["A", "B"])
        relation = Relation.from_rows(schema, [{"A": "x", "B": "y"}])
        cfd = parse_cfd("r: [A=_] -> [B=_]")
        database = Database()
        database.add_relation(relation)
        report = ErrorDetector(database).detect("r", [cfd])
        classification = classify_tuples(relation, [cfd], report)
        assert classification.of(0) is Cleanliness.PROBABLY

    def test_majority_threshold_influences_arguably(self, customer_relation, customer_cfds, report):
        strict = classify_tuples(customer_relation, customer_cfds, report, majority=0.99)
        assert strict.of(5) is Cleanliness.DIRTY


class TestCellClassification:
    def test_dirty_cells_limited_to_rhs_attributes(self, customer_relation, customer_cfds, report):
        classification = classify_cells(customer_relation, customer_cfds, report)
        assert classification.counts["STR"][Cleanliness.DIRTY] == 2  # Mike & Rick
        assert classification.counts["NAME"][Cleanliness.DIRTY] == 0

    def test_arguably_clean_cells(self, customer_relation, customer_cfds, report):
        classification = classify_cells(customer_relation, customer_cfds, report)
        # Mike, Rick, Bob's CNT cells are involved only in the phi3 group where
        # the bulk agrees with them.
        assert classification.counts["CNT"][Cleanliness.ARGUABLY] == 3
        assert classification.counts["CNT"][Cleanliness.DIRTY] == 1  # Anna

    def test_verified_cells_from_constant_cfds(self, customer_relation, customer_cfds, report):
        classification = classify_cells(customer_relation, customer_cfds, report)
        # Joe's and Mary's CNT cells are covered by [CC='01'] -> [CNT='US'].
        assert classification.counts["CNT"][Cleanliness.VERIFIED] == 2

    def test_percentages_sum_to_100_per_attribute(self, customer_relation, customer_cfds, report):
        classification = classify_cells(customer_relation, customer_cfds, report)
        for attribute, percentages in classification.percentages().items():
            assert sum(percentages.values()) == pytest.approx(100.0)

    def test_dirtiest_attributes_ranking(self, customer_relation, customer_cfds, report):
        classification = classify_cells(customer_relation, customer_cfds, report)
        ranking = classification.dirtiest_attributes(top=2)
        assert ranking[0][0] == "STR"


class TestViolationStatistics:
    def test_statistics_fields(self, report):
        stats = violation_statistics(report)
        assert stats["single_violations"] == 1
        assert stats["multi_violations"] == 2
        assert stats["max_vio"] >= stats["avg_vio"] >= 0
        assert stats["max_group_size"] == 4
        assert stats["tuples_with_violations"] == 4

    def test_statistics_on_empty_report(self, customer_cfds):
        from repro.detection.violations import ViolationReport

        stats = violation_statistics(ViolationReport(relation="r", tuple_count=0))
        assert stats["max_vio"] == 0 and stats["avg_vio"] == 0
