"""Tests for the data quality map (Fig. 3)."""

import pytest

from repro.audit.quality_map import (
    DEFAULT_SHADES,
    build_quality_map,
    linear_boundaries,
    quantile_boundaries,
)
from repro.detection.detector import ErrorDetector
from repro.errors import SemandaqError


@pytest.fixture
def report(customer_database, customer_cfds):
    return ErrorDetector(customer_database).detect("customer", customer_cfds)


class TestBoundaries:
    def test_linear_boundaries_even_spacing(self):
        assert linear_boundaries(8, 5) == (2.0, 4.0, 6.0, 8.0)

    def test_linear_boundaries_zero_max(self):
        assert linear_boundaries(0, 3) == (1.0, 2.0)

    def test_linear_requires_two_levels(self):
        with pytest.raises(SemandaqError):
            linear_boundaries(5, 1)

    def test_quantile_boundaries_nondecreasing(self):
        boundaries = quantile_boundaries([1, 1, 2, 5, 9], 4)
        assert all(b1 <= b2 for b1, b2 in zip(boundaries, boundaries[1:]))

    def test_quantile_with_no_positive_values(self):
        assert quantile_boundaries([0, 0], 3) == (1.0, 2.0)


class TestQualityMap:
    def test_clean_tuples_get_bucket_zero(self, customer_relation, report):
        quality_map = build_quality_map(customer_relation, report)
        assert quality_map.bucket_of(2) == 0
        assert quality_map.shade_of(2) == "clean"

    def test_dirtier_tuples_get_darker_buckets(self, customer_relation, report):
        quality_map = build_quality_map(customer_relation, report)
        assert quality_map.bucket_of(4) >= quality_map.bucket_of(5) > 0

    def test_histogram_covers_all_tuples(self, customer_relation, report):
        quality_map = build_quality_map(customer_relation, report)
        assert sum(quality_map.histogram().values()) == len(customer_relation)

    def test_dirtiest_listing(self, customer_relation, report):
        quality_map = build_quality_map(customer_relation, report)
        dirtiest = quality_map.dirtiest(top=3)
        assert dirtiest[0][1] == max(quality_map.vio.values())
        assert all(count > 0 for _tid, count in dirtiest)

    def test_cell_shades(self, customer_relation, report):
        quality_map = build_quality_map(customer_relation, report)
        assert quality_map.cell_shade(0, "STR") != "clean"
        assert quality_map.cell_shade(0, "NAME") == "clean"

    def test_quantile_strategy(self, customer_relation, report):
        quality_map = build_quality_map(customer_relation, report, strategy="quantile")
        assert sum(quality_map.histogram().values()) == len(customer_relation)

    def test_unknown_strategy_rejected(self, customer_relation, report):
        with pytest.raises(SemandaqError):
            build_quality_map(customer_relation, report, strategy="sorted")

    def test_shade_count_must_match_levels(self, customer_relation, report):
        with pytest.raises(SemandaqError):
            build_quality_map(customer_relation, report, levels=3, shades=("clean", "dark"))

    def test_default_shades_adapt_to_level_count(self, customer_relation, report):
        quality_map = build_quality_map(customer_relation, report, levels=3)
        assert len(quality_map.shades) == 3
        assert quality_map.shades[0] == "clean"

    def test_custom_levels(self, customer_relation, report):
        quality_map = build_quality_map(
            customer_relation, report, levels=3, shades=("clean", "grey", "black")
        )
        assert max(quality_map.buckets.values()) <= 2
