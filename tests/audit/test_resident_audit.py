"""The backend-resident audit: oracle parity and zero working-store reads.

Property: with ``audit_source="auto"`` the audit runs entirely on the
storage backend — dirty rows from one ``row_fetch``, clean categories from
pushed-down applicability aggregates, the quality map's tid universe from
the catalog row count — and the resulting report is *identical* to the
native full-relation walk, for any relation (NULL cells included) and any
multi-pattern tableau set, on both backends.

The pins extend the ``ForbiddenReadBackend`` contract of detection and
repair to ``audit()``: no ``to_relation`` / ``get_row`` / ``iter_rows``
on any path, and (on SQLite, where the backend holds its own copy) the
working :class:`Relation` itself may be absent while the audit runs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Semandaq, SemandaqConfig
from repro.core.parser import parse_cfd
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from tests.doubles import ForbiddenReadBackend, ForbiddenRelation

BACKENDS = ["memory", "sqlite"]

ATTRIBUTES = ["A", "B", "C", "D"]

cell_value = st.sampled_from(["a", "b", None])
pattern_value = st.sampled_from(["_", "a", "b"])
row_strategy = st.fixed_dictionaries({name: cell_value for name in ATTRIBUTES})


def _draw_cfd(data, index):
    lhs = data.draw(
        st.lists(st.sampled_from(ATTRIBUTES), min_size=1, max_size=2, unique=True)
    )
    remaining = [name for name in ATTRIBUTES if name not in lhs]
    rhs = data.draw(
        st.lists(st.sampled_from(remaining), min_size=1, max_size=2, unique=True)
    )
    patterns = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=2))):
        cells = []
        for side in (lhs, rhs):
            rendered = []
            for name in side:
                value = data.draw(pattern_value)
                rendered.append(f"{name}={value}" if value == "_" else f"{name}='{value}'")
            cells.append(", ".join(rendered))
        patterns.append(f"[{cells[0]}] -> [{cells[1]}]")
    return parse_cfd(f"r: {' ; '.join(patterns)}", name=f"cfd{index}")


def _audit(backend_name, audit_source, relation, cfds):
    system = Semandaq(
        config=SemandaqConfig(
            backend=backend_name,
            audit_source=audit_source,
            check_consistency_on_add=False,
        )
    )
    try:
        system.register_relation(relation.copy())
        system.add_cfds(cfds)
        return system.audit("r")
    finally:
        system.close()


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_resident_audit_matches_native_oracle(backend_name, data):
    rows = data.draw(st.lists(row_strategy, min_size=1, max_size=12))
    cfds = [
        _draw_cfd(data, index)
        for index in range(data.draw(st.integers(min_value=1, max_value=3)))
    ]
    schema = RelationSchema.of("r", ATTRIBUTES)
    relation = Relation.from_rows(schema, rows)

    native = _audit(backend_name, "native", relation, cfds)
    resident = _audit(backend_name, "auto", relation, cfds)

    assert resident.to_dict() == native.to_dict()
    assert (
        resident.tuple_classification.counts()
        == native.tuple_classification.counts()
    )
    assert (
        resident.attribute_classification.counts
        == native.attribute_classification.counts
    )
    assert resident.quality_map.boundaries == native.quality_map.boundaries
    assert resident.worst_attributes() == native.worst_attributes()


def _make_system(backend_name, **config):
    system = Semandaq(config=SemandaqConfig(backend=backend_name, **config))
    clean = generate_customers(60, seed=401)
    dirty = inject_noise(
        clean, rate=0.08, seed=402, attributes=["CITY", "STR", "CNT"]
    ).dirty
    system.register_relation(dirty)
    system.add_cfds(paper_cfds())
    return system


def _pin_backend(system):
    wrapped = ForbiddenReadBackend(system.backend)
    system.backend = wrapped
    system.detector.backend = wrapped
    return wrapped


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestResidentAuditPins:
    def test_audit_ships_no_rows_out_of_the_backend(self, backend_name):
        system = _make_system(backend_name)
        _pin_backend(system)
        report = system.audit("customer")
        assert report.tuple_count == 60
        assert sum(report.pie_chart().values()) == 60
        assert sum(report.quality_map.histogram().values()) == 60
        assert report.dirty_tuple_count() > 0
        system.close()

    def test_resident_audit_counts_the_source_counter(self, backend_name):
        system = _make_system(backend_name, telemetry=True)
        system.audit("customer")
        assert system.metrics()["counters"]["audit.source_resident"] == 1
        system.close()

    def test_native_override_still_walks_the_relation(self, backend_name):
        system = _make_system(backend_name, audit_source="native")
        native = system.audit("customer")
        resident = _make_system(backend_name)
        try:
            assert resident.audit("customer").to_dict() == native.to_dict()
        finally:
            resident.close()
        system.close()


class TestAuditorNeverTouchesTheWorkingRelation:
    def test_audit_reads_the_backend_alone(self):
        system = _make_system("sqlite")
        _pin_backend(system)
        system.detect("customer")  # sync + cache the report first
        real = system.database.relation("customer")
        system.database._relations["customer"] = ForbiddenRelation("customer")
        try:
            report = system.audit("customer")
        finally:
            system.database._relations["customer"] = real
        assert report.tuple_count == 60
        assert report.dirty_tuple_count() > 0
        system.close()
