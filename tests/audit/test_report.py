"""Tests for the full data-quality report (Fig. 4)."""

import pytest

from repro.audit.metrics import Cleanliness
from repro.audit.report import DataAuditor
from repro.datasets import generate_customers, inject_noise
from repro.detection.detector import ErrorDetector
from repro.engine.database import Database


@pytest.fixture
def quality_report(customer_relation, customer_cfds, customer_database):
    detection = ErrorDetector(customer_database).detect("customer", customer_cfds)
    return DataAuditor().audit(customer_relation, customer_cfds, detection)


class TestDataQualityReport:
    def test_headline_numbers(self, quality_report):
        assert quality_report.tuple_count == 6
        assert quality_report.dirty_tuple_count() == 3  # Mike, Rick, Anna
        assert quality_report.dirty_percentage() == pytest.approx(50.0)

    def test_pie_chart_totals(self, quality_report):
        pie = quality_report.pie_chart()
        assert sum(pie.values()) == 6
        assert pie[Cleanliness.DIRTY.value] == 3

    def test_bar_chart_has_every_attribute(self, quality_report, customer_relation):
        bar = quality_report.bar_chart()
        assert set(bar) == set(customer_relation.attribute_names)
        for percentages in bar.values():
            assert sum(percentages.values()) == pytest.approx(100.0)

    def test_worst_attributes(self, quality_report):
        worst = quality_report.worst_attributes(top=1)
        assert worst[0][0] == "STR"

    def test_statistics_include_clean_and_dirty_counts(self, quality_report):
        assert quality_report.statistics["dirty_tuples"] == 4.0
        assert quality_report.statistics["clean_tuples"] == 2.0

    def test_per_cfd_breakdown(self, quality_report):
        assert quality_report.per_cfd["phi2"]["multi"] == 1
        assert quality_report.per_cfd["phi4"]["single"] == 1
        assert quality_report.per_cfd["phi1"] == {"single": 0, "multi": 0, "tuples": 0}

    def test_quality_map_embedded(self, quality_report):
        assert sum(quality_report.quality_map.histogram().values()) == 6

    def test_to_dict_serialisable(self, quality_report):
        import json

        payload = json.dumps(quality_report.to_dict())
        assert "pie_chart" in payload


class TestAuditorOnGeneratedData:
    def test_clean_data_is_fully_clean(self, customer_cfds):
        relation = generate_customers(80, seed=17)
        database = Database()
        database.add_relation(relation)
        detection = ErrorDetector(database).detect("customer", customer_cfds)
        report = DataAuditor().audit(relation, customer_cfds, detection)
        assert report.dirty_tuple_count() == 0
        assert report.dirty_percentage() == 0.0

    def test_noise_increases_dirtiness(self, customer_cfds):
        clean = generate_customers(120, seed=18)
        low = inject_noise(clean, rate=0.02, seed=1, attributes=["CNT", "CC", "CITY"]).dirty
        high = inject_noise(clean, rate=0.10, seed=1, attributes=["CNT", "CC", "CITY"]).dirty
        auditor = DataAuditor()

        def dirty_pct(relation):
            database = Database()
            database.add_relation(relation)
            detection = ErrorDetector(database).detect("customer", customer_cfds)
            return auditor.audit(relation, customer_cfds, detection).dirty_percentage()

        assert dirty_pct(high) > dirty_pct(low)

    def test_quantile_strategy_configuration(self, customer_cfds, customer_relation, customer_database):
        detection = ErrorDetector(customer_database).detect("customer", customer_cfds)
        auditor = DataAuditor(quality_strategy="quantile", quality_levels=3)
        report = auditor.audit(customer_relation, customer_cfds, detection)
        assert len(report.quality_map.shades) == 5 or len(report.quality_map.boundaries) == 2
