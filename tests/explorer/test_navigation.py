"""Tests for the Fig. 2 drill-down navigation."""

import pytest

from repro.detection.detector import ErrorDetector
from repro.errors import ExplorerError
from repro.explorer.navigation import DataExplorer


@pytest.fixture
def explorer(customer_relation, customer_cfds, customer_database):
    report = ErrorDetector(customer_database).detect("customer", customer_cfds)
    return DataExplorer(customer_relation, customer_cfds, report)


class TestCfdList:
    def test_lists_every_cfd_with_violation_counts(self, explorer, customer_cfds):
        summaries = {summary.cfd_id: summary for summary in explorer.list_cfds()}
        assert set(summaries) == {cfd.identifier for cfd in customer_cfds}
        assert summaries["phi2"].violating_tuples == 2
        assert summaries["phi1"].violating_tuples == 0
        assert summaries["phi4"].violating_tuples == 1
        assert summaries["phi3"].violating_tuples == 4

    def test_unknown_cfd_rejected(self, explorer):
        with pytest.raises(ExplorerError):
            explorer.patterns_for("nope")


class TestDrillDown:
    def test_patterns_for_with_counts(self, explorer):
        patterns = explorer.patterns_for("phi2")
        assert len(patterns) == 1
        assert patterns[0].violating_tuples == 2
        assert patterns[0].rendered["CNT"] == "'UK'"

    def test_lhs_matches_ranked_by_violations(self, explorer):
        matches = explorer.lhs_matches("phi2", 0)
        assert matches[0].lhs_values == ("UK", "EH4 1DT")
        assert matches[0].violating_tuples == 2
        assert matches[0].tuple_count == 2
        # Bob's postcode group has no violations and comes later.
        assert matches[-1].violating_tuples == 0

    def test_rhs_values_show_disagreement(self, explorer):
        values = explorer.rhs_values("phi2", 0, ("UK", "EH4 1DT"))
        assert {entry.value for entry in values} == {"Mayfield Rd", "Crichton St"}
        assert all(entry.violating_tuples == 1 for entry in values)

    def test_tuples_for_with_and_without_rhs_filter(self, explorer):
        all_tuples = explorer.tuples_for("phi2", 0, ("UK", "EH4 1DT"))
        assert {tid for tid, _row in all_tuples} == {0, 1}
        only_mayfield = explorer.tuples_for("phi2", 0, ("UK", "EH4 1DT"), "Mayfield Rd")
        assert [tid for tid, _row in only_mayfield] == [0]

    def test_invalid_pattern_index(self, explorer):
        with pytest.raises(ExplorerError):
            explorer.lhs_matches("phi2", 7)


class TestTupleExplanation:
    def test_explain_violating_tuple(self, explorer):
        info = explorer.explain_tuple(4)  # Anna
        assert info["vio"] == 4
        assert any(entry["cfd"] == "phi4" and entry["violated"] for entry in info["relevant_cfds"])
        assert len(info["violations"]) >= 2

    def test_explain_clean_tuple(self, explorer):
        info = explorer.explain_tuple(2)  # Joe
        assert info["vio"] == 0
        assert all(not entry["violated"] for entry in info["relevant_cfds"])
        # phi4's [CC='01'] pattern applies to Joe even though he is clean.
        assert any(entry["cfd"] == "phi4" for entry in info["relevant_cfds"])

    def test_explain_unknown_tuple(self, explorer):
        with pytest.raises(ExplorerError):
            explorer.explain_tuple(404)

    def test_dirtiest_tuples_ranking(self, explorer):
        ranking = explorer.dirtiest_tuples(top=2)
        assert len(ranking) == 2
        assert ranking[0][1] >= ranking[1][1] > 0
