"""Tests for the stateful exploration session."""

import pytest

from repro.detection.detector import ErrorDetector
from repro.errors import ExplorerError
from repro.explorer.navigation import CfdSummary, LhsMatch, PatternSummary, RhsValue
from repro.explorer.session import ExplorationSession


@pytest.fixture
def session(customer_relation, customer_cfds, customer_database):
    report = ErrorDetector(customer_database).detect("customer", customer_cfds)
    return ExplorationSession(customer_relation, customer_cfds, report)


class TestWalkthrough:
    def test_full_fig2_walk(self, session):
        assert session.level == "cfd"
        cfd_options = session.options()
        assert all(isinstance(option, CfdSummary) for option in cfd_options)

        patterns = session.select("phi2")
        assert session.level == "pattern"
        assert all(isinstance(option, PatternSummary) for option in patterns)

        lhs = session.select(patterns[0])
        assert session.level == "lhs"
        assert all(isinstance(option, LhsMatch) for option in lhs)

        rhs = session.select(lhs[0])
        assert session.level == "rhs"
        assert all(isinstance(option, RhsValue) for option in rhs)

        tuples = session.select(rhs[0])
        assert session.level == "tuples"
        assert tuples and all(isinstance(tid, int) for tid, _row in tuples)

    def test_selection_beyond_tuples_rejected(self, session):
        session.select("phi2")
        session.select(0)
        session.select(("UK", "EH4 1DT"))
        session.select("Mayfield Rd")
        with pytest.raises(ExplorerError):
            session.select("anything")

    def test_breadcrumbs_track_path(self, session):
        session.select("phi2")
        session.select(0)
        crumbs = session.breadcrumbs()
        assert [crumb.level for crumb in crumbs] == ["cfd", "pattern"]
        assert crumbs[0].value == "phi2"

    def test_back_and_reset(self, session):
        session.select("phi2")
        session.select(0)
        session.back()
        assert session.level == "pattern"
        session.reset()
        assert session.level == "cfd"
        assert session.breadcrumbs() == []

    def test_back_at_top_rejected(self, session):
        with pytest.raises(ExplorerError):
            session.back()

    def test_explain_delegates(self, session):
        assert session.explain(4)["vio"] == 4
