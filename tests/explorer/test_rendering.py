"""Tests for text rendering of explorer views."""

import pytest

from repro.audit.report import DataAuditor
from repro.audit.quality_map import build_quality_map
from repro.detection.detector import ErrorDetector
from repro.explorer.rendering import (
    render_bar_chart,
    render_pie_chart,
    render_quality_map,
    render_quality_report,
    render_relation,
    render_repair_diff,
    render_table,
)
from repro.repair.repairer import BatchRepairer


@pytest.fixture
def report(customer_database, customer_cfds):
    return ErrorDetector(customer_database).detect("customer", customer_cfds)


class TestTables:
    def test_render_table_alignment_and_nulls(self):
        text = render_table([{"a": "x", "b": None}, {"a": "longer", "b": 2}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[2:])) == 1  # aligned rows

    def test_render_table_respects_max_rows_and_columns(self):
        text = render_table([{"a": i} for i in range(10)], columns=["a"], max_rows=3)
        assert text.count("\n") == 4

    def test_render_empty_table(self):
        assert render_table([], columns=["a", "b"]).splitlines()[0].startswith("a")

    def test_render_relation_includes_tids(self, customer_relation):
        text = render_relation(customer_relation, max_rows=2)
        assert "tid" in text and "Mike" in text and "Joe" not in text


class TestCharts:
    def test_bar_chart_scales_to_max(self):
        text = render_bar_chart({"A": 100.0, "B": 50.0})
        line_a, line_b = text.splitlines()
        assert line_a.count("#") > line_b.count("#")

    def test_bar_chart_empty(self):
        assert render_bar_chart({}) == "(no data)"

    def test_pie_chart_percentages(self):
        text = render_pie_chart({"clean": 3, "dirty": 1})
        assert "75.0%" in text and "25.0%" in text


class TestQualityViews:
    def test_quality_map_rendering(self, customer_relation, report):
        quality_map = build_quality_map(customer_relation, report)
        text = render_quality_map(customer_relation, quality_map)
        assert "vio=" in text and "legend" in text

    def test_quality_map_truncation(self, customer_relation, report):
        quality_map = build_quality_map(customer_relation, report)
        text = render_quality_map(customer_relation, quality_map, max_rows=2)
        assert "more tuples" in text

    def test_quality_report_rendering(self, customer_relation, customer_cfds, report):
        quality_report = DataAuditor().audit(customer_relation, customer_cfds, report)
        text = render_quality_report(quality_report)
        assert "Data quality report" in text
        assert "pie chart" in text.lower() or "Tuple cleanliness" in text
        assert "Dirtiest attributes" in text


class TestRepairDiff:
    def test_diff_highlights_changes_and_alternatives(self, customer_relation, customer_cfds):
        repair = BatchRepairer().repair(customer_relation, customer_cfds)
        text = render_repair_diff(repair)
        assert "->" in text and "cells changed" in text
        assert "alternatives" in text

    def test_diff_truncation(self, customer_relation, customer_cfds):
        repair = BatchRepairer().repair(customer_relation, customer_cfds)
        text = render_repair_diff(repair, max_rows=1)
        if len(repair.changed_tids()) > 1:
            assert "more tuples" in text
