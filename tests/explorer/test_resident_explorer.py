"""The backend-resident explorer: native parity, keyset paging, and pins.

With ``audit_source="auto"`` the explorer answers every drill-down step
from pushed-down aggregates (``attr_freq`` group histograms,
``majority_value`` RHS histograms) plus one cached fetch of the dirty
rows, and hydrates tuple listings one ``page_fetch`` page at a time.
Navigation output must be identical to the native full-relation walk, and
no step may ship rows out of the backend (``to_relation`` / ``get_row`` /
``iter_rows``) — on SQLite, not even the working :class:`Relation` needs
to exist while the user navigates.
"""

import pytest

from repro import Semandaq, SemandaqConfig
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.errors import ExplorerError
from tests.doubles import ForbiddenReadBackend, ForbiddenRelation

BACKENDS = ["memory", "sqlite"]


def _make_system(backend_name, **config):
    system = Semandaq(config=SemandaqConfig(backend=backend_name, **config))
    clean = generate_customers(60, seed=401)
    dirty = inject_noise(
        clean, rate=0.08, seed=402, attributes=["CITY", "STR", "CNT"]
    ).dirty
    system.register_relation(dirty)
    system.add_cfds(paper_cfds())
    return system


def _pin_backend(system):
    wrapped = ForbiddenReadBackend(system.backend)
    system.backend = wrapped
    system.detector.backend = wrapped
    return wrapped


def _walk(explorer):
    """Every navigation answer of the Fig. 2 drill-down, as one structure."""
    state = {"cfds": explorer.list_cfds(), "patterns": {}, "lhs": {}, "rhs": {},
             "tuples": {}, "dirtiest": explorer.dirtiest_tuples()}
    for summary in state["cfds"]:
        cfd_id = summary.cfd_id
        state["patterns"][cfd_id] = explorer.patterns_for(cfd_id)
        for pattern in state["patterns"][cfd_id]:
            index = pattern.pattern_index
            matches = explorer.lhs_matches(cfd_id, index)
            state["lhs"][(cfd_id, index)] = matches
            for match in matches[:2]:
                key = (cfd_id, index, match.lhs_values)
                values = explorer.rhs_values(cfd_id, index, match.lhs_values)
                state["rhs"][key] = values
                state["tuples"][key] = explorer.tuples_for(
                    cfd_id, index, match.lhs_values
                )
                if values:
                    state["tuples"][key + (values[0].value,)] = explorer.tuples_for(
                        cfd_id, index, match.lhs_values, values[0].value
                    )
    return state


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestResidentExplorerParity:
    def test_navigation_matches_native(self, backend_name):
        native_system = _make_system(backend_name, audit_source="native")
        resident_system = _make_system(backend_name)
        try:
            native = native_system.explorer("customer")
            resident = resident_system.explorer("customer")
            assert resident.source.resident
            assert not native.source.resident
            assert _walk(resident) == _walk(native)
            dirty_tid = native.dirtiest_tuples(top=1)[0][0]
            assert resident.explain_tuple(dirty_tid) == native.explain_tuple(dirty_tid)
        finally:
            native_system.close()
            resident_system.close()

    def test_tuples_page_walks_the_group_in_keyset_pages(self, backend_name):
        system = _make_system(backend_name)
        try:
            explorer = system.explorer("customer")
            cfd_id = explorer.list_cfds()[0].cfd_id
            matches = explorer.lhs_matches(cfd_id, 0)
            match = max(matches, key=lambda m: m.tuple_count)
            full = explorer.tuples_for(cfd_id, 0, match.lhs_values)
            paged, after_tid = [], -1
            while True:
                page = explorer.tuples_page(
                    cfd_id, 0, match.lhs_values, after_tid=after_tid, page_size=3
                )
                assert len(page) <= 3
                paged.extend(page)
                if len(page) < 3:
                    break
                after_tid = page[-1][0]
            assert paged == full
        finally:
            system.close()

    def test_session_next_page(self, backend_name):
        system = _make_system(backend_name)
        try:
            session = system.exploration_session("customer")
            with pytest.raises(ExplorerError, match="select an LHS combination"):
                session.next_page()
            cfd = session.options()[0]
            session.select(cfd)
            session.select(0)
            match = max(session.options(), key=lambda m: m.tuple_count)
            session.select(match)
            full = session.explorer.tuples_for(
                cfd.cfd_id, 0, match.lhs_values
            )
            pages = []
            while True:
                page = session.next_page(page_size=4)
                pages.extend(page)
                if len(page) < 4:
                    break
            assert pages == full
            assert session.next_page(page_size=4) == []  # cursor stays exhausted
            session.back()  # rewinds the cursor
            session.select(match)
            assert session.next_page(page_size=4) == full[:4]
        finally:
            system.close()


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestResidentExplorerPins:
    def test_navigation_ships_no_rows_out_of_the_backend(self, backend_name):
        system = _make_system(backend_name)
        _pin_backend(system)
        try:
            explorer = system.explorer("customer")
            state = _walk(explorer)
            assert state["cfds"]
            assert any(state["tuples"].values())
            dirty_tid = explorer.dirtiest_tuples(top=1)[0][0]
            assert explorer.explain_tuple(dirty_tid)["vio"] > 0
        finally:
            system.close()

    def test_session_paging_ships_no_rows_out_of_the_backend(self, backend_name):
        system = _make_system(backend_name)
        _pin_backend(system)
        try:
            session = system.exploration_session("customer")
            cfd = session.options()[0]
            session.select(cfd)
            session.select(0)
            match = max(session.options(), key=lambda m: m.tuple_count)
            session.select(match)
            assert session.next_page(page_size=5)
        finally:
            system.close()


class TestExplorerNeverTouchesTheWorkingRelation:
    def test_navigation_reads_the_backend_alone(self):
        system = _make_system("sqlite")
        _pin_backend(system)
        system.detect("customer")  # sync + cache the report first
        real = system.database.relation("customer")
        system.database._relations["customer"] = ForbiddenRelation("customer")
        try:
            explorer = system.explorer("customer")
            state = _walk(explorer)
            assert state["cfds"]
            session = system.exploration_session("customer")
            cfd = session.options()[0]
            session.select(cfd)
            session.select(0)
            match = max(session.options(), key=lambda m: m.tuple_count)
            session.select(match)
            assert session.next_page(page_size=5)
        finally:
            system.database._relations["customer"] = real
        system.close()
